#include "treu/obs/trace.hpp"

#include <algorithm>

#include "treu/obs/json.hpp"

namespace treu::obs {

namespace {

// One row of the export: B/E rows come from spans, C rows from counter
// events. Sorting by (ts, seq) reproduces the true per-thread order even
// when several events share a microsecond — the sequence counter is stamped
// at the real start and end moments.
struct EventRow {
  std::uint64_t ts_us;
  std::uint64_t seq;
  char phase;  // 'B', 'E', 'C', 'X'
  const std::string *name;
  std::uint32_t tid;
  double value;                    // C only
  const SpanRecord *span = nullptr;  // X only: causal linkage payload
};

}  // namespace

std::uint64_t TraceCollector::now_us() const noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void TraceCollector::record_span(SpanRecord record) {
  std::lock_guard lock(mu_);
  if (spans_.size() + counter_events_.size() >= capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  spans_.push_back(std::move(record));
}

void TraceCollector::record_causal_span(std::string name,
                                        const TraceContext &ctx,
                                        std::uint64_t start_us,
                                        std::uint64_t end_us) {
  SpanRecord record;
  record.name = std::move(name);
  record.tid = this_thread_tid();
  record.start_us = start_us;
  record.end_us = end_us;
  record.start_seq = next_seq();
  record.end_seq = next_seq();
  record.trace = ctx.id;
  record.span_id = ctx.span_id;
  record.parent_span_id = ctx.parent_span_id;
  record_span(std::move(record));
}

void TraceCollector::counter_event(std::string name, double value) {
  CounterEventRecord rec;
  rec.name = std::move(name);
  rec.tid = this_thread_tid();
  rec.ts_us = now_us();
  rec.seq = next_seq();
  rec.value = value;
  std::lock_guard lock(mu_);
  if (spans_.size() + counter_events_.size() >= capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  counter_events_.push_back(std::move(rec));
}

std::size_t TraceCollector::span_count() const {
  std::lock_guard lock(mu_);
  return spans_.size();
}

std::vector<SpanRecord> TraceCollector::spans() const {
  std::lock_guard lock(mu_);
  return spans_;
}

std::vector<SpanRecord> TraceCollector::spans_for(const TraceId &trace) const {
  std::vector<SpanRecord> out;
  {
    std::lock_guard lock(mu_);
    for (const SpanRecord &s : spans_) {
      if (s.trace == trace) out.push_back(s);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord &a, const SpanRecord &b) {
              return a.span_id != b.span_id ? a.span_id < b.span_id
                                            : a.name < b.name;
            });
  return out;
}

std::string TraceCollector::causal_tree_string() const {
  std::vector<SpanRecord> causal;
  {
    std::lock_guard lock(mu_);
    for (const SpanRecord &s : spans_) {
      if (s.causal()) causal.push_back(s);
    }
  }
  std::sort(causal.begin(), causal.end(),
            [](const SpanRecord &a, const SpanRecord &b) {
              if (a.trace.hi != b.trace.hi) return a.trace.hi < b.trace.hi;
              if (a.trace.lo != b.trace.lo) return a.trace.lo < b.trace.lo;
              if (a.span_id != b.span_id) return a.span_id < b.span_id;
              return a.name < b.name;
            });
  std::string out;
  const TraceId *current = nullptr;
  for (const SpanRecord &s : causal) {
    if (current == nullptr || !(*current == s.trace)) {
      out += "trace " + s.trace.hex() + "\n";
      current = &s.trace;
    }
    out += "  span=" + std::to_string(s.span_id) +
           " parent=" + std::to_string(s.parent_span_id) + " " + s.name +
           "\n";
  }
  return out;
}

void TraceCollector::set_capacity(std::size_t max_records) {
  std::lock_guard lock(mu_);
  capacity_ = max_records;
}

void TraceCollector::clear() {
  std::lock_guard lock(mu_);
  spans_.clear();
  counter_events_.clear();
  dropped_.store(0, std::memory_order_relaxed);
}

std::string TraceCollector::to_chrome_json() const {
  std::vector<SpanRecord> spans;
  std::vector<CounterEventRecord> counters;
  {
    std::lock_guard lock(mu_);
    spans = spans_;
    counters = counter_events_;
  }

  std::vector<EventRow> rows;
  rows.reserve(2 * spans.size() + counters.size());
  for (const SpanRecord &s : spans) {
    if (s.causal()) {
      // Causal spans are recorded retrospectively (at fulfillment), so
      // their B/E rows could interleave improperly with live RAII spans on
      // the same thread; Chrome 'X' complete events need no balancing and
      // carry the trace linkage in args.
      rows.push_back({s.start_us, s.start_seq, 'X', &s.name, s.tid, 0.0, &s});
      continue;
    }
    rows.push_back({s.start_us, s.start_seq, 'B', &s.name, s.tid, 0.0});
    rows.push_back({s.end_us, s.end_seq, 'E', &s.name, s.tid, 0.0});
  }
  for (const CounterEventRecord &c : counters) {
    rows.push_back({c.ts_us, c.seq, 'C', &c.name, c.tid, c.value});
  }
  std::sort(rows.begin(), rows.end(), [](const EventRow &a, const EventRow &b) {
    return a.ts_us != b.ts_us ? a.ts_us < b.ts_us : a.seq < b.seq;
  });

  json::Array events;
  events.reserve(rows.size());
  for (const EventRow &row : rows) {
    json::Object ev;
    ev.emplace("name", *row.name);
    ev.emplace("cat", "treu");
    ev.emplace("ph", std::string(1, row.phase));
    ev.emplace("ts", static_cast<std::int64_t>(row.ts_us));
    ev.emplace("pid", 1);
    ev.emplace("tid", static_cast<std::int64_t>(row.tid));
    if (row.phase == 'C') {
      json::Object args;
      args.emplace("value", row.value);
      ev.emplace("args", std::move(args));
    } else if (row.phase == 'X') {
      ev.emplace("dur", static_cast<std::int64_t>(
                            row.span->end_us - row.span->start_us));
      json::Object args;
      args.emplace("trace_id", row.span->trace.hex());
      args.emplace("span_id", static_cast<std::int64_t>(row.span->span_id));
      args.emplace("parent_span_id",
                   static_cast<std::int64_t>(row.span->parent_span_id));
      ev.emplace("args", std::move(args));
    }
    events.push_back(std::move(ev));
  }

  json::Object doc;
  doc.emplace("traceEvents", std::move(events));
  doc.emplace("displayTimeUnit", "ms");
  return json::Value(std::move(doc)).dump();
}

std::uint32_t TraceCollector::this_thread_tid() noexcept {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t tid =
      next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

TraceCollector &TraceCollector::global() {
  // Immortal for the same reason as Registry::global(): spans may close on
  // pool worker threads during static teardown.
  static TraceCollector *collector = new TraceCollector();
  return *collector;
}

}  // namespace treu::obs
