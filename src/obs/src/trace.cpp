#include "treu/obs/trace.hpp"

#include <algorithm>

#include "treu/obs/json.hpp"

namespace treu::obs {

namespace {

// One row of the export: B/E rows come from spans, C rows from counter
// events. Sorting by (ts, seq) reproduces the true per-thread order even
// when several events share a microsecond — the sequence counter is stamped
// at the real start and end moments.
struct EventRow {
  std::uint64_t ts_us;
  std::uint64_t seq;
  char phase;  // 'B', 'E', 'C'
  const std::string *name;
  std::uint32_t tid;
  double value;  // C only
};

}  // namespace

std::uint64_t TraceCollector::now_us() const noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void TraceCollector::record_span(SpanRecord record) {
  std::lock_guard lock(mu_);
  if (spans_.size() + counter_events_.size() >= capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  spans_.push_back(std::move(record));
}

void TraceCollector::counter_event(std::string name, double value) {
  CounterEventRecord rec;
  rec.name = std::move(name);
  rec.tid = this_thread_tid();
  rec.ts_us = now_us();
  rec.seq = next_seq();
  rec.value = value;
  std::lock_guard lock(mu_);
  if (spans_.size() + counter_events_.size() >= capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  counter_events_.push_back(std::move(rec));
}

std::size_t TraceCollector::span_count() const {
  std::lock_guard lock(mu_);
  return spans_.size();
}

std::vector<SpanRecord> TraceCollector::spans() const {
  std::lock_guard lock(mu_);
  return spans_;
}

void TraceCollector::set_capacity(std::size_t max_records) {
  std::lock_guard lock(mu_);
  capacity_ = max_records;
}

void TraceCollector::clear() {
  std::lock_guard lock(mu_);
  spans_.clear();
  counter_events_.clear();
  dropped_.store(0, std::memory_order_relaxed);
}

std::string TraceCollector::to_chrome_json() const {
  std::vector<SpanRecord> spans;
  std::vector<CounterEventRecord> counters;
  {
    std::lock_guard lock(mu_);
    spans = spans_;
    counters = counter_events_;
  }

  std::vector<EventRow> rows;
  rows.reserve(2 * spans.size() + counters.size());
  for (const SpanRecord &s : spans) {
    rows.push_back({s.start_us, s.start_seq, 'B', &s.name, s.tid, 0.0});
    rows.push_back({s.end_us, s.end_seq, 'E', &s.name, s.tid, 0.0});
  }
  for (const CounterEventRecord &c : counters) {
    rows.push_back({c.ts_us, c.seq, 'C', &c.name, c.tid, c.value});
  }
  std::sort(rows.begin(), rows.end(), [](const EventRow &a, const EventRow &b) {
    return a.ts_us != b.ts_us ? a.ts_us < b.ts_us : a.seq < b.seq;
  });

  json::Array events;
  events.reserve(rows.size());
  for (const EventRow &row : rows) {
    json::Object ev;
    ev.emplace("name", *row.name);
    ev.emplace("cat", "treu");
    ev.emplace("ph", std::string(1, row.phase));
    ev.emplace("ts", static_cast<std::int64_t>(row.ts_us));
    ev.emplace("pid", 1);
    ev.emplace("tid", static_cast<std::int64_t>(row.tid));
    if (row.phase == 'C') {
      json::Object args;
      args.emplace("value", row.value);
      ev.emplace("args", std::move(args));
    }
    events.push_back(std::move(ev));
  }

  json::Object doc;
  doc.emplace("traceEvents", std::move(events));
  doc.emplace("displayTimeUnit", "ms");
  return json::Value(std::move(doc)).dump();
}

std::uint32_t TraceCollector::this_thread_tid() noexcept {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t tid =
      next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

TraceCollector &TraceCollector::global() {
  // Immortal for the same reason as Registry::global(): spans may close on
  // pool worker threads during static teardown.
  static TraceCollector *collector = new TraceCollector();
  return *collector;
}

}  // namespace treu::obs
