#include "treu/obs/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace treu::obs {

namespace detail {

std::size_t this_thread_shard() noexcept {
  // Dense per-thread slots (first thread -> 0, second -> 1, ...) folded into
  // the shard range. Threads outnumbering kShards share lines, which is
  // correctness-neutral.
  static std::atomic<std::size_t> next_slot{0};
  thread_local const std::size_t slot =
      next_slot.fetch_add(1, std::memory_order_relaxed);
  return slot & (kShards - 1);
}

void add_relaxed(std::atomic<double> &a, double delta) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed,
                                  std::memory_order_relaxed)) {
  }
}

}  // namespace detail

std::uint64_t Counter::value() const noexcept {
  std::uint64_t total = 0;
  for (const auto &s : shards_) total += s.v.load(std::memory_order_relaxed);
  return total;
}

std::int64_t Gauge::value() const noexcept {
  std::int64_t total = 0;
  for (const auto &s : shards_) total += s.v.load(std::memory_order_relaxed);
  return total;
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  if (bounds_.empty()) {
    throw std::invalid_argument("Histogram: upper_bounds must be non-empty");
  }
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw std::invalid_argument(
        "Histogram: upper_bounds must be strictly increasing");
  }
  const std::size_t n = bounds_.size() + 1;  // +inf overflow bucket
  for (auto &shard : shards_) {
    shard.buckets = std::make_unique<std::atomic<std::uint64_t>[]>(n);
    for (std::size_t i = 0; i < n; ++i) {
      shard.buckets[i].store(0, std::memory_order_relaxed);
    }
  }
  exemplars_ = std::make_unique<ExemplarSlot[]>(n);
}

std::size_t Histogram::bucket_index(double value) const noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  return static_cast<std::size_t>(it - bounds_.begin());  // size() = +inf
}

void Histogram::observe(double value) noexcept {
  const std::size_t bucket = bucket_index(value);
  Shard &shard = shards_[detail::this_thread_shard()];
  shard.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  detail::add_relaxed(shard.sum, value);
}

void Histogram::observe_exemplar(double value, const TraceId &trace) noexcept {
  observe(value);
  if (!trace.valid()) return;
  ExemplarSlot &slot = exemplars_[bucket_index(value)];
  std::uint64_t version = slot.version.load(std::memory_order_relaxed);
  if (version & 1) return;  // another writer owns the slot; drop the sample
  if (!slot.version.compare_exchange_strong(version, version + 1,
                                            std::memory_order_acquire,
                                            std::memory_order_relaxed)) {
    return;
  }
  slot.hi.store(trace.hi, std::memory_order_relaxed);
  slot.lo.store(trace.lo, std::memory_order_relaxed);
  slot.version.store(version + 2, std::memory_order_release);
  any_exemplar_.store(true, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.upper_bounds = bounds_;
  snap.buckets.assign(bounds_.size() + 1, 0);
  for (const auto &shard : shards_) {
    for (std::size_t i = 0; i < snap.buckets.size(); ++i) {
      snap.buckets[i] += shard.buckets[i].load(std::memory_order_relaxed);
    }
    snap.sum += shard.sum.load(std::memory_order_relaxed);
  }
  for (const std::uint64_t b : snap.buckets) snap.count += b;
  if (any_exemplar_.load(std::memory_order_relaxed)) {
    snap.exemplars.resize(snap.buckets.size());
    for (std::size_t i = 0; i < snap.exemplars.size(); ++i) {
      const ExemplarSlot &slot = exemplars_[i];
      for (;;) {
        const std::uint64_t v0 = slot.version.load(std::memory_order_acquire);
        if (v0 & 1) continue;  // writer mid-update
        TraceId id;
        id.hi = slot.hi.load(std::memory_order_relaxed);
        id.lo = slot.lo.load(std::memory_order_relaxed);
        if (slot.version.load(std::memory_order_acquire) == v0) {
          snap.exemplars[i] = id;
          break;
        }
      }
    }
  }
  return snap;
}

std::vector<double> Histogram::default_latency_bounds_us() {
  std::vector<double> bounds;
  for (double decade = 1.0; decade <= 1e6; decade *= 10.0) {
    bounds.push_back(decade);
    bounds.push_back(2.0 * decade);
    bounds.push_back(5.0 * decade);
  }
  bounds.push_back(1e7);  // 10 s
  return bounds;
}

Counter *Registry::counter(const std::string &name) {
  std::lock_guard lock(mu_);
  auto &slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge *Registry::gauge(const std::string &name) {
  std::lock_guard lock(mu_);
  auto &slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram *Registry::histogram(const std::string &name,
                               std::span<const double> upper_bounds) {
  std::lock_guard lock(mu_);
  auto &slot = histograms_[name];
  if (!slot) {
    std::vector<double> bounds(upper_bounds.begin(), upper_bounds.end());
    if (bounds.empty()) bounds = Histogram::default_latency_bounds_us();
    slot = std::make_unique<Histogram>(std::move(bounds));
  }
  return slot.get();
}

MetricsSnapshot Registry::snapshot() const {
  std::lock_guard lock(mu_);
  MetricsSnapshot snap;
  for (const auto &[name, c] : counters_) snap.counters[name] = c->value();
  for (const auto &[name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto &[name, h] : histograms_) {
    snap.histograms[name] = h->snapshot();
  }
  return snap;
}

Registry &Registry::global() {
  // Intentionally immortal (never destroyed): worker threads owned by
  // function-local statics constructed earlier (e.g. ThreadPool::global())
  // may still increment counters while those statics tear down at exit, and
  // reverse-destruction order would have freed a plain static registry by
  // then.
  static Registry *registry = new Registry();
  return *registry;
}

}  // namespace treu::obs
