#pragma once

// Always-on flight recorder: a fixed-size, lock-light, per-thread ring of
// compact binary events for post-mortem debugging.
//
// Design
//  - Each recording thread owns one ring; record() touches only that ring
//    plus one process-wide relaxed sequence counter, so the hot path is a
//    handful of relaxed atomic stores (~15 ns) and threads never contend
//    on event slots. The only lock is taken once per thread, at ring
//    registration. Rings outlive their threads (the black box keeps a dead
//    thread's last events) and are recycled for later threads, so thread
//    churn costs neither unbounded memory nor a fresh ~230 KiB allocation
//    plus page faults on each new worker's first event.
//  - Event timestamps come from the kernel's coarse monotonic clock
//    (~5 ns to read, millisecond-ish resolution). Ordering never depends
//    on them — `seq` is the total order — and precise timing belongs to
//    the sampled causal spans in TraceCollector; the recorder's job is
//    "what happened, in what order, roughly when", at a cost low enough
//    to leave on everywhere.
//  - The recorder is *runtime*-gated by one relaxed flag (default off:
//    record() is a load + branch) and *compile-time*-gated through the
//    TREU_OBS_FR_* macros in obs.hpp, which vanish entirely when
//    TREU_OBS_ENABLED=0.
//  - Event slots are relaxed atomics so a dump taken while writers are
//    still running is a data-race-free snapshot (an event being overwritten
//    mid-read can mix fields; the per-thread sequence number exposes such
//    wrap casualties, and dumps at quiescence — the normal case — are
//    exact).
//  - Rings wrap: each ring keeps its newest `capacity` events and counts
//    what it overwrote. A soak that fails after millions of events still
//    ships its last-N black box instead of an unbounded log.
//  - dump()/to_json() serialize the merged rings as one JSON document that
//    is BOTH machine-parseable ("flightEvents": full binary fields) and a
//    Chrome trace (instant events), so the same artifact feeds assertions
//    and Perfetto. dump_signal_safe() is the crash path: no allocation, no
//    locks taken (registration is frozen by the crash), raw write(2) of one
//    text line per event.
//
// Determinism: the *per-trace* subsequence of events (filter by trace_lo,
// order by seq) is a pure function of the seeded workload; cross-trace
// interleaving follows the scheduler and is not reproducible. Tests compare
// per-trace sequences.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace treu::obs {

/// What happened. Values are stable (they appear in dumps); append only.
enum class FrEvent : std::uint16_t {
  None = 0,
  // serve
  Enqueue = 1,        // a = queue depth after admit, b = priority
  Reject = 2,         // a = queue depth at refusal
  Shed = 3,           // a = queue depth at refusal, b = priority
  Dequeue = 4,        // one per formed batch; trace_lo = lead item,
                      // a = batch id, b = replica index
  DeadlineMiss = 5,   // a = batch id (0 = expired in queue), b = phase
  PredictStart = 6,   // a = batch id, b = attempt
  PredictOk = 7,      // a = batch id, b = attempt
  PredictFail = 8,    // a = batch id, b = attempt
  Retry = 9,          // a = batch id, b = backoff microseconds
  Fulfill = 10,       // a = batch id, b = batch size
  RequestFail = 11,   // a = batch id, b = attempts made
  Reload = 12,        // a = replicas updated, b = ok
  ReloadRollback = 13,  // a = replicas rolled back
  // resilience
  BreakerOpen = 14,     // a = breaker id, b = times opened so far
  BreakerHalfOpen = 15, // a = breaker id
  BreakerClose = 16,    // a = breaker id
  // fault
  FaultInjected = 17,  // a = replica, b = FaultKind
  // ckpt
  CkptSave = 18,     // a = step, b = bytes committed (0 = write failed)
  CkptLoad = 19,     // a = step (0 = unreadable), b = bytes
  CkptRecover = 20,  // a = restored step, b = manifest fast path taken
  // guard
  GuardTrip = 21,      // a = step, b = TripKind
  GuardRollback = 22,  // a = tripped step, b = restored step
  GuardGiveUp = 23,    // a = step, b = TripKind
  // tests / tooling
  Mark = 24,  // a, b free-form
  // cluster (controller side unless noted; a worker-side event's trace_lo
  // is the controller-derived id carried across the wire)
  ClusterSpawn = 25,         // a = shard, b = pid
  ClusterHello = 26,         // a = shard, b = pid
  ClusterDispatch = 27,      // a = shard, b = attempt (1-based)
  ClusterFulfill = 28,       // a = shard that answered, b = attempts
  ClusterRequestFail = 29,   // a = last shard tried, b = attempts
  ClusterShed = 30,          // a = tenant, b = tenant in-flight at refusal
  ClusterReject = 31,        // a = tenant, b = total in-flight at refusal
  ClusterWorkerDead = 32,    // a = shard, b = deaths so far
  ClusterFailover = 33,      // a = dead shard, b = requests re-routed
  ClusterHeartbeatMiss = 34, // a = shard, b = silence in us
  ClusterRetry = 35,         // a = shard routed to, b = attempt (1-based)
  ClusterDrain = 36,         // a = shard, b = served total reported back
  ClusterRestart = 37,       // a = shard, b = restarts so far
  ClusterReload = 38,        // a = shard, b = ok
  ClusterFrameError = 39,    // a = shard, b = 0 torn / 1 corrupt
  ClusterKillInjected = 40,  // a = shard, b = fault-plan event index
  ClusterStallInjected = 41, // a = shard, b = stall us
  ClusterLinkDrop = 42,      // a = shard, b = fault-plan event index
  ClusterWorkerRecv = 43,    // worker side: a = shard, b = tenant
  ClusterWorkerReply = 44,   // worker side: a = shard, b = ok
  // pipeline (train→deploy rollout controller)
  PipelinePublish = 45,      // a = registry version, b = vetted (0/1)
  PipelineCanaryStart = 46,  // a = registry version, b = cycle
  PipelineVerdict = 47,      // a = registry version, b = pass (0/1)
  PipelinePromote = 48,      // a = registry version, b = cycle
  PipelineRollback = 49,     // a = incumbent version restored, b = cycle
  PipelineResume = 50,       // a = cycle resumed, b = RolloutState resumed from
};

[[nodiscard]] const char *to_string(FrEvent kind) noexcept;

/// One decoded event (plain struct; the in-ring form is atomic fields).
struct FlightEvent {
  std::uint64_t seq = 0;       // process-wide record order stamp
  std::uint64_t ts_us = 0;     // coarse clock (ms-ish resolution), us since
                               // recorder epoch; order by seq, not this
  std::uint64_t trace_lo = 0;  // low word of the owning TraceId (0 = none)
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint32_t tid = 0;
  FrEvent kind = FrEvent::None;
};

class FlightRecorder {
 public:
  FlightRecorder();
  FlightRecorder(const FlightRecorder &) = delete;
  FlightRecorder &operator=(const FlightRecorder &) = delete;

  /// Runtime switch. Off (the default) makes record() a relaxed load and a
  /// branch; nothing is written anywhere.
  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Events retained per thread; rounded up to a power of two. Applies to
  /// rings created after the call (set it before recording threads start;
  /// tests construct a fresh recorder per capacity).
  void set_capacity_per_thread(std::size_t events);
  [[nodiscard]] std::size_t capacity_per_thread() const noexcept {
    return capacity_.load(std::memory_order_relaxed);
  }

  /// Append one event to the calling thread's ring. Safe from any thread;
  /// never blocks, never allocates after the thread's first record.
  void record(FrEvent kind, std::uint64_t trace_lo = 0, std::uint64_t a = 0,
              std::uint64_t b = 0) noexcept;

  /// Merged view of every ring, sorted by seq (record order). Events being
  /// overwritten concurrently may carry mixed fields; at quiescence the
  /// snapshot is exact.
  [[nodiscard]] std::vector<FlightEvent> snapshot() const;

  /// Total events overwritten by ring wraparound, all threads.
  [[nodiscard]] std::uint64_t overwritten() const noexcept;

  /// Drop all retained events (rings stay registered).
  void clear();

  /// The dump document: {"flightEvents": [...], "traceEvents": [instant
  /// events], "otherData": {...}} — parseable and Perfetto-loadable.
  [[nodiscard]] std::string to_json(const std::string &run_name) const;

  /// Atomically (tmp + rename) write to_json() to `path`. Returns false on
  /// I/O failure (never throws: dump paths run inside failure handlers).
  bool dump(const std::string &path, const std::string &run_name) const;

  /// Crash-path dump: one "seq ts tid kind trace_lo a b" text line per
  /// event straight to `fd` with write(2). No allocation, no locks, no
  /// stdio — callable from a signal handler.
  void dump_signal_safe(int fd) const noexcept;

  /// Install SIGSEGV/SIGBUS/SIGFPE/SIGILL/SIGABRT handlers that write this
  /// recorder's events to `path` (truncating), then re-raise the default
  /// action. Best effort; the last call wins process-wide.
  void install_crash_handler(std::string path);

  /// Microseconds since this recorder was constructed.
  [[nodiscard]] std::uint64_t now_us() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  /// Process-wide recorder used by the TREU_OBS_FR_* macros. Immortal for
  /// the same reason as Registry::global().
  [[nodiscard]] static FlightRecorder &global();

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> ts_us{0};
    std::atomic<std::uint64_t> trace_lo{0};
    std::atomic<std::uint64_t> a{0};
    std::atomic<std::uint64_t> b{0};
    std::atomic<std::uint32_t> tid{0};
    std::atomic<std::uint16_t> kind{0};
  };
  struct Ring {
    explicit Ring(std::size_t cap, std::uint32_t thread_id)
        : slots(cap), mask(cap - 1), tid(thread_id) {}
    std::vector<Slot> slots;       // power-of-two size
    std::size_t mask;
    std::uint32_t tid;
    std::atomic<std::uint64_t> head{0};  // next write position (monotone)
  };

  [[nodiscard]] Ring &local_ring();

  /// Return an exiting thread's ring to the free pool for the next thread.
  void release_ring(Ring *ring) noexcept;

  /// Coarse monotonic microseconds since construction (record()'s clock).
  [[nodiscard]] std::uint64_t coarse_now_us() const noexcept;

  std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();
  std::uint64_t coarse_epoch_us_ = 0;  // set in the constructor
  std::uint64_t gen_ = 0;  // process-unique; guards the thread-local
                           // ring cache against recorder address reuse
  std::atomic<bool> enabled_{false};
  std::atomic<std::size_t> capacity_{4096};
  std::atomic<std::uint64_t> seq_{1};  // 0 = "empty slot"

  mutable std::mutex rings_mu_;  // ring registration + snapshot iteration
  std::vector<std::unique_ptr<Ring>> rings_;
  std::vector<Ring *> free_rings_;  // rings of exited threads, reusable
};

}  // namespace treu::obs
