#pragma once

// SLO monitor: sliding-window goodput / p99 / error-budget burn-rate
// evaluated from a metrics Registry.
//
// The monitor is a *pure consumer* of the registry: each tick() snapshots
// the configured counters and latency histogram, takes the delta since the
// previous tick as one window slice, and evaluates the sliding window of
// the last `window_slices` slices:
//
//   goodput    = successes / (successes + errors) over the window
//   p99        = bucket-interpolated 99th percentile of the window's
//                latency observations
//   burn rate  = (window error fraction) / error_budget — 1.0 means the
//                budget is being consumed exactly at the sustainable rate,
//                14.0 means the whole budget burns in ~1/14 of the period
//                (the classic fast-burn page threshold)
//
// Determinism: tick() is a pure function of the registry deltas it
// observes, and the clock is injectable, so a seeded workload driven by
// explicit tick() calls produces a byte-identical breach log on every run.
// The background thread (start()/stop()) is a convenience cadence driver
// for live serving; tests call tick() directly in virtual time.
//
// Results are re-exported as slo.* gauges (integer-scaled where the value
// is fractional) so breaches show up in the same telemetry artifact as the
// metrics they were computed from — the decision primitive a canary
// rollout's promote/rollback comparison consumes.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "treu/obs/metrics.hpp"

namespace treu::obs {

struct SloConfig {
  /// Counter counted as successful work.
  std::string success_counter = "serve.responses_total";
  /// Counters counted as errors (missing names read as 0).
  std::vector<std::string> error_counters = {
      "serve.failed_total", "serve.deadline_miss", "serve.shed_total"};
  /// Latency histogram the p99 is computed from.
  std::string latency_histogram = "serve.queue_latency_us";

  /// Window goodput below this breaches. [0, 1].
  double goodput_slo = 0.99;
  /// Window p99 above this (microseconds) breaches. 0 disables.
  double p99_slo_us = 0.0;
  /// Tolerated error fraction; burn rate = error fraction / budget.
  double error_budget = 0.01;
  /// Burn rate at or above this breaches (14 = classic fast-burn page).
  double burn_rate_threshold = 14.0;

  /// Slices in the sliding window.
  std::size_t window_slices = 12;
  /// Background cadence for start(); tick() callers set their own pace.
  std::chrono::microseconds cadence{1'000'000};
  /// Microsecond clock stamped on breaches. Empty = steady_clock. Tests
  /// inject a counter so breach logs are reproducible byte for byte.
  std::function<std::int64_t()> clock;
  /// Prefix for the emitted gauges.
  std::string gauge_prefix = "slo";
};

/// One detected violation. `slice` is the tick index (1-based) that
/// completed the breaching window.
struct SloBreach {
  enum class Kind : std::uint8_t { Goodput = 0, P99 = 1, BurnRate = 2 };
  std::uint64_t slice = 0;
  std::int64_t at_us = 0;  // injectable-clock stamp
  Kind kind = Kind::Goodput;
  double measured = 0.0;
  double threshold = 0.0;
};

[[nodiscard]] constexpr const char *to_string(SloBreach::Kind k) noexcept {
  switch (k) {
    case SloBreach::Kind::Goodput: return "goodput";
    case SloBreach::Kind::P99: return "p99";
    case SloBreach::Kind::BurnRate: return "burn_rate";
  }
  return "unknown";
}

class SloMonitor {
 public:
  explicit SloMonitor(const SloConfig &config,
                      Registry &registry = Registry::global());
  ~SloMonitor();
  SloMonitor(const SloMonitor &) = delete;
  SloMonitor &operator=(const SloMonitor &) = delete;

  /// Evaluate one slice now: registry delta since the previous tick ->
  /// window -> gauges + breach log. Thread-safe (serialized internally).
  void tick();

  /// Run tick() every `cadence` on a background thread until stop().
  void start();
  void stop();

  /// Window state after the latest tick.
  struct Snapshot {
    std::uint64_t slices = 0;  // ticks evaluated so far
    std::uint64_t window_success = 0;
    std::uint64_t window_errors = 0;
    double goodput = 1.0;
    double p99_us = 0.0;
    double burn_rate = 0.0;
  };
  [[nodiscard]] Snapshot current() const;

  /// Every breach, in tick order. Deterministic per seeded workload.
  [[nodiscard]] std::vector<SloBreach> breaches() const;

  /// The breach log rendered one line per event — what determinism tests
  /// compare across reruns. Timestamps come from the injected clock.
  [[nodiscard]] std::string breach_log_string() const;

  [[nodiscard]] const SloConfig &config() const noexcept { return config_; }

 private:
  struct Slice {
    std::uint64_t success = 0;
    std::uint64_t errors = 0;
    std::vector<std::uint64_t> latency_buckets;  // per-slice delta
  };

  [[nodiscard]] std::int64_t now_us() const;
  void set_gauge(const std::string &name, std::int64_t value);

  SloConfig config_;
  Registry &registry_;

  mutable std::mutex mu_;
  std::uint64_t ticks_ = 0;
  std::uint64_t last_success_ = 0;
  std::uint64_t last_errors_ = 0;
  std::vector<std::uint64_t> last_buckets_;
  std::vector<double> bucket_bounds_;
  std::deque<Slice> window_;
  Snapshot snapshot_;
  std::vector<SloBreach> breaches_;
  std::map<std::string, std::int64_t> gauge_emitted_;  // set-on-add deltas

  std::mutex bg_mu_;
  std::condition_variable bg_cv_;
  bool bg_stop_ = false;
  std::thread bg_;
};

}  // namespace treu::obs
