#pragma once

// Scoped tracing spans with Chrome trace-event export.
//
// A `Span` is an RAII region: construction stamps the start, destruction
// stamps the end and hands one record to the owning `TraceCollector`.
// Nesting is implicit — spans on one thread close in reverse creation order,
// and a global sequence counter stamped at both endpoints lets the exporter
// order same-microsecond events exactly as they happened, so the emitted
// "B"/"E" pairs are always balanced and properly nested per thread.
//
// The exported JSON is the Chrome trace-event "JSON Object Format"
// ({"traceEvents": [...]}) and loads directly in chrome://tracing and
// Perfetto. `counter_event` adds "C"-phase samples (e.g. the autotuner's
// best-cost trajectory) that render as counter tracks.
//
// The collector caps retained spans (default 65536) so benchmark hot loops
// cannot grow memory without bound; overflow is counted, not silently
// ignored.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "treu/obs/causal.hpp"

namespace treu::obs {

struct SpanRecord {
  std::string name;
  std::uint32_t tid = 0;
  std::uint64_t start_us = 0;
  std::uint64_t end_us = 0;
  std::uint64_t start_seq = 0;  // global order stamp at construction
  std::uint64_t end_seq = 0;    // global order stamp at destruction

  // Causal linkage (v2): zero trace id means "plain span" (pre-v2 records
  // are unchanged). Causal spans additionally carry their trace tree
  // position; span/parent ids follow the deterministic scheme in
  // causal.hpp.
  TraceId trace;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;

  [[nodiscard]] bool causal() const noexcept { return trace.valid(); }
};

struct CounterEventRecord {
  std::string name;
  std::uint32_t tid = 0;
  std::uint64_t ts_us = 0;
  std::uint64_t seq = 0;
  double value = 0.0;
};

class TraceCollector {
 public:
  TraceCollector() = default;
  TraceCollector(const TraceCollector &) = delete;
  TraceCollector &operator=(const TraceCollector &) = delete;

  /// Microseconds since this collector was constructed (steady clock).
  [[nodiscard]] std::uint64_t now_us() const noexcept;

  [[nodiscard]] std::uint64_t next_seq() noexcept {
    return seq_.fetch_add(1, std::memory_order_relaxed);
  }

  void record_span(SpanRecord record);
  void counter_event(std::string name, double value);

  /// Record one causally-linked span with explicit timestamps (collector
  /// clock, see now_us()). Used by emitters that learn a request's full
  /// timeline only at fulfillment, so no RAII scope exists to wrap.
  void record_causal_span(std::string name, const TraceContext &ctx,
                          std::uint64_t start_us, std::uint64_t end_us);

  [[nodiscard]] std::size_t span_count() const;
  [[nodiscard]] std::vector<SpanRecord> spans() const;

  /// All retained spans belonging to `trace`, sorted by span id.
  [[nodiscard]] std::vector<SpanRecord> spans_for(const TraceId &trace) const;

  /// Canonical rendering of every causal trace tree: traces sorted by id,
  /// spans sorted by (span_id, name), timestamps excluded — two runs of the
  /// same seed must produce identical strings (the determinism oracle).
  [[nodiscard]] std::string causal_tree_string() const;
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Retention cap for spans + counter events combined.
  void set_capacity(std::size_t max_records);

  void clear();

  /// Chrome trace-event JSON object ({"traceEvents": [...]}) with events
  /// sorted by (timestamp, global sequence): balanced B/E pairs, monotone
  /// timestamps.
  [[nodiscard]] std::string to_chrome_json() const;

  /// Small dense id for the calling thread (Chrome "tid" field).
  [[nodiscard]] static std::uint32_t this_thread_tid() noexcept;

  /// Process-wide collector used by Span's default constructor and the
  /// TREU_OBS_* macros.
  [[nodiscard]] static TraceCollector &global();

 private:
  std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();
  std::atomic<std::uint64_t> seq_{0};
  std::atomic<std::uint64_t> dropped_{0};
  mutable std::mutex mu_;
  std::size_t capacity_ = 65536;
  std::vector<SpanRecord> spans_;
  std::vector<CounterEventRecord> counter_events_;
};

/// RAII scoped span. Not copyable or movable: its identity is the scope.
class Span {
 public:
  explicit Span(std::string name,
                TraceCollector &collector = TraceCollector::global())
      : collector_(&collector),
        name_(std::move(name)),
        start_us_(collector.now_us()),
        start_seq_(collector.next_seq()) {}

  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

  ~Span() {
    SpanRecord record;
    record.name = std::move(name_);
    record.tid = TraceCollector::this_thread_tid();
    record.start_us = start_us_;
    record.end_us = collector_->now_us();
    record.start_seq = start_seq_;
    record.end_seq = collector_->next_seq();
    collector_->record_span(std::move(record));
  }

 private:
  TraceCollector *collector_;
  std::string name_;
  std::uint64_t start_us_;
  std::uint64_t start_seq_;
};

}  // namespace treu::obs
