#pragma once

// Telemetry report sink: serialize a run's metrics + spans into one JSON
// artifact and register its digest with the reproducibility kernel.
//
// This header is the glue between treu::obs and treu::core and is
// deliberately header-only: treu_obs is a leaf library (treu_parallel links
// it for hot-path instrumentation, treu_core links treu_parallel), so the
// obs *library* must not link core. Benchmarks and tests that include this
// header already link the whole stack.
//
// The artifact is a Chrome trace-event "JSON Object Format" document — it
// loads as-is in chrome://tracing / Perfetto — with the merged metrics
// snapshot attached under "treuMetrics" and run identity under "otherData".
// Its SHA-256 digest goes three places: the returned TelemetryArtifact, a
// ProvenanceGraph node derived from the run manifest, and the RunRecord
// appended to the hash-chained journal. That makes a benchmark run
// self-describing evidence: the numbers, the timeline that produced them,
// and a tamper-evident fingerprint binding the two.

#include <cstdio>
#include <fstream>
#include <iterator>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "treu/core/manifest.hpp"
#include "treu/core/provenance.hpp"
#include "treu/core/sha256.hpp"
#include "treu/obs/json.hpp"
#include "treu/obs/metrics.hpp"
#include "treu/obs/trace.hpp"

namespace treu::obs {

struct TelemetryOptions {
  std::string path;  // empty => telemetry disabled

  [[nodiscard]] bool enabled() const noexcept { return !path.empty(); }
};

/// Extract `--telemetry <path>` or `--telemetry=<path>` from argv, removing
/// the consumed arguments so google-benchmark's own flag parsing never sees
/// them. Unrecognized arguments are left untouched.
inline TelemetryOptions parse_telemetry_flag(int &argc, char **argv) {
  TelemetryOptions opts;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--telemetry" && i + 1 < argc) {
      opts.path = argv[++i];
    } else if (arg.rfind("--telemetry=", 0) == 0) {
      opts.path = arg.substr(std::string("--telemetry=").size());
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  return opts;
}

/// Render the combined telemetry document (metrics + trace) as JSON text.
inline std::string render_telemetry_json(const std::string &run_name,
                                         const MetricsSnapshot &metrics,
                                         const TraceCollector &collector) {
  auto doc_opt = json::Value::parse(collector.to_chrome_json());
  json::Value doc = doc_opt ? std::move(*doc_opt) : json::Value(json::Object{});

  json::Object other;
  other.emplace("run", run_name);
  other.emplace("producer", "treu::obs");
  other.emplace("dropped_trace_records",
                static_cast<std::int64_t>(collector.dropped()));
  doc.as_object().emplace("otherData", std::move(other));

  json::Object counters;
  for (const auto &[name, v] : metrics.counters) {
    counters.emplace(name, static_cast<std::int64_t>(v));
  }
  json::Object gauges;
  for (const auto &[name, v] : metrics.gauges) gauges.emplace(name, v);
  json::Object histograms;
  for (const auto &[name, h] : metrics.histograms) {
    json::Array bounds;
    for (const double b : h.upper_bounds) bounds.push_back(b);
    json::Array buckets;
    for (const std::uint64_t c : h.buckets) {
      buckets.push_back(static_cast<std::int64_t>(c));
    }
    json::Object hist;
    hist.emplace("upper_bounds", std::move(bounds));
    hist.emplace("buckets", std::move(buckets));
    hist.emplace("count", static_cast<std::int64_t>(h.count));
    hist.emplace("sum", h.sum);
    if (!h.exemplars.empty()) {
      // Only present when at least one exemplar was recorded, so telemetry
      // from runs with tracing disabled is byte-identical to pre-exemplar
      // output. Empty string = bucket never saw a sampled observation.
      json::Array exemplars;
      for (const TraceId &id : h.exemplars) {
        exemplars.push_back(id.valid() ? id.hex() : std::string());
      }
      hist.emplace("exemplars", std::move(exemplars));
    }
    histograms.emplace(name, std::move(hist));
  }
  json::Object treu_metrics;
  treu_metrics.emplace("counters", std::move(counters));
  treu_metrics.emplace("gauges", std::move(gauges));
  treu_metrics.emplace("histograms", std::move(histograms));
  doc.as_object().emplace("treuMetrics", std::move(treu_metrics));

  return doc.dump();
}

struct TelemetryArtifact {
  std::string path;
  core::Digest digest;  // SHA-256 of the file's bytes
  std::size_t bytes = 0;
  std::size_t span_count = 0;
};

/// Serialize and write the artifact; throws std::runtime_error when the
/// file cannot be written. The write is atomic (temp file + rename): a
/// crash or failure mid-write leaves either the previous artifact or
/// nothing at `path`, never a truncated JSON that downstream digest checks
/// would chase.
inline TelemetryArtifact write_telemetry(
    const std::string &path, const std::string &run_name,
    const Registry &registry = Registry::global(),
    const TraceCollector &collector = TraceCollector::global()) {
  const std::string body =
      render_telemetry_json(run_name, registry.snapshot(), collector);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out || !(out << body) || !out.flush()) {
      (void)std::remove(tmp.c_str());
      throw std::runtime_error("write_telemetry: cannot write " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    (void)std::remove(tmp.c_str());
    throw std::runtime_error("write_telemetry: cannot rename " + tmp +
                             " to " + path);
  }
  TelemetryArtifact artifact;
  artifact.path = path;
  artifact.digest = core::sha256(body);
  artifact.bytes = body.size();
  artifact.span_count = collector.span_count();
  return artifact;
}

/// Bind a telemetry artifact to its run: provenance edge manifest ->
/// telemetry, plus the digest recorded in the RunRecord's artifact map.
inline void register_telemetry(const TelemetryArtifact &artifact,
                               const core::Manifest &manifest,
                               core::ProvenanceGraph &graph,
                               core::RunRecord &record) {
  const std::string manifest_node = "manifest:" + manifest.name;
  const std::string telemetry_node = "telemetry:" + manifest.name;
  if (!graph.contains(manifest_node)) {
    graph.add_artifact(manifest_node, manifest.digest());
  }
  graph.add_artifact(telemetry_node, artifact.digest, {manifest_node});
  record.manifest_digest = manifest.digest();
  record.artifacts["telemetry"] = artifact.digest;
}

/// Bind a flight-recorder dump to the same run: provenance edge manifest ->
/// flight dump, plus the digest in the RunRecord's artifact map. Returns
/// false (and registers nothing) when the dump file cannot be read — a
/// missing dump must not invalidate the telemetry that did get written.
inline bool register_flight_dump(const std::string &dump_path,
                                 const core::Manifest &manifest,
                                 core::ProvenanceGraph &graph,
                                 core::RunRecord &record) {
  std::ifstream in(dump_path, std::ios::binary);
  if (!in) return false;
  std::string body((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) return false;
  const std::string manifest_node = "manifest:" + manifest.name;
  if (!graph.contains(manifest_node)) {
    graph.add_artifact(manifest_node, manifest.digest());
  }
  graph.add_artifact("flight:" + manifest.name, core::sha256(body),
                     {manifest_node});
  record.artifacts["flight_recorder"] = core::sha256(body);
  return true;
}

/// One-call bench epilogue: write the artifact, register it in a provenance
/// graph and a journaled run record, and print where the evidence went.
/// When `flight_dump_path` names a flight-recorder dump written by the same
/// run, its digest is registered alongside the telemetry artifact.
/// Returns nullopt when telemetry was not requested.
inline std::optional<TelemetryArtifact> finish_telemetry_run(
    const TelemetryOptions &opts, core::Manifest manifest,
    const Registry &registry = Registry::global(),
    const TraceCollector &collector = TraceCollector::global(),
    const std::string &flight_dump_path = {}) {
  if (!opts.enabled()) return std::nullopt;

  TelemetryArtifact artifact;
  try {
    artifact = write_telemetry(opts.path, manifest.name, registry, collector);
  } catch (const std::runtime_error &e) {
    // A bad --telemetry path shouldn't abort the bench after the (valid)
    // measurements already ran; report and drop the artifact.
    std::fprintf(stderr, "telemetry: ERROR %s\n", e.what());
    return std::nullopt;
  }

  core::ProvenanceGraph graph;
  core::RunRecord record;
  register_telemetry(artifact, manifest, graph, record);
  bool flight_registered = false;
  if (!flight_dump_path.empty()) {
    flight_registered =
        register_flight_dump(flight_dump_path, manifest, graph, record);
    if (!flight_registered) {
      std::fprintf(stderr, "telemetry: ERROR cannot read flight dump %s\n",
                   flight_dump_path.c_str());
    }
  }

  // Fold headline counters/gauges into the run record so the journal entry
  // is meaningful without opening the artifact.
  const MetricsSnapshot snap = registry.snapshot();
  for (const auto &[name, v] : snap.counters) {
    record.metrics[name] = static_cast<double>(v);
  }
  for (const auto &[name, v] : snap.gauges) {
    record.metrics[name] = static_cast<double>(v);
  }
  record.notes = "telemetry artifact: " + artifact.path;

  core::Journal journal;
  const core::Digest head = journal.append(record);

  std::printf("telemetry: wrote %s (%zu bytes, %zu spans)\n",
              artifact.path.c_str(), artifact.bytes, artifact.span_count);
  std::printf("telemetry: artifact sha256 %s\n", artifact.digest.hex().c_str());
  std::printf("telemetry: provenance %s -> %s, journal head %s\n",
              ("manifest:" + manifest.name).c_str(),
              ("telemetry:" + manifest.name).c_str(), head.hex().c_str());
  if (flight_registered) {
    std::printf("telemetry: flight recorder dump registered: %s\n",
                flight_dump_path.c_str());
  }
  return artifact;
}

}  // namespace treu::obs
