#pragma once

// Instrumentation entry points for library code.
//
// All hot-path instrumentation in treu goes through these macros so it can
// be compiled out entirely. The build defines TREU_OBS_ENABLED to 1 or 0
// (CMake option of the same name, default ON); when 0 every macro expands
// to `(void)0` / nothing and the instrumented code carries zero overhead —
// the obs classes still exist (direct API users keep working), only the
// embedded telemetry sites disappear.
//
// Counter/gauge/histogram macros cache the Registry lookup in a
// function-local static, so the name->object mutex is paid once per call
// site and every subsequent hit is a single relaxed atomic RMW.

#include <chrono>

#include "treu/obs/causal.hpp"
#include "treu/obs/flight_recorder.hpp"
#include "treu/obs/metrics.hpp"
#include "treu/obs/trace.hpp"

#ifndef TREU_OBS_ENABLED
#define TREU_OBS_ENABLED 1
#endif

namespace treu::obs {

/// RAII timer that records its scope's duration (in microseconds) into a
/// histogram. Used via TREU_OBS_SCOPED_LATENCY_US so the clock reads vanish
/// when instrumentation is compiled out.
class ScopedLatencyUs {
 public:
  explicit ScopedLatencyUs(Histogram *hist) noexcept
      : hist_(hist), start_(std::chrono::steady_clock::now()) {}
  ScopedLatencyUs(const ScopedLatencyUs &) = delete;
  ScopedLatencyUs &operator=(const ScopedLatencyUs &) = delete;
  ~ScopedLatencyUs() {
    hist_->observe(std::chrono::duration<double, std::micro>(
                       std::chrono::steady_clock::now() - start_)
                       .count());
  }

 private:
  Histogram *hist_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace treu::obs

#if TREU_OBS_ENABLED

#define TREU_OBS_COUNTER_ADD(name, n)                                     \
  do {                                                                    \
    static ::treu::obs::Counter *treu_obs_counter_ =                      \
        ::treu::obs::Registry::global().counter(name);                    \
    treu_obs_counter_->add(n);                                            \
  } while (0)

#define TREU_OBS_GAUGE_ADD(name, delta)                                   \
  do {                                                                    \
    static ::treu::obs::Gauge *treu_obs_gauge_ =                          \
        ::treu::obs::Registry::global().gauge(name);                      \
    treu_obs_gauge_->add(delta);                                          \
  } while (0)

#define TREU_OBS_HISTOGRAM_OBSERVE(name, value)                           \
  do {                                                                    \
    static ::treu::obs::Histogram *treu_obs_histogram_ =                  \
        ::treu::obs::Registry::global().histogram(name);                  \
    treu_obs_histogram_->observe(value);                                  \
  } while (0)

/// Declares an RAII span named `var` covering the rest of the scope.
#define TREU_OBS_SPAN(var, name) ::treu::obs::Span var{(name)}

/// Declares an RAII timer `var` that records the scope's duration into the
/// named histogram at scope exit.
#define TREU_OBS_SCOPED_LATENCY_US(var, name)                             \
  static ::treu::obs::Histogram *var##_hist_ =                            \
      ::treu::obs::Registry::global().histogram(name);                    \
  ::treu::obs::ScopedLatencyUs var {                                      \
    var##_hist_                                                           \
  }

/// Emits one sample on a Chrome counter track (ph "C").
#define TREU_OBS_COUNTER_EVENT(name, value) \
  ::treu::obs::TraceCollector::global().counter_event((name), (value))

/// observe() plus an exemplar trace id on the bucket the value lands in.
#define TREU_OBS_HISTOGRAM_OBSERVE_EXEMPLAR(name, value, trace)           \
  do {                                                                    \
    static ::treu::obs::Histogram *treu_obs_histogram_ =                  \
        ::treu::obs::Registry::global().histogram(name);                  \
    treu_obs_histogram_->observe_exemplar((value), (trace));              \
  } while (0)

/// Drops one compact event into the per-thread flight-recorder ring.
/// No-op (one relaxed load) while the recorder is disabled.
#define TREU_OBS_FR_EVENT(kind, trace_lo, a, b)                           \
  ::treu::obs::FlightRecorder::global().record(                           \
      ::treu::obs::FrEvent::kind, (trace_lo), (a), (b))

/// Records one causally-linked span with explicit timestamps (collector
/// clock) into the global TraceCollector.
#define TREU_OBS_CAUSAL_SPAN(name, ctx, start_us, end_us)                 \
  ::treu::obs::TraceCollector::global().record_causal_span(               \
      (name), (ctx), (start_us), (end_us))

#else  // TREU_OBS_ENABLED == 0

#define TREU_OBS_COUNTER_ADD(name, n) (void)0
#define TREU_OBS_GAUGE_ADD(name, delta) (void)0
#define TREU_OBS_HISTOGRAM_OBSERVE(name, value) (void)0
#define TREU_OBS_SPAN(var, name) (void)0
#define TREU_OBS_SCOPED_LATENCY_US(var, name) (void)0
#define TREU_OBS_COUNTER_EVENT(name, value) (void)0
#define TREU_OBS_HISTOGRAM_OBSERVE_EXEMPLAR(name, value, trace) (void)0
#define TREU_OBS_FR_EVENT(kind, trace_lo, a, b) (void)0
#define TREU_OBS_CAUSAL_SPAN(name, ctx, start_us, end_us) (void)0

#endif  // TREU_OBS_ENABLED
