#pragma once

// Request-scoped causal tracing primitives.
//
// A TraceId is 128 bits derived *deterministically* from (seed, request_seq)
// by a splitmix64-style mix implemented right here — treu_obs is a leaf
// library and must not link treu_core, so it cannot reach core::Rng; any
// pure, platform-independent function of (seed, seq) satisfies the
// contract. Two runs with the same seed assign the same trace id to the
// k-th submitted request, so their trace trees are comparable record for
// record.
//
// Sampling is head-based and deterministic: whether a trace is sampled is a
// pure function of (trace id, rate), decided once at the root and inherited
// by every child span. No coin flips, no per-run drift — a replayed seed
// samples exactly the same requests.
//
// Span ids inside one trace follow a fixed scheme (kSpanRoot etc. below)
// assigned by the emitter, not by a counter, so parentage is reproducible
// without any cross-thread coordination.

#include <cstdint>
#include <string>

namespace treu::obs {

/// 128-bit trace identity. {0, 0} means "no trace".
struct TraceId {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  [[nodiscard]] constexpr bool valid() const noexcept { return (hi | lo) != 0; }

  friend bool operator==(const TraceId &, const TraceId &) = default;

  /// 32 lowercase hex digits, the wire form used in dumps and exemplars.
  [[nodiscard]] std::string hex() const {
    static const char *digits = "0123456789abcdef";
    std::string out(32, '0');
    for (int i = 0; i < 16; ++i) {
      const std::uint64_t w = i < 8 ? hi : lo;
      const int shift = 60 - 8 * (i % 8);
      out[static_cast<std::size_t>(2 * i)] = digits[(w >> shift) & 0xF];
      out[static_cast<std::size_t>(2 * i + 1)] =
          digits[(w >> (shift - 4)) & 0xF];
    }
    return out;
  }
};

namespace detail {

/// splitmix64 finalizer: the standard 64-bit avalanche mix.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace detail

/// The deterministic trace id for request `request_seq` of stream `seed`.
/// Pure: same (seed, seq) -> same id on every platform, run and thread
/// interleaving. The two halves use distinct domain constants so hi and lo
/// are independent mixes of the same identity.
[[nodiscard]] constexpr TraceId derive_trace_id(
    std::uint64_t seed, std::uint64_t request_seq) noexcept {
  TraceId id;
  id.hi = detail::mix64(detail::mix64(seed ^ 0x7265712D686900ULL) +
                        request_seq);
  id.lo = detail::mix64(detail::mix64(seed ^ 0x7265712D6C6F00ULL) +
                        request_seq * 0x9E3779B97F4A7C15ULL + 1);
  if (!id.valid()) id.lo = 1;  // reserve {0,0} for "no trace"
  return id;
}

/// Head-based deterministic sampling: true iff this trace is kept at
/// `sample_rate` in [0, 1]. Pure function of the id — every run, and every
/// component observing the same trace, agrees.
[[nodiscard]] constexpr bool head_sample(const TraceId &id,
                                         double sample_rate) noexcept {
  if (sample_rate <= 0.0 || !id.valid()) return false;
  if (sample_rate >= 1.0) return true;
  // 53 uniform bits of the (already avalanched) low word -> [0, 1).
  const double u =
      static_cast<double>(id.lo >> 11) * (1.0 / 9007199254740992.0);
  return u < sample_rate;
}

/// Fixed span-id scheme inside one request trace. Emitters assign these
/// rather than drawing from a counter, so two runs of the same seed build
/// identical (id, parent) trees.
inline constexpr std::uint64_t kSpanRoot = 1;     // whole request lifetime
inline constexpr std::uint64_t kSpanQueue = 2;    // admission -> dispatch
inline constexpr std::uint64_t kSpanOutcome = 3;  // terminal marker
/// Attempt k (0-based) of the batch the request rode in.
[[nodiscard]] constexpr std::uint64_t span_id_attempt(
    std::uint64_t attempt) noexcept {
  return 16 + attempt;
}

/// One request's (or recovery action's) tracing identity, threaded through
/// the serving/recovery stack. `sampled` is decided once at the root.
struct TraceContext {
  TraceId id;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;
  bool sampled = false;

  [[nodiscard]] bool active() const noexcept { return sampled && id.valid(); }

  /// Root context for request `request_seq` of stream `seed`.
  [[nodiscard]] static TraceContext root(std::uint64_t seed,
                                         std::uint64_t request_seq,
                                         double sample_rate) noexcept {
    TraceContext ctx;
    ctx.id = derive_trace_id(seed, request_seq);
    ctx.span_id = kSpanRoot;
    ctx.parent_span_id = 0;
    ctx.sampled = head_sample(ctx.id, sample_rate);
    return ctx;
  }

  /// Child context under this one with the scheme-assigned `span_id`.
  [[nodiscard]] TraceContext child(std::uint64_t child_span_id) const
      noexcept {
    TraceContext ctx = *this;
    ctx.parent_span_id = ctx.span_id;
    ctx.span_id = child_span_id;
    return ctx;
  }
};

}  // namespace treu::obs
