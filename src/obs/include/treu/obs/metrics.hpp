#pragma once

// Low-overhead metrics registry: named counters, gauges, and fixed-bucket
// histograms.
//
// Design notes
//  - Hot-path writes are a single relaxed atomic RMW on a cache-line-padded
//    shard picked by the calling thread, so concurrent writers from the
//    thread pool never contend on one line. Reads merge all shards
//    ("merge-on-read"): the merged value is exact once writers are quiescent
//    and monotonically approximate while they are not — the right trade for
//    telemetry.
//  - Metric objects are created once through a `Registry` and live for the
//    registry's lifetime; instrumentation sites cache the returned pointer
//    (see TREU_OBS_* macros in obs.hpp), so the name lookup mutex is paid
//    once per call site, not per increment.
//  - Histograms are Prometheus-style: `upper_bounds` must be strictly
//    increasing; bucket i counts observations v with bounds[i-1] < v <=
//    bounds[i], and a final +inf bucket catches the overflow.

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "treu/obs/causal.hpp"

namespace treu::obs {

namespace detail {

/// Number of write shards per metric (power of two).
inline constexpr std::size_t kShards = 16;

/// Stable small index for the calling thread, used to pick a shard.
[[nodiscard]] std::size_t this_thread_shard() noexcept;

struct alignas(64) PaddedU64 {
  std::atomic<std::uint64_t> v{0};
};

struct alignas(64) PaddedI64 {
  std::atomic<std::int64_t> v{0};
};

/// Relaxed add for atomic<double> (fetch_add on double is C++20 but a CAS
/// loop is portable across the toolchains CI uses).
void add_relaxed(std::atomic<double> &a, double delta) noexcept;

}  // namespace detail

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    shards_[detail::this_thread_shard()].v.fetch_add(n,
                                                     std::memory_order_relaxed);
  }

  /// Merge-on-read sum over all shards.
  [[nodiscard]] std::uint64_t value() const noexcept;

 private:
  std::array<detail::PaddedU64, detail::kShards> shards_;
};

/// Signed instantaneous quantity (e.g. queue depth). Increments and
/// decrements may come from different threads; the merged sum stays exact
/// because the deltas commute.
class Gauge {
 public:
  void add(std::int64_t delta) noexcept {
    shards_[detail::this_thread_shard()].v.fetch_add(
        delta, std::memory_order_relaxed);
  }
  void sub(std::int64_t delta) noexcept { add(-delta); }

  [[nodiscard]] std::int64_t value() const noexcept;

 private:
  std::array<detail::PaddedI64, detail::kShards> shards_;
};

/// Point-in-time view of one histogram.
struct HistogramSnapshot {
  std::vector<double> upper_bounds;     // strictly increasing
  std::vector<std::uint64_t> buckets;   // size upper_bounds.size() + 1
  std::uint64_t count = 0;
  double sum = 0.0;
  /// Per-bucket exemplar trace ids (see Histogram::observe_exemplar).
  /// Empty unless at least one exemplar was ever recorded; entries with
  /// !valid() are buckets that never saw a sampled observation.
  std::vector<TraceId> exemplars;

  [[nodiscard]] double mean() const noexcept {
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
  }
};

/// Fixed-bucket latency/value histogram with sharded bucket counters.
class Histogram {
 public:
  /// `upper_bounds` must be non-empty and strictly increasing; throws
  /// std::invalid_argument otherwise.
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double value) noexcept;

  /// observe(value) plus an exemplar: the bucket remembers `trace` as the
  /// trace id of a recent sample landing in it, so a p99 outlier in the
  /// metrics jumps straight to a concrete trace. Last-writer-wins; a writer
  /// finding the slot mid-update drops its exemplar rather than waiting
  /// (exemplars are samples, losing one under contention is free).
  void observe_exemplar(double value, const TraceId &trace) noexcept;

  [[nodiscard]] const std::vector<double> &upper_bounds() const noexcept {
    return bounds_;
  }
  [[nodiscard]] HistogramSnapshot snapshot() const;
  [[nodiscard]] std::uint64_t count() const { return snapshot().count; }

  /// Default bucket bounds for microsecond latencies: 1-2-5 decades from
  /// 1us to 10s.
  [[nodiscard]] static std::vector<double> default_latency_bounds_us();

 private:
  struct Shard {
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets;  // bounds + 1
    std::atomic<double> sum{0.0};
  };
  /// One exemplar slot: version is even when stable, odd while a writer
  /// owns it. Writers claim with a CAS and bail out (dropping the
  /// exemplar) when another writer holds the slot; readers retry on a
  /// version change so they never observe a mixed hi/lo pair.
  struct ExemplarSlot {
    std::atomic<std::uint64_t> version{0};
    std::atomic<std::uint64_t> hi{0};
    std::atomic<std::uint64_t> lo{0};
  };

  [[nodiscard]] std::size_t bucket_index(double value) const noexcept;

  std::vector<double> bounds_;
  std::array<Shard, detail::kShards> shards_;
  std::unique_ptr<ExemplarSlot[]> exemplars_;  // bounds + 1, lazy-written
  std::atomic<bool> any_exemplar_{false};
};

/// Everything a registry knows, merged and ready to serialize.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  [[nodiscard]] bool empty() const noexcept {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

/// Named-metric factory and owner. Creation takes a mutex; returned pointers
/// are stable for the registry's lifetime and lock-free to write through.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry &) = delete;
  Registry &operator=(const Registry &) = delete;

  /// Find-or-create. A given name always maps to the same object.
  [[nodiscard]] Counter *counter(const std::string &name);
  [[nodiscard]] Gauge *gauge(const std::string &name);

  /// Find-or-create. The first call fixes the bucket bounds (empty span =
  /// default_latency_bounds_us); later calls ignore `upper_bounds`.
  [[nodiscard]] Histogram *histogram(const std::string &name,
                                     std::span<const double> upper_bounds = {});

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Process-wide registry used by the TREU_OBS_* instrumentation macros.
  [[nodiscard]] static Registry &global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace treu::obs
