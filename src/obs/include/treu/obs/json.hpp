#pragma once

// Minimal JSON document model for the telemetry pipeline: enough to build
// Chrome trace-event files deterministically (sorted object keys, integer
// timestamps kept integral) and to parse them back for round-trip
// verification in tests. Not a general-purpose JSON library — no comments,
// no trailing commas, numbers via strtod.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace treu::obs::json {

// Declared before the Array/Object aliases: gcc's -Wshadow flags scoped
// enumerators that spell the same name as an earlier declaration.
enum class Kind { Null, Bool, Int, Double, String, Array, Object };

class Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;  // sorted keys => stable dumps

class Value {
 public:
  Value() : kind_(Kind::Null) {}
  Value(std::nullptr_t) : kind_(Kind::Null) {}
  Value(bool b) : kind_(Kind::Bool), bool_(b) {}
  Value(std::int64_t i) : kind_(Kind::Int), int_(i) {}
  Value(std::uint64_t u) : kind_(Kind::Int), int_(static_cast<std::int64_t>(u)) {}
  Value(int i) : kind_(Kind::Int), int_(i) {}
  Value(double d) : kind_(Kind::Double), double_(d) {}
  Value(std::string s) : kind_(Kind::String), string_(std::move(s)) {}
  Value(const char *s) : kind_(Kind::String), string_(s) {}
  Value(std::string_view s) : kind_(Kind::String), string_(s) {}
  Value(Array a) : kind_(Kind::Array), array_(std::move(a)) {}
  Value(Object o) : kind_(Kind::Object), object_(std::move(o)) {}

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::Null; }
  [[nodiscard]] bool is_bool() const noexcept { return kind_ == Kind::Bool; }
  [[nodiscard]] bool is_number() const noexcept {
    return kind_ == Kind::Int || kind_ == Kind::Double;
  }
  [[nodiscard]] bool is_string() const noexcept { return kind_ == Kind::String; }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::Array; }
  [[nodiscard]] bool is_object() const noexcept { return kind_ == Kind::Object; }

  [[nodiscard]] bool as_bool() const { return bool_; }
  [[nodiscard]] std::int64_t as_int() const {
    return kind_ == Kind::Double ? static_cast<std::int64_t>(double_) : int_;
  }
  [[nodiscard]] double as_double() const {
    return kind_ == Kind::Int ? static_cast<double>(int_) : double_;
  }
  [[nodiscard]] const std::string &as_string() const { return string_; }
  [[nodiscard]] const Array &as_array() const { return array_; }
  [[nodiscard]] Array &as_array() { return array_; }
  [[nodiscard]] const Object &as_object() const { return object_; }
  [[nodiscard]] Object &as_object() { return object_; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Value *find(const std::string &key) const {
    if (kind_ != Kind::Object) return nullptr;
    const auto it = object_.find(key);
    return it == object_.end() ? nullptr : &it->second;
  }

  /// Compact serialization (no whitespace). Strings are escaped per RFC
  /// 8259; non-finite doubles serialize as null (JSON has no inf/nan).
  [[nodiscard]] std::string dump() const;

  /// Strict parse of a complete document. nullopt on any syntax error or
  /// trailing garbage.
  [[nodiscard]] static std::optional<Value> parse(std::string_view text);

 private:
  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Escape a raw string into a quoted JSON string literal.
[[nodiscard]] std::string escape(std::string_view raw);

}  // namespace treu::obs::json
