#pragma once

// Machine unlearning (§2.3).
//
// Goal as stated by the project: make a model "behave as if it had never
// been trained on certain data" — here, an entire class — without the cost
// of full retraining. Two techniques:
//
//  1. `unlearn_class`: targeted forgetting — a few epochs of gradient
//     *ascent* on the forget set (pushing its probability down) followed by
//     a short *repair* fine-tune on the retain set to recover collateral
//     damage. This is the project's "technique that avoids complete
//     retraining", compared against the `retrain_from_scratch` oracle.
//
//  2. `SisaEnsemble`: sharded training (SISA-style). Data is split into S
//     shards with one model each; prediction is the vote/mean. Deleting
//     specific samples only retrains the shards that contained them, which
//     bounds unlearning cost to n/S samples per deletion — exact
//     unlearning, at an accuracy price.
//
// Verification uses the mean probability the model assigns to the
// forgotten class on held-out forget-class inputs (a membership-style
// probe): after unlearning it should drop to the vicinity of what a
// never-trained-on-that-class model produces.

#include <cstddef>
#include <memory>
#include <vector>

#include "treu/core/rng.hpp"
#include "treu/nn/mlp.hpp"

namespace treu::unlearn {

/// Gaussian-blob classification data: `classes` clusters in `dim`
/// dimensions, `per_class` samples each, cluster spread `sigma`.
[[nodiscard]] nn::Dataset make_blobs(std::size_t classes, std::size_t per_class,
                                     std::size_t dim, double sigma,
                                     core::Rng &rng);

struct UnlearnConfig {
  std::size_t ascent_steps = 40;   // gradient-ascent batches on the forget set
  double ascent_lr = 1e-2;
  std::size_t repair_epochs = 5;   // fine-tune on the retain set
  double repair_lr = 2e-3;
  std::size_t batch_size = 32;
};

struct UnlearnOutcome {
  double seconds = 0.0;
  double retain_accuracy = 0.0;   // on held-out retain-class data
  double forget_probability = 0.0;  // mean prob of the forgotten class
  double forget_accuracy = 0.0;   // fraction of forget inputs still predicted as it
};

/// Apply class-forgetting in place.
UnlearnOutcome unlearn_class(nn::MlpClassifier &model,
                             const nn::Dataset &forget_set,
                             const nn::Dataset &retain_set,
                             const nn::Dataset &retain_eval,
                             std::size_t forget_class,
                             const UnlearnConfig &config, core::Rng &rng);

/// SISA sharded ensemble over MlpClassifier members.
class SisaEnsemble {
 public:
  SisaEnsemble(std::size_t shards, std::size_t input_dim,
               std::vector<std::size_t> hidden, std::size_t classes,
               core::Rng &rng);

  /// Train every shard on its slice of `data`.
  void fit(const nn::Dataset &data, const nn::TrainConfig &config,
           core::Rng &rng);

  /// Remove samples by index (into the dataset given to fit) and retrain
  /// only the affected shards. Returns how many shards were retrained.
  std::size_t forget_samples(const std::vector<std::size_t> &indices,
                             const nn::TrainConfig &config, core::Rng &rng);

  [[nodiscard]] std::vector<std::size_t> predict(const tensor::Matrix &x);
  [[nodiscard]] double evaluate(const nn::Dataset &data);
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return members_.size();
  }

 private:
  struct Shard {
    std::unique_ptr<nn::MlpClassifier> model;
    std::vector<std::size_t> sample_indices;  // into the fitted dataset
  };
  std::vector<Shard> members_;
  std::size_t input_dim_;
  std::vector<std::size_t> hidden_;
  std::size_t classes_;
  nn::Dataset train_data_;
  core::Rng member_seed_rng_;
};

/// Full comparison driver for the §2.3 experiment.
struct ExperimentResult {
  double original_retain_acc = 0.0;
  double original_forget_prob = 0.0;
  double retrain_seconds = 0.0;
  double retrain_retain_acc = 0.0;
  double retrain_forget_prob = 0.0;
  double unlearn_seconds = 0.0;
  double unlearn_retain_acc = 0.0;
  double unlearn_forget_prob = 0.0;
};

struct ExperimentConfig {
  std::size_t classes = 5;
  std::size_t per_class = 120;
  std::size_t dim = 16;
  double sigma = 1.1;
  std::size_t forget_class = 0;
  std::vector<std::size_t> hidden = {32};
  nn::TrainConfig train;
  UnlearnConfig unlearn;
};

[[nodiscard]] ExperimentResult run_unlearning_experiment(
    const ExperimentConfig &config, core::Rng &rng);

}  // namespace treu::unlearn
