#include "treu/unlearn/unlearn.hpp"

#include <algorithm>
#include <numeric>

#include "treu/core/timer.hpp"
#include "treu/nn/optimizer.hpp"

namespace treu::unlearn {

nn::Dataset make_blobs(std::size_t classes, std::size_t per_class,
                       std::size_t dim, double sigma, core::Rng &rng) {
  nn::Dataset data;
  data.x = tensor::Matrix(classes * per_class, dim);
  data.y.resize(classes * per_class);
  // Well-separated deterministic centers + per-class RNG lanes.
  std::vector<std::vector<double>> centers(classes);
  for (std::size_t c = 0; c < classes; ++c) {
    core::Rng center_rng = rng.split(1000 + c);
    centers[c].resize(dim);
    for (auto &v : centers[c]) v = center_rng.normal(0.0, 3.0);
  }
  std::size_t row = 0;
  for (std::size_t c = 0; c < classes; ++c) {
    for (std::size_t s = 0; s < per_class; ++s, ++row) {
      auto dst = data.x.row(row);
      for (std::size_t j = 0; j < dim; ++j) {
        dst[j] = centers[c][j] + rng.normal(0.0, sigma);
      }
      data.y[row] = c;
    }
  }
  return data;
}

UnlearnOutcome unlearn_class(nn::MlpClassifier &model,
                             const nn::Dataset &forget_set,
                             const nn::Dataset &retain_set,
                             const nn::Dataset &retain_eval,
                             std::size_t forget_class,
                             const UnlearnConfig &config, core::Rng &rng) {
  UnlearnOutcome out;
  core::WallTimer timer;

  // Phase 1: retarget the forget set to the uniform distribution over the
  // *other* classes. Unlike raw gradient ascent this loss is bounded below,
  // so the optimizer cannot blow up the shared representation.
  {
    nn::Adam retarget(config.ascent_lr);
    const std::size_t classes = model.classes();
    const double uniform = classes > 1
                               ? 1.0 / static_cast<double>(classes - 1)
                               : 1.0;
    std::vector<std::size_t> order(forget_set.size());
    std::iota(order.begin(), order.end(), 0);
    std::size_t cursor = 0;
    for (std::size_t step = 0; step < config.ascent_steps; ++step) {
      if (cursor >= order.size()) {
        cursor = 0;
        rng.shuffle(order);
      }
      const std::size_t take =
          std::min(config.batch_size, order.size() - cursor);
      const std::span<const std::size_t> idx(order.data() + cursor, take);
      cursor += take;
      const nn::Dataset batch = forget_set.subset(idx);
      tensor::Matrix target(batch.x.rows(), classes, uniform);
      for (std::size_t r = 0; r < target.rows(); ++r) {
        target(r, forget_class) = 0.0;
      }
      model.step_toward_distribution(batch.x, target, retarget);
    }
  }

  // Phase 2: repair fine-tune on the retain set.
  {
    nn::TrainConfig repair;
    repair.epochs = config.repair_epochs;
    repair.batch_size = config.batch_size;
    repair.lr = config.repair_lr;
    model.train(retain_set, repair, rng);
  }

  out.seconds = timer.elapsed_seconds();
  out.retain_accuracy = model.evaluate(retain_eval);
  out.forget_probability =
      model.mean_class_probability(forget_set.x, forget_class);
  const auto preds = model.predict(forget_set.x);
  std::size_t still = 0;
  for (std::size_t p : preds) {
    if (p == forget_class) ++still;
  }
  out.forget_accuracy = forget_set.size() > 0
                            ? static_cast<double>(still) /
                                  static_cast<double>(forget_set.size())
                            : 0.0;
  return out;
}

SisaEnsemble::SisaEnsemble(std::size_t shards, std::size_t input_dim,
                           std::vector<std::size_t> hidden,
                           std::size_t classes, core::Rng &rng)
    : input_dim_(input_dim),
      hidden_(std::move(hidden)),
      classes_(classes),
      member_seed_rng_(rng.split(0x515A)) {
  members_.resize(std::max<std::size_t>(shards, 1));
  for (std::size_t s = 0; s < members_.size(); ++s) {
    core::Rng init = member_seed_rng_.split(s);
    members_[s].model = std::make_unique<nn::MlpClassifier>(
        input_dim_, hidden_, classes_, init);
  }
}

void SisaEnsemble::fit(const nn::Dataset &data, const nn::TrainConfig &config,
                       core::Rng &rng) {
  train_data_ = data;
  // Round-robin shard assignment (deterministic).
  for (auto &m : members_) m.sample_indices.clear();
  for (std::size_t i = 0; i < data.size(); ++i) {
    members_[i % members_.size()].sample_indices.push_back(i);
  }
  for (std::size_t s = 0; s < members_.size(); ++s) {
    const nn::Dataset shard_data = data.subset(members_[s].sample_indices);
    core::Rng train_rng = rng.split(s);
    members_[s].model->train(shard_data, config, train_rng);
  }
}

std::size_t SisaEnsemble::forget_samples(const std::vector<std::size_t> &indices,
                                         const nn::TrainConfig &config,
                                         core::Rng &rng) {
  std::vector<bool> deleted(train_data_.size(), false);
  for (std::size_t i : indices) {
    if (i < deleted.size()) deleted[i] = true;
  }
  std::size_t retrained = 0;
  for (std::size_t s = 0; s < members_.size(); ++s) {
    auto &shard = members_[s];
    const std::size_t before = shard.sample_indices.size();
    std::erase_if(shard.sample_indices,
                  [&](std::size_t i) { return deleted[i]; });
    if (shard.sample_indices.size() == before) continue;  // untouched shard
    // Exact unlearning: reinitialize and retrain this shard only.
    core::Rng init = member_seed_rng_.split(1000 + s);
    shard.model = std::make_unique<nn::MlpClassifier>(input_dim_, hidden_,
                                                      classes_, init);
    const nn::Dataset shard_data = train_data_.subset(shard.sample_indices);
    core::Rng train_rng = rng.split(5000 + s);
    shard.model->train(shard_data, config, train_rng);
    ++retrained;
  }
  return retrained;
}

std::vector<std::size_t> SisaEnsemble::predict(const tensor::Matrix &x) {
  // Mean of softmax probabilities across shards.
  tensor::Matrix total(x.rows(), classes_, 0.0);
  for (auto &m : members_) {
    const tensor::Matrix p = nn::softmax(m.model->logits(x));
    total += p;
  }
  return nn::argmax_rows(total);
}

double SisaEnsemble::evaluate(const nn::Dataset &data) {
  if (data.size() == 0) return 0.0;
  const auto preds = predict(data.x);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < preds.size(); ++i) {
    if (preds[i] == data.y[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(preds.size());
}

ExperimentResult run_unlearning_experiment(const ExperimentConfig &config,
                                           core::Rng &rng) {
  ExperimentResult result;
  core::Rng data_rng = rng.split(1);
  nn::Dataset all = make_blobs(config.classes, config.per_class, config.dim,
                               config.sigma, data_rng);
  core::Rng split_rng = rng.split(2);
  auto [train, test] = all.split(0.75, split_rng);
  auto [train_retain, train_forget] = train.without_class(config.forget_class);
  auto [test_retain, test_forget] = test.without_class(config.forget_class);

  // Original model trained on everything.
  core::Rng init_rng = rng.split(3);
  nn::MlpClassifier original(config.dim, config.hidden, config.classes,
                             init_rng);
  core::Rng train_rng = rng.split(4);
  original.train(train, config.train, train_rng);
  result.original_retain_acc = original.evaluate(test_retain);
  result.original_forget_prob =
      original.mean_class_probability(test_forget.x, config.forget_class);

  // Oracle: retrain from scratch without the forgotten class.
  {
    core::WallTimer timer;
    core::Rng retrain_init = rng.split(5);
    nn::MlpClassifier retrained(config.dim, config.hidden, config.classes,
                                retrain_init);
    core::Rng retrain_rng = rng.split(6);
    retrained.train(train_retain, config.train, retrain_rng);
    result.retrain_seconds = timer.elapsed_seconds();
    result.retrain_retain_acc = retrained.evaluate(test_retain);
    result.retrain_forget_prob =
        retrained.mean_class_probability(test_forget.x, config.forget_class);
  }

  // Our technique applied to the original model.
  {
    core::Rng unlearn_rng = rng.split(7);
    UnlearnOutcome outcome =
        unlearn_class(original, train_forget, train_retain, test_retain,
                      config.forget_class, config.unlearn, unlearn_rng);
    result.unlearn_seconds = outcome.seconds;
    result.unlearn_retain_acc = outcome.retain_accuracy;
    result.unlearn_forget_prob =
        original.mean_class_probability(test_forget.x, config.forget_class);
  }
  return result;
}

}  // namespace treu::unlearn
