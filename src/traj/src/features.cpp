#include "treu/traj/features.hpp"

#include <cmath>

namespace treu::traj {

PoiMap PoiMap::random(std::size_t n_pois, std::size_t n_categories,
                      double extent, core::Rng &rng) {
  PoiMap map;
  map.n_categories = n_categories;
  map.pois.resize(n_pois);
  for (auto &p : map.pois) {
    p.location = {rng.uniform(0.0, extent), rng.uniform(0.0, extent)};
    p.category = static_cast<std::size_t>(rng.uniform_index(n_categories));
  }
  return map;
}

Landmarks Landmarks::grid(std::size_t per_side, double extent) {
  Landmarks lm;
  lm.points.reserve(per_side * per_side);
  const double step =
      per_side > 1 ? extent / static_cast<double>(per_side - 1) : 0.0;
  for (std::size_t i = 0; i < per_side; ++i) {
    for (std::size_t j = 0; j < per_side; ++j) {
      lm.points.push_back(
          {static_cast<double>(i) * step, static_cast<double>(j) * step});
    }
  }
  return lm;
}

Landmarks Landmarks::random(std::size_t n, double extent, core::Rng &rng) {
  Landmarks lm;
  lm.points.resize(n);
  for (auto &p : lm.points) {
    p = {rng.uniform(0.0, extent), rng.uniform(0.0, extent)};
  }
  return lm;
}

std::vector<double> landmark_features(const Trajectory &t,
                                      const Landmarks &landmarks,
                                      double scale) {
  std::vector<double> out(landmarks.points.size(), 0.0);
  for (std::size_t i = 0; i < landmarks.points.size(); ++i) {
    const double d = point_to_trajectory(landmarks.points[i], t);
    out[i] = std::exp(-d / scale);
  }
  return out;
}

std::vector<double> semantic_features(const Trajectory &t, const PoiMap &map,
                                      double radius) {
  std::vector<double> out(map.n_categories, 0.0);
  std::vector<double> category_counts(map.n_categories, 0.0);
  for (const Poi &poi : map.pois) {
    if (poi.category >= map.n_categories) continue;
    category_counts[poi.category] += 1.0;
    const double d = point_to_trajectory(poi.location, t);
    if (d < radius) {
      out[poi.category] += 1.0 - d / radius;
    }
  }
  // Normalize per category so the block lives on the same O(1) scale as the
  // landmark block regardless of how many POIs the map has.
  for (std::size_t c = 0; c < out.size(); ++c) {
    if (category_counts[c] > 0.0) out[c] /= std::sqrt(category_counts[c]);
  }
  return out;
}

std::vector<double> combined_features(const Trajectory &t,
                                      const Landmarks &landmarks, double scale,
                                      const PoiMap &map, double radius) {
  std::vector<double> out = landmark_features(t, landmarks, scale);
  const std::vector<double> sem = semantic_features(t, map, radius);
  out.insert(out.end(), sem.begin(), sem.end());
  return out;
}

}  // namespace treu::traj
