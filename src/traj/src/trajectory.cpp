#include "treu/traj/trajectory.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace treu::traj {

double distance(const Point &a, const Point &b) noexcept {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

double arc_length(const Trajectory &t) noexcept {
  double s = 0.0;
  for (std::size_t i = 1; i < t.size(); ++i) s += distance(t[i - 1], t[i]);
  return s;
}

namespace {

double point_to_segment(const Point &p, const Point &a, const Point &b) noexcept {
  const double abx = b.x - a.x;
  const double aby = b.y - a.y;
  const double len2 = abx * abx + aby * aby;
  if (len2 <= 0.0) return distance(p, a);
  double t = ((p.x - a.x) * abx + (p.y - a.y) * aby) / len2;
  t = std::clamp(t, 0.0, 1.0);
  return distance(p, Point{a.x + t * abx, a.y + t * aby});
}

}  // namespace

double point_to_trajectory(const Point &p, const Trajectory &t) {
  if (t.empty()) throw std::invalid_argument("point_to_trajectory: empty");
  if (t.size() == 1) return distance(p, t[0]);
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 1; i < t.size(); ++i) {
    best = std::min(best, point_to_segment(p, t[i - 1], t[i]));
  }
  return best;
}

double directed_hausdorff(const Trajectory &a, const Trajectory &b) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("directed_hausdorff: empty trajectory");
  }
  double worst = 0.0;
  for (const Point &p : a) worst = std::max(worst, point_to_trajectory(p, b));
  return worst;
}

double hausdorff(const Trajectory &a, const Trajectory &b) {
  return std::max(directed_hausdorff(a, b), directed_hausdorff(b, a));
}

double discrete_frechet(const Trajectory &a, const Trajectory &b) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("discrete_frechet: empty trajectory");
  }
  const std::size_t n = a.size(), m = b.size();
  std::vector<double> prev(m), cur(m);
  prev[0] = distance(a[0], b[0]);
  for (std::size_t j = 1; j < m; ++j) {
    prev[j] = std::max(prev[j - 1], distance(a[0], b[j]));
  }
  for (std::size_t i = 1; i < n; ++i) {
    cur[0] = std::max(prev[0], distance(a[i], b[0]));
    for (std::size_t j = 1; j < m; ++j) {
      const double reach = std::min({prev[j], prev[j - 1], cur[j - 1]});
      cur[j] = std::max(reach, distance(a[i], b[j]));
    }
    std::swap(prev, cur);
  }
  return prev[m - 1];
}

double dtw(const Trajectory &a, const Trajectory &b) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("dtw: empty trajectory");
  }
  const std::size_t n = a.size(), m = b.size();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> prev(m + 1, kInf), cur(m + 1, kInf);
  prev[0] = 0.0;
  for (std::size_t i = 1; i <= n; ++i) {
    cur[0] = kInf;
    for (std::size_t j = 1; j <= m; ++j) {
      const double cost = distance(a[i - 1], b[j - 1]);
      cur[j] = cost + std::min({prev[j], prev[j - 1], cur[j - 1]});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

Trajectory resample(const Trajectory &t, std::size_t n) {
  if (t.empty() || n == 0) return {};
  if (t.size() == 1 || n == 1) return Trajectory(n, t[0]);
  const double total = arc_length(t);
  Trajectory out;
  out.reserve(n);
  if (total <= 0.0) {
    out.assign(n, t[0]);
    return out;
  }
  const double step = total / static_cast<double>(n - 1);
  out.push_back(t.front());
  std::size_t seg = 1;
  double seg_start = 0.0;  // arc length at t[seg-1]
  for (std::size_t i = 1; i + 1 < n; ++i) {
    const double target = step * static_cast<double>(i);
    while (seg < t.size() &&
           seg_start + distance(t[seg - 1], t[seg]) < target) {
      seg_start += distance(t[seg - 1], t[seg]);
      ++seg;
    }
    if (seg >= t.size()) {
      out.push_back(t.back());
      continue;
    }
    const double seg_len = distance(t[seg - 1], t[seg]);
    const double frac = seg_len > 0.0 ? (target - seg_start) / seg_len : 0.0;
    out.push_back(Point{t[seg - 1].x + frac * (t[seg].x - t[seg - 1].x),
                        t[seg - 1].y + frac * (t[seg].y - t[seg - 1].y)});
  }
  out.push_back(t.back());
  return out;
}

}  // namespace treu::traj
