#include "treu/traj/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace treu::traj {
namespace {

// Deterministic anchor route for a family: a gentle arc across the world
// whose curvature and endpoints depend on the family index.
Trajectory family_route(std::size_t family, double extent,
                        std::size_t control_points) {
  Trajectory route;
  route.reserve(control_points);
  const double phase = static_cast<double>(family) * 0.9;
  const double amp = extent * (0.12 + 0.05 * static_cast<double>(family % 3));
  for (std::size_t i = 0; i < control_points; ++i) {
    const double s =
        static_cast<double>(i) / static_cast<double>(control_points - 1);
    const double x = extent * s;
    const double y = extent * 0.5 +
                     amp * std::sin(2.0 * 3.14159265358979 * s + phase) +
                     extent * 0.08 * static_cast<double>(family % 5) *
                         (s - 0.5);
    route.push_back({x, y});
  }
  return route;
}

// Insert detours toward the nearest POIs of the preferred category.
void apply_detours(Trajectory &t, const PoiMap &map, std::size_t preference,
                   std::size_t detours, double strength, core::Rng &rng) {
  std::vector<const Poi *> candidates;
  for (const Poi &p : map.pois) {
    if (p.category == preference) candidates.push_back(&p);
  }
  if (candidates.empty() || t.size() < 3) return;
  for (std::size_t d = 0; d < detours; ++d) {
    // Pick a random interior waypoint and pull it (and neighbours) toward
    // the nearest preferred POI.
    const std::size_t idx =
        1 + static_cast<std::size_t>(rng.uniform_index(t.size() - 2));
    const Poi *nearest = candidates[0];
    double best = std::numeric_limits<double>::infinity();
    for (const Poi *p : candidates) {
      const double dist = distance(t[idx], p->location);
      if (dist < best) {
        best = dist;
        nearest = p;
      }
    }
    const double denom = std::max(best, 1e-9);
    const double pull = std::min(1.0, strength / denom);
    const auto move = [&](std::size_t i, double f) {
      t[i].x += f * (nearest->location.x - t[i].x);
      t[i].y += f * (nearest->location.y - t[i].y);
    };
    move(idx, pull);
    if (idx > 0) move(idx - 1, pull * 0.5);
    if (idx + 1 < t.size()) move(idx + 1, pull * 0.5);
  }
}

}  // namespace

std::vector<LabeledTrajectory> make_corpus(const std::vector<ClassSpec> &classes,
                                           std::size_t per_class,
                                           const PoiMap &map,
                                           const CorpusConfig &config,
                                           core::Rng &rng) {
  std::vector<LabeledTrajectory> corpus;
  corpus.reserve(classes.size() * per_class);
  for (std::size_t c = 0; c < classes.size(); ++c) {
    const Trajectory route =
        family_route(classes[c].route_family, config.extent, 12);
    for (std::size_t s = 0; s < per_class; ++s) {
      Trajectory t = route;
      for (auto &p : t) {
        p.x += rng.normal(0.0, config.shape_noise);
        p.y += rng.normal(0.0, config.shape_noise);
      }
      apply_detours(t, map, classes[c].poi_preference, config.detours,
                    config.detour_strength, rng);
      corpus.push_back({resample(t, config.waypoints), c});
    }
  }
  return corpus;
}

namespace {

double l2(const std::vector<double> &a, const std::vector<double> &b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += (a[i] - b[i]) * (a[i] - b[i]);
  return std::sqrt(s);
}

std::size_t knn_vote(std::vector<std::pair<double, std::size_t>> &dists,
                     std::size_t k) {
  std::partial_sort(dists.begin(),
                    dists.begin() + std::min(k, dists.size()), dists.end());
  std::vector<std::size_t> counts;
  for (std::size_t i = 0; i < std::min(k, dists.size()); ++i) {
    const std::size_t label = dists[i].second;
    if (label >= counts.size()) counts.resize(label + 1, 0);
    ++counts[label];
  }
  return static_cast<std::size_t>(
      std::max_element(counts.begin(), counts.end()) - counts.begin());
}

}  // namespace

double knn_accuracy(const std::vector<std::vector<double>> &train_x,
                    const std::vector<std::size_t> &train_y,
                    const std::vector<std::vector<double>> &test_x,
                    const std::vector<std::size_t> &test_y, std::size_t k) {
  if (train_x.size() != train_y.size() || test_x.size() != test_y.size()) {
    throw std::invalid_argument("knn_accuracy: size mismatch");
  }
  if (test_x.empty() || train_x.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t q = 0; q < test_x.size(); ++q) {
    std::vector<std::pair<double, std::size_t>> dists(train_x.size());
    for (std::size_t i = 0; i < train_x.size(); ++i) {
      dists[i] = {l2(test_x[q], train_x[i]), train_y[i]};
    }
    if (knn_vote(dists, k) == test_y[q]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(test_x.size());
}

double knn_accuracy_metric(const std::vector<LabeledTrajectory> &train,
                           const std::vector<LabeledTrajectory> &test,
                           TrajectoryMetric metric, std::size_t k) {
  if (test.empty() || train.empty()) return 0.0;
  std::size_t correct = 0;
  for (const auto &q : test) {
    std::vector<std::pair<double, std::size_t>> dists(train.size());
    for (std::size_t i = 0; i < train.size(); ++i) {
      dists[i] = {metric(q.trajectory, train[i].trajectory), train[i].label};
    }
    if (knn_vote(dists, k) == q.label) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(test.size());
}

SemanticExperimentResult run_semantic_experiment(
    const SemanticExperimentConfig &config, core::Rng &rng) {
  // Four classes over two route families x two POI preferences: the pairs
  // (0,0)/(0,1) and (1,0)/(1,1) share shape within the pair.
  const std::vector<ClassSpec> classes = {
      {0, 0}, {0, 1}, {1, 0}, {1, 1}};
  const PoiMap map = PoiMap::random(120, 2, config.corpus.extent, rng);
  std::vector<LabeledTrajectory> corpus =
      make_corpus(classes, config.per_class, map, config.corpus, rng);

  // Shuffled split.
  std::vector<std::size_t> idx(corpus.size());
  std::iota(idx.begin(), idx.end(), 0);
  rng.shuffle(idx);
  const std::size_t n_train = static_cast<std::size_t>(
      config.train_fraction * static_cast<double>(corpus.size()));
  std::vector<LabeledTrajectory> train, test;
  for (std::size_t i = 0; i < idx.size(); ++i) {
    (i < n_train ? train : test).push_back(corpus[idx[i]]);
  }

  const Landmarks landmarks =
      Landmarks::grid(config.landmarks_per_side, config.corpus.extent);

  const auto featurize = [&](const std::vector<LabeledTrajectory> &set,
                             int mode) {
    std::vector<std::vector<double>> xs;
    std::vector<std::size_t> ys;
    xs.reserve(set.size());
    ys.reserve(set.size());
    for (const auto &lt : set) {
      std::vector<double> f;
      if (mode == 0) {
        f = landmark_features(lt.trajectory, landmarks, config.landmark_scale);
      } else if (mode == 1) {
        f = semantic_features(lt.trajectory, map, config.poi_radius);
      } else {
        f = combined_features(lt.trajectory, landmarks, config.landmark_scale,
                              map, config.poi_radius);
      }
      xs.push_back(std::move(f));
      ys.push_back(lt.label);
    }
    return std::pair{std::move(xs), std::move(ys)};
  };

  SemanticExperimentResult result;
  result.n_train = train.size();
  result.n_test = test.size();
  {
    auto [trx, tr_y] = featurize(train, 0);
    auto [tex, te_y] = featurize(test, 0);
    result.shape_only_accuracy =
        knn_accuracy(trx, tr_y, tex, te_y, config.knn_k);
  }
  {
    auto [trx, tr_y] = featurize(train, 1);
    auto [tex, te_y] = featurize(test, 1);
    result.semantic_only_accuracy =
        knn_accuracy(trx, tr_y, tex, te_y, config.knn_k);
  }
  {
    auto [trx, tr_y] = featurize(train, 2);
    auto [tex, te_y] = featurize(test, 2);
    result.combined_accuracy =
        knn_accuracy(trx, tr_y, tex, te_y, config.knn_k);
  }
  result.frechet_knn_accuracy =
      knn_accuracy_metric(train, test, &discrete_frechet, config.knn_k);
  return result;
}

}  // namespace treu::traj
