#pragma once

// Synthetic trajectory corpus and the §2.4 controlled experiment.
//
// Each class is a (route family, POI preference) pair. Route families give
// the *shape*; the POI preference makes samples detour toward points of
// interest of one category. The controlled experiment instantiates classes
// that share a route family and differ only in preference: shape-only
// features then perform near chance while the semantic extension separates
// them — the "clear improvement in a controlled experiment" the paper
// reports.

#include <cstddef>
#include <string>
#include <vector>

#include "treu/core/rng.hpp"
#include "treu/traj/features.hpp"
#include "treu/traj/trajectory.hpp"

namespace treu::traj {

struct LabeledTrajectory {
  Trajectory trajectory;
  std::size_t label = 0;
};

struct ClassSpec {
  std::size_t route_family = 0;    // which anchor route the shape follows
  std::size_t poi_preference = 0;  // category this class detours toward
};

struct CorpusConfig {
  double extent = 100.0;          // world is [0, extent]^2
  std::size_t waypoints = 24;     // points per trajectory after resampling
  double shape_noise = 2.0;       // waypoint jitter
  double detour_strength = 20.0;  // pull radius: POIs nearer than this are
                                  // visited outright, farther ones partially
  std::size_t detours = 6;        // POI visits inserted per trajectory
};

/// Generate `per_class` trajectories for each class spec over a shared POI
/// map. Route families are deterministic functions of the family index.
[[nodiscard]] std::vector<LabeledTrajectory> make_corpus(
    const std::vector<ClassSpec> &classes, std::size_t per_class,
    const PoiMap &map, const CorpusConfig &config, core::Rng &rng);

/// k-NN on precomputed feature vectors (L2 metric), leave-one-out or
/// train/test.
[[nodiscard]] double knn_accuracy(const std::vector<std::vector<double>> &train_x,
                                  const std::vector<std::size_t> &train_y,
                                  const std::vector<std::vector<double>> &test_x,
                                  const std::vector<std::size_t> &test_y,
                                  std::size_t k);

/// k-NN directly on trajectories with a distance functional
/// (hausdorff / discrete_frechet / dtw).
using TrajectoryMetric = double (*)(const Trajectory &, const Trajectory &);
[[nodiscard]] double knn_accuracy_metric(
    const std::vector<LabeledTrajectory> &train,
    const std::vector<LabeledTrajectory> &test, TrajectoryMetric metric,
    std::size_t k);

/// Result of the controlled shape-vs-semantic experiment.
struct SemanticExperimentResult {
  double shape_only_accuracy = 0.0;
  double semantic_only_accuracy = 0.0;
  double combined_accuracy = 0.0;
  double frechet_knn_accuracy = 0.0;  // raw-shape metric baseline
  std::size_t n_train = 0;
  std::size_t n_test = 0;
};

struct SemanticExperimentConfig {
  std::size_t per_class = 30;
  double train_fraction = 0.7;
  std::size_t knn_k = 3;
  // Coarse shape resolution: a 3x3 landmark grid with a wide kernel sees
  // the route family but washes out POI-sized detours — the semantic block
  // is what resolves them (the controlled §2.4 design).
  std::size_t landmarks_per_side = 3;
  double landmark_scale = 30.0;
  double poi_radius = 8.0;
  CorpusConfig corpus;
};

/// Classes share route families pairwise and differ in POI preference, so
/// the shape block alone cannot fully separate them.
[[nodiscard]] SemanticExperimentResult run_semantic_experiment(
    const SemanticExperimentConfig &config, core::Rng &rng);

}  // namespace treu::traj
