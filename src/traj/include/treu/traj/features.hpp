#pragma once

// Feature embeddings for trajectory classification (§2.4).
//
// Shape features follow the landmark-distance framework the student
// reproduced: fix a set of landmark points; a trajectory embeds as the
// vector of (soft-min) distances from each landmark to the trajectory.
// That turns variable-length curves into fixed-dimension vectors a linear
// model can classify — but it is blind to *what* the trajectory visits.
//
// The semantic extension adds a points-of-interest (POI) map: each POI has
// a category, and the semantic feature block is the visit intensity per
// category (how much of the trajectory passes within `radius` of POIs of
// that category). The §2.4 experiment shows classes that share shape but
// differ in POI usage are only separable with the semantic block.

#include <cstddef>
#include <string>
#include <vector>

#include "treu/core/rng.hpp"
#include "treu/traj/trajectory.hpp"

namespace treu::traj {

/// A categorized point of interest.
struct Poi {
  Point location;
  std::size_t category = 0;
};

struct PoiMap {
  std::vector<Poi> pois;
  std::size_t n_categories = 0;

  /// Uniform random POIs in [0, extent]^2.
  static PoiMap random(std::size_t n_pois, std::size_t n_categories,
                       double extent, core::Rng &rng);
};

/// Landmark set for shape embeddings.
struct Landmarks {
  std::vector<Point> points;

  static Landmarks grid(std::size_t per_side, double extent);
  static Landmarks random(std::size_t n, double extent, core::Rng &rng);
};

/// Shape block: distance from each landmark to the trajectory, passed
/// through exp(-d / scale) so features live in (0, 1] and near landmarks
/// dominate (the soft-min used by the landmark framework).
[[nodiscard]] std::vector<double> landmark_features(const Trajectory &t,
                                                    const Landmarks &landmarks,
                                                    double scale);

/// Semantic block: per-category visit intensity. For each POI within
/// `radius` of the trajectory, add (1 - d/radius) to its category bin;
/// bins are normalized by trajectory arc length + 1.
[[nodiscard]] std::vector<double> semantic_features(const Trajectory &t,
                                                    const PoiMap &map,
                                                    double radius);

/// Concatenated shape + semantic embedding.
[[nodiscard]] std::vector<double> combined_features(const Trajectory &t,
                                                    const Landmarks &landmarks,
                                                    double scale,
                                                    const PoiMap &map,
                                                    double radius);

}  // namespace treu::traj
