#pragma once

// Spatial trajectories and classical trajectory distances (§2.4).
//
// A trajectory is an ordered sequence of GPS-like waypoints. The student
// project first reproduced a shape-based classification framework
// (landmark-distance feature embeddings; see features.hpp) and then
// extended it with semantic information about points of interest. The
// distances here (Hausdorff, discrete Fréchet, DTW) are the classical
// shape measures used as k-NN baselines.

#include <cstddef>
#include <span>
#include <vector>

namespace treu::traj {

struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point &, const Point &) = default;
};

[[nodiscard]] double distance(const Point &a, const Point &b) noexcept;

using Trajectory = std::vector<Point>;

/// Length of the polyline.
[[nodiscard]] double arc_length(const Trajectory &t) noexcept;

/// Distance from a point to the polyline (segment-accurate).
[[nodiscard]] double point_to_trajectory(const Point &p, const Trajectory &t);

/// Directed Hausdorff: max over a's points of distance to b.
[[nodiscard]] double directed_hausdorff(const Trajectory &a,
                                        const Trajectory &b);

/// Symmetric Hausdorff distance.
[[nodiscard]] double hausdorff(const Trajectory &a, const Trajectory &b);

/// Discrete Fréchet distance (dynamic program over waypoint pairs).
[[nodiscard]] double discrete_frechet(const Trajectory &a,
                                      const Trajectory &b);

/// Dynamic time warping distance with Euclidean ground cost.
[[nodiscard]] double dtw(const Trajectory &a, const Trajectory &b);

/// Resample a trajectory to `n` equally spaced (by arc length) waypoints.
[[nodiscard]] Trajectory resample(const Trajectory &t, std::size_t n);

}  // namespace treu::traj
