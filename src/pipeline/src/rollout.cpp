#include "treu/pipeline/rollout.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "treu/obs/obs.hpp"

namespace fs = std::filesystem;

namespace treu::pipeline {
namespace {

constexpr const char *kJournalHeader = "treu-rollout-journal v1";

bool append_fsync(const std::string &path, const std::string &text) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT, 0644);
  if (fd < 0) return false;
  std::size_t written = 0;
  bool ok = true;
  while (written < text.size()) {
    const ssize_t w =
        ::write(fd, text.data() + written, text.size() - written);
    if (w < 0) {
      if (errno == EINTR) continue;
      ok = false;
      break;
    }
    written += static_cast<std::size_t>(w);
  }
  if (ok && ::fsync(fd) != 0) ok = false;
  (void)::close(fd);
  return ok;
}

std::string fixed6(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", value);
  return buf;
}

std::optional<std::uint64_t> parse_u64(const std::string &digits) {
  if (digits.empty()) return std::nullopt;
  std::uint64_t value = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    const auto d = static_cast<std::uint64_t>(c - '0');
    if (value > (UINT64_MAX - d) / 10) return std::nullopt;
    value = value * 10 + d;
  }
  return value;
}

std::optional<std::string> field(const std::string &token,
                                 const std::string &key) {
  if (token.size() <= key.size() + 1) return std::nullopt;
  if (token.compare(0, key.size(), key) != 0) return std::nullopt;
  if (token[key.size()] != '=') return std::nullopt;
  return token.substr(key.size() + 1);
}

std::optional<RolloutState> state_from_name(const std::string &name) {
  if (name == "canary") return RolloutState::Canary;
  if (name == "promoting") return RolloutState::Promoting;
  if (name == "promoted") return RolloutState::Promoted;
  if (name == "rolling-back") return RolloutState::RollingBack;
  if (name == "rolled-back") return RolloutState::RolledBack;
  return std::nullopt;
}

}  // namespace

// What the journal says about where the last run stopped.
struct RolloutController::JournalTail {
  std::uint64_t last_cycle = 0;         // highest cycle number seen
  bool open = false;                    // last cycle lacks a terminal line
  std::uint64_t open_cycle = 0;
  std::uint64_t open_version = 0;
  RolloutState open_from = RolloutState::Idle;
  bool open_has_verdict = false;
  bool open_pass = false;
  RolloutState terminal = RolloutState::Idle;  // when not open
  std::uint64_t incumbent_version = 0;
  std::size_t torn_lines = 0;
  std::size_t good_bytes = 0;  // journal prefix that parsed clean
};

RolloutController::RolloutController(ModelRegistry &registry,
                                     RolloutHooks hooks,
                                     const RolloutConfig &config,
                                     std::string journal_path)
    : registry_(registry),
      hooks_(std::move(hooks)),
      config_(config),
      journal_path_(std::move(journal_path)) {
  if (!hooks_.start_canary || !hooks_.score || !hooks_.promote ||
      !hooks_.rollback) {
    throw std::invalid_argument("RolloutController: empty hook");
  }

  const auto raw = ckpt::read_file(journal_path_);
  if (!raw) {
    (void)append_fsync(journal_path_, std::string(kJournalHeader) + "\n");
    return;
  }

  // Replay the journal. Stop at the first unparseable line (torn append or
  // rot) and truncate to the clean prefix so the next append starts on a
  // record boundary — the same classified-recovery posture as the registry.
  const std::string text(raw->begin(), raw->end());
  JournalTail tail;
  std::unordered_map<std::uint64_t, std::uint64_t> cycle_version;
  std::size_t start = 0;
  bool first = true;
  bool bad = false;
  std::size_t remaining_lines = 0;
  while (start < text.size()) {
    const std::size_t nl = text.find('\n', start);
    if (nl == std::string::npos) {
      bad = true;  // dangling fragment: torn append
      ++remaining_lines;
      break;
    }
    const std::string line = text.substr(start, nl - start);

    if (first) {
      if (line != kJournalHeader) {
        bad = true;
        ++remaining_lines;
        break;
      }
      first = false;
      start = nl + 1;
      tail.good_bytes = start;
      continue;
    }

    std::istringstream in(line);
    std::string tag;
    in >> tag;
    bool line_ok = false;
    if (tag == "cycle") {
      std::string n_tok, v_tok, step_tok, w_tok;
      if (in >> n_tok >> v_tok >> step_tok >> w_tok) {
        const auto n = parse_u64(n_tok);
        const auto v = field(v_tok, "version");
        if (n && v) {
          if (const auto version = parse_u64(*v)) {
            cycle_version[*n] = *version;
            tail.last_cycle = std::max(tail.last_cycle, *n);
            tail.open = true;
            tail.open_cycle = *n;
            tail.open_version = *version;
            tail.open_from = RolloutState::Idle;
            tail.open_has_verdict = false;
            line_ok = true;
          }
        }
      }
    } else if (tag == "state") {
      std::string n_tok, name;
      if (in >> n_tok >> name) {
        const auto n = parse_u64(n_tok);
        const auto s = state_from_name(name);
        if (n && s) {
          tail.last_cycle = std::max(tail.last_cycle, *n);
          if (*s == RolloutState::Promoted ||
              *s == RolloutState::RolledBack) {
            tail.open = false;
            tail.terminal = *s;
            if (*s == RolloutState::Promoted) {
              tail.incumbent_version = cycle_version[*n];
            }
          } else {
            tail.open = true;
            tail.open_cycle = *n;
            tail.open_from = *s;
          }
          line_ok = true;
        }
      }
    } else if (tag == "verdict") {
      std::string n_tok, cand, inc, goodput, errors, outcome;
      if (in >> n_tok >> cand >> inc >> goodput >> errors >> outcome) {
        const auto n = parse_u64(n_tok);
        if (n && (outcome == "pass" || outcome == "fail")) {
          tail.open = true;
          tail.open_cycle = *n;
          tail.open_from = RolloutState::Canary;
          tail.open_has_verdict = true;
          tail.open_pass = outcome == "pass";
          line_ok = true;
        }
      }
    } else if (tag == "rejected") {
      std::string n_tok, rest;
      if (in >> n_tok) {
        const auto n = parse_u64(n_tok);
        if (n) {
          tail.last_cycle = std::max(tail.last_cycle, *n);
          tail.open = false;
          tail.terminal = RolloutState::Idle;
          line_ok = true;
        }
      }
    } else if (tag == "resume") {
      std::string n_tok;
      if (in >> n_tok && parse_u64(n_tok)) line_ok = true;
    }

    if (!line_ok) {
      bad = true;
      break;
    }
    start = nl + 1;
    tail.good_bytes = start;
  }
  if (bad) {
    // Count the torn tail (first bad line plus everything after it).
    std::size_t pos = tail.good_bytes;
    tail.torn_lines = remaining_lines;
    while (pos < text.size()) {
      const std::size_t nl = text.find('\n', pos);
      ++tail.torn_lines;
      if (nl == std::string::npos) break;
      pos = nl + 1;
    }
    if (remaining_lines > 0 && tail.torn_lines > 0) {
      --tail.torn_lines;  // the dangling fragment was counted once already
    }
    std::error_code ec;
    fs::resize_file(journal_path_, tail.good_bytes, ec);
  }

  cycle_ = tail.last_cycle;
  incumbent_version_ = tail.incumbent_version;
  torn_journal_lines_ = tail.torn_lines;
  if (tail.open) {
    // open_version may come from an earlier `cycle` line of the same cycle.
    if (tail.open_version == 0) tail.open_version = cycle_version[tail.open_cycle];
    pending_resume_ = true;
    pending_cycle_ = tail.open_cycle;
    pending_version_ = tail.open_version;
    pending_from_ = tail.open_from;
    pending_has_verdict_ = tail.open_has_verdict;
    pending_pass_ = tail.open_pass;
    state_ = tail.open_from;
  } else {
    state_ = tail.terminal;
  }
}

std::string RolloutController::journal_string() const {
  const auto raw = ckpt::read_file(journal_path_);
  if (!raw) return {};
  return std::string(raw->begin(), raw->end());
}

bool RolloutController::journal_append(const std::string &line) {
  return append_fsync(journal_path_, line + "\n");
}

void RolloutController::journal_state(std::uint64_t cycle, RolloutState s) {
  (void)journal_append("state " + std::to_string(cycle) + " " +
                       to_string(s));
}

bool RolloutController::crash_here(CrashPoint point) {
  if (config_.crash_point != point) return false;
  halted_ = true;
  TREU_OBS_COUNTER_ADD("pipeline.crashes_simulated", 1);
  return true;
}

void RolloutController::do_promote(std::uint64_t cycle,
                                   const RegistryEntry &entry,
                                   CycleReport *report) {
  const bool ok = hooks_.promote(entry);
  if (crash_here(CrashPoint::AfterPromoteApply)) {
    if (report != nullptr) {
      report->crashed = true;
      report->state = state_;
    }
    return;
  }
  if (!ok) {
    if (report != nullptr) report->error = "promote hook failed";
    do_rollback(cycle, /*rolling_back_journaled=*/false, report);
    return;
  }
  journal_state(cycle, RolloutState::Promoted);
  state_ = RolloutState::Promoted;
  incumbent_version_ = entry.version;
  TREU_OBS_COUNTER_ADD("pipeline.promotions_total", 1);
  TREU_OBS_FR_EVENT(PipelinePromote, 0, entry.version, cycle);
  if (report != nullptr) report->state = state_;
}

void RolloutController::do_rollback(std::uint64_t cycle,
                                    bool rolling_back_journaled,
                                    CycleReport *report) {
  state_ = RolloutState::RollingBack;
  if (!rolling_back_journaled) {
    journal_state(cycle, RolloutState::RollingBack);
  }
  if (crash_here(CrashPoint::AfterRollingBackEnter)) {
    if (report != nullptr) {
      report->crashed = true;
      report->state = state_;
    }
    return;
  }
  if (!hooks_.rollback()) {
    // The incumbent could not be restored: stop rather than journal a
    // convergence that did not happen. A fresh controller retries.
    halted_ = true;
    if (report != nullptr) {
      report->error = "rollback hook failed";
      report->state = state_;
    }
    return;
  }
  journal_state(cycle, RolloutState::RolledBack);
  state_ = RolloutState::RolledBack;
  TREU_OBS_COUNTER_ADD("pipeline.rollbacks_total", 1);
  TREU_OBS_FR_EVENT(PipelineRollback, 0, incumbent_version_, cycle);
  if (report != nullptr) report->state = state_;
}

ResumeReport RolloutController::resume() {
  ResumeReport rr;
  rr.torn_journal_lines = torn_journal_lines_;
  if (halted_) throw std::logic_error("RolloutController: halted");
  if (!pending_resume_) {
    rr.state = state_;
    return rr;
  }
  rr.resumed = true;
  rr.cycle = pending_cycle_;
  rr.from = pending_from_;
  const std::uint64_t n = pending_cycle_;

  // Honor a durable pass verdict or promoting intent; everything earlier
  // rolls back. The journal line names exactly what we decided.
  bool promote_action =
      pending_from_ == RolloutState::Promoting ||
      (pending_has_verdict_ && pending_pass_);
  std::string from_tag;
  switch (pending_from_) {
    case RolloutState::Idle: from_tag = "published"; break;
    case RolloutState::Canary:
      from_tag = pending_has_verdict_
                     ? (pending_pass_ ? "verdict-pass" : "verdict-fail")
                     : "canary";
      break;
    case RolloutState::Promoting: from_tag = "promoting"; break;
    case RolloutState::RollingBack: from_tag = "rolling-back"; break;
    default: from_tag = "unknown"; break;
  }

  std::optional<RegistryEntry> entry;
  if (promote_action) {
    entry = registry_.entry_for_version(pending_version_);
    if (!entry || !registry_.verify_entry(*entry)) {
      // The candidate vanished or rotted since the verdict: promotion is
      // no longer provably safe, so converge the other way.
      promote_action = false;
    }
  }

  (void)journal_append("resume " + std::to_string(n) + " from=" + from_tag +
                       " action=" +
                       (promote_action ? "promote" : "rollback"));
  TREU_OBS_COUNTER_ADD("pipeline.resumes_total", 1);
  TREU_OBS_FR_EVENT(PipelineResume, 0, n,
                    static_cast<std::uint64_t>(pending_from_));

  pending_resume_ = false;
  if (promote_action) {
    if (pending_from_ != RolloutState::Promoting) {
      state_ = RolloutState::Promoting;
      journal_state(n, RolloutState::Promoting);
    }
    do_promote(n, *entry, nullptr);
  } else {
    do_rollback(n, pending_from_ == RolloutState::RollingBack, nullptr);
  }
  rr.state = state_;
  return rr;
}

CycleReport RolloutController::run_cycle(
    const ckpt::TrainingCheckpoint &candidate) {
  if (halted_) throw std::logic_error("RolloutController: halted");
  if (pending_resume_) {
    throw std::logic_error(
        "RolloutController: interrupted cycle pending; call resume()");
  }
  TREU_OBS_SPAN(cycle_span, "pipeline.cycle");
  TREU_OBS_SCOPED_LATENCY_US(cycle_timer, "pipeline.cycle_us");

  CycleReport report;
  report.cycle = ++cycle_;
  const std::uint64_t n = report.cycle;

  // Decision point 0: publish. A plan decision of a non-pipeline kind is
  // deliberately ignored, so a shared serving plan stays safe to pass in.
  PublishFaults publish_faults;
  if (config_.plan != nullptr) {
    const fault::FaultDecision d = config_.plan->decide(0, 1);
    if (d.kind == fault::FaultKind::PublishCorrupt) {
      publish_faults.corrupt_file = true;
    } else if (d.kind == fault::FaultKind::RegistryTorn) {
      publish_faults.tear_log = true;
    }
  }

  const ModelRegistry::PublishReport pub =
      registry_.publish(candidate, publish_faults);
  if (pub.torn_log) {
    // The registry log append tore: on real hardware this is the process
    // dying mid-write. Halt without journaling — the restarted registry's
    // repair drops the torn record, and this cycle never happened.
    halted_ = true;
    --cycle_;
    report.cycle = 0;
    report.crashed = true;
    report.error = pub.error;
    report.state = state_;
    return report;
  }
  if (!pub.logged) {
    (void)journal_append("rejected " + std::to_string(n) +
                         " version=0 reason=publish-failed");
    state_ = RolloutState::Idle;
    report.state = state_;
    report.error = pub.error;
    return report;
  }
  report.published = true;
  report.entry = pub.entry;
  report.vetted = pub.vetted;
  if (!pub.vetted) {
    // Chain record is durable but the container failed read-back
    // verification (e.g. PublishCorrupt): never let it near traffic.
    (void)journal_append("rejected " + std::to_string(n) +
                         " version=" + std::to_string(pub.entry.version) +
                         " reason=unvetted");
    state_ = RolloutState::Idle;
    report.state = state_;
    return report;
  }

  (void)journal_append(
      "cycle " + std::to_string(n) +
      " version=" + std::to_string(pub.entry.version) +
      " step=" + std::to_string(pub.entry.step) +
      " weights=" + pub.entry.weight_digest);
  if (crash_here(CrashPoint::AfterPublish)) {
    report.crashed = true;
    report.state = state_;
    return report;
  }

  state_ = RolloutState::Canary;
  journal_state(n, RolloutState::Canary);
  TREU_OBS_FR_EVENT(PipelineCanaryStart, 0, pub.entry.version, n);
  if (crash_here(CrashPoint::AfterCanaryEnter)) {
    report.crashed = true;
    report.state = state_;
    return report;
  }

  const bool canary_ok = hooks_.start_canary(pub.entry);

  // Decision point 1: canary. CanaryCrash kills the controller with the
  // candidate live on the canary slice — the state resume() must undo.
  bool injected_canary_crash = false;
  if (config_.plan != nullptr) {
    injected_canary_crash =
        config_.plan->decide(1, 1).kind == fault::FaultKind::CanaryCrash;
  }
  if (injected_canary_crash || crash_here(CrashPoint::AfterCanaryApply)) {
    halted_ = true;
    report.crashed = true;
    report.state = state_;
    return report;
  }

  if (!canary_ok) {
    report.error = "canary apply failed";
    do_rollback(n, /*rolling_back_journaled=*/false, &report);
    return report;
  }

  report.verdict = hooks_.score(pub.entry);
  report.pass =
      report.verdict.candidate_score + config_.max_score_regression >=
          report.verdict.incumbent_score &&
      report.verdict.canary_goodput >= config_.min_canary_goodput;
  (void)journal_append(
      "verdict " + std::to_string(n) +
      " cand=" + fixed6(report.verdict.candidate_score) +
      " inc=" + fixed6(report.verdict.incumbent_score) +
      " goodput=" + fixed6(report.verdict.canary_goodput) +
      " errors=" + std::to_string(report.verdict.canary_errors) +
      (report.pass ? " pass" : " fail"));
  TREU_OBS_FR_EVENT(PipelineVerdict, 0, pub.entry.version,
                    report.pass ? 1 : 0);
  if (crash_here(CrashPoint::AfterVerdict)) {
    report.crashed = true;
    report.state = state_;
    return report;
  }

  if (!report.pass) {
    do_rollback(n, /*rolling_back_journaled=*/false, &report);
    return report;
  }

  state_ = RolloutState::Promoting;
  journal_state(n, RolloutState::Promoting);
  if (crash_here(CrashPoint::AfterPromotingEnter)) {
    report.crashed = true;
    report.state = state_;
    return report;
  }

  // Decision point 2: promote. PromoteCrash lands in the nastiest window —
  // intent journaled, fleet not yet touched.
  bool injected_promote_crash = false;
  if (config_.plan != nullptr) {
    injected_promote_crash =
        config_.plan->decide(2, 1).kind == fault::FaultKind::PromoteCrash;
  }
  if (injected_promote_crash) {
    halted_ = true;
    report.crashed = true;
    report.state = state_;
    return report;
  }

  do_promote(n, pub.entry, &report);
  return report;
}

}  // namespace treu::pipeline
