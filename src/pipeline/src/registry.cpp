#include "treu/pipeline/registry.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <utility>

#include "treu/core/sha256.hpp"
#include "treu/obs/obs.hpp"

namespace fs = std::filesystem;

namespace treu::pipeline {
namespace {

constexpr const char *kLogHeader = "treu-model-registry v1";
constexpr const char *kRecordTag = "entry";

// Field helper: "<key>=<value>" with the exact key, or nullopt.
std::optional<std::string> field(const std::string &token,
                                 const std::string &key) {
  if (token.size() <= key.size() + 1) return std::nullopt;
  if (token.compare(0, key.size(), key) != 0) return std::nullopt;
  if (token[key.size()] != '=') return std::nullopt;
  return token.substr(key.size() + 1);
}

std::optional<std::uint64_t> parse_u64(const std::string &digits) {
  if (digits.empty()) return std::nullopt;
  std::uint64_t value = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    const auto d = static_cast<std::uint64_t>(c - '0');
    if (value > (UINT64_MAX - d) / 10) return std::nullopt;
    value = value * 10 + d;
  }
  return value;
}

bool valid_hex64(const std::string &s) {
  if (s.size() != 64) return false;
  for (const char c : s) {
    const bool ok =
        (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
    if (!ok) return false;
  }
  return true;
}

// "entry v=<n> step=<n> file=<name> weights=<hex> bytes=<hex> prev=<hex>
//  d=<hex>"  (one line). Structural damage -> nullopt.
std::optional<RegistryEntry> parse_record(const std::string &line) {
  std::istringstream in(line);
  std::string tag, v, step, file, weights, bytes, prev, d, extra;
  if (!(in >> tag >> v >> step >> file >> weights >> bytes >> prev >> d)) {
    return std::nullopt;
  }
  if (in >> extra) return std::nullopt;
  if (tag != kRecordTag) return std::nullopt;
  RegistryEntry e;
  const auto fv = field(v, "v");
  const auto fstep = field(step, "step");
  const auto ffile = field(file, "file");
  const auto fweights = field(weights, "weights");
  const auto fbytes = field(bytes, "bytes");
  const auto fprev = field(prev, "prev");
  const auto fd = field(d, "d");
  if (!fv || !fstep || !ffile || !fweights || !fbytes || !fprev || !fd) {
    return std::nullopt;
  }
  const auto version = parse_u64(*fv);
  const auto step_n = parse_u64(*fstep);
  if (!version || !step_n) return std::nullopt;
  if (!valid_hex64(*fweights) || !valid_hex64(*fbytes) ||
      !valid_hex64(*fprev) || !valid_hex64(*fd)) {
    return std::nullopt;
  }
  // A record naming a path outside the registry dir is damaged or hostile.
  if (ffile->empty() || ffile->find('/') != std::string::npos) {
    return std::nullopt;
  }
  e.version = *version;
  e.step = *step_n;
  e.filename = *ffile;
  e.weight_digest = *fweights;
  e.file_digest = *fbytes;
  e.prev_digest = *fprev;
  e.entry_digest = *fd;
  return e;
}

std::string format_record(const RegistryEntry &e) {
  std::string line = kRecordTag;
  line += " v=" + std::to_string(e.version);
  line += " step=" + std::to_string(e.step);
  line += " file=" + e.filename;
  line += " weights=" + e.weight_digest;
  line += " bytes=" + e.file_digest;
  line += " prev=" + e.prev_digest;
  line += " d=" + e.entry_digest;
  line += '\n';
  return line;
}

// Append `text` to `path` and fsync. `tear` keeps only the first half of
// the bytes — the on-disk footprint of a crash mid-append.
bool append_fsync(const std::string &path, const std::string &text, bool tear,
                  std::string *error) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT, 0644);
  if (fd < 0) {
    if (error) *error = "open failed: " + path + ": " + std::strerror(errno);
    return false;
  }
  const std::size_t n = tear ? text.size() / 2 : text.size();
  std::size_t written = 0;
  bool ok = true;
  while (written < n) {
    const ssize_t w = ::write(fd, text.data() + written, n - written);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (error) {
        *error = "write failed: " + path + ": " + std::strerror(errno);
      }
      ok = false;
      break;
    }
    written += static_cast<std::size_t>(w);
  }
  if (ok && ::fsync(fd) != 0) {
    if (error) *error = "fsync failed: " + path + ": " + std::strerror(errno);
    ok = false;
  }
  (void)::close(fd);
  return ok;
}

}  // namespace

std::string ModelRegistry::canonical_record(const RegistryEntry &e) {
  std::string text = "treu-registry-entry v1";
  text += " v=" + std::to_string(e.version);
  text += " step=" + std::to_string(e.step);
  text += " file=" + e.filename;
  text += " weights=" + e.weight_digest;
  text += " bytes=" + e.file_digest;
  text += " prev=" + e.prev_digest;
  return text;
}

std::string ModelRegistry::genesis_digest() {
  return core::sha256(std::string_view(kLogHeader)).hex();
}

ModelRegistry::ModelRegistry(std::string dir, fault::FileInjector *injector)
    : dir_(std::move(dir)), store_(dir_, injector) {
  // CheckpointStore's constructor created the directory. Load the verified
  // chain and drop any torn tail so the next append starts clean.
  const ScanReport report = scan();
  entries_ = report.entries;
  repair();
}

void ModelRegistry::repair() {
  const auto raw = ckpt::read_file(log_path());
  if (!raw) return;
  // Rebuild the byte length of the verified prefix: header + each verified
  // record, all newline-terminated.
  std::string good = std::string(kLogHeader) + "\n";
  for (const auto &e : entries_) good += format_record(e);
  const std::string on_disk(raw->begin(), raw->end());
  if (on_disk == good) return;
  if (on_disk.size() > good.size() &&
      on_disk.compare(0, good.size(), good) == 0) {
    // Torn/bad tail after a verified prefix: truncate to the boundary.
    std::error_code ec;
    fs::resize_file(log_path(), good.size(), ec);
    return;
  }
  // The header itself (or the whole prefix) is damaged: scan() already
  // reported zero verified entries for this shape, so restart the log.
  if (entries_.empty()) {
    std::error_code ec;
    fs::remove(log_path(), ec);
  }
}

ModelRegistry::ScanReport ModelRegistry::scan() const {
  ScanReport report;
  const auto raw = ckpt::read_file(log_path());
  if (!raw) {
    report.log_missing = true;
    return report;
  }
  const std::string text(raw->begin(), raw->end());

  // Split into newline-terminated lines; a dangling final fragment is the
  // classic torn append.
  std::vector<std::string> lines;
  bool dangling = false;
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t nl = text.find('\n', start);
    if (nl == std::string::npos) {
      dangling = true;
      lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }

  if (lines.empty() || lines[0] != kLogHeader) {
    // No verifiable chain at all: a missing or damaged header orphans
    // every record (their provenance anchor is gone).
    report.torn = lines.size();
    return report;
  }

  std::string prev = genesis_digest();
  std::uint64_t next_version = 1;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const bool is_dangling_tail = dangling && i + 1 == lines.size();
    const std::optional<RegistryEntry> parsed =
        is_dangling_tail ? std::optional<RegistryEntry>{}
                         : parse_record(lines[i]);
    if (!parsed) {
      ++report.torn;
      report.dropped = lines.size() - i - 1;
      break;
    }
    const bool chain_ok =
        parsed->prev_digest == prev && parsed->version == next_version &&
        parsed->entry_digest == core::sha256(canonical_record(*parsed)).hex();
    if (!chain_ok) {
      ++report.corrupt;
      report.dropped = lines.size() - i - 1;
      break;
    }
    prev = parsed->entry_digest;
    ++next_version;
    report.entries.push_back(std::move(*parsed));
  }

  for (auto &entry : report.entries) {
    entry.vetted = verify_entry(entry);
    if (!entry.vetted) ++report.unvetted;
  }
  return report;
}

bool ModelRegistry::verify_entry(const RegistryEntry &entry) const {
  const auto bytes = ckpt::read_file(dir_ + "/" + entry.filename);
  if (!bytes) return false;
  return core::sha256(*bytes).hex() == entry.file_digest;
}

ckpt::LoadResult ModelRegistry::load(const RegistryEntry &entry) const {
  return ckpt::load_checkpoint_file(dir_ + "/" + entry.filename);
}

std::string ModelRegistry::head_digest() const {
  return entries_.empty() ? genesis_digest() : entries_.back().entry_digest;
}

std::uint64_t ModelRegistry::head_version() const {
  return entries_.empty() ? 0 : entries_.back().version;
}

std::optional<RegistryEntry> ModelRegistry::latest_vetted() const {
  const ScanReport report = scan();
  for (auto it = report.entries.rbegin(); it != report.entries.rend(); ++it) {
    if (it->vetted) return *it;
  }
  return std::nullopt;
}

std::optional<RegistryEntry> ModelRegistry::entry_for_version(
    std::uint64_t version) const {
  for (const auto &e : entries_) {
    if (e.version == version) return e;
  }
  return std::nullopt;
}

bool ModelRegistry::append_record(const RegistryEntry &entry, bool tear,
                                  std::string *error) {
  if (!fs::exists(log_path())) {
    if (!append_fsync(log_path(), std::string(kLogHeader) + "\n", false,
                      error)) {
      return false;
    }
  }
  return append_fsync(log_path(), format_record(entry), tear, error);
}

ModelRegistry::PublishReport ModelRegistry::publish(
    const ckpt::TrainingCheckpoint &ckpt, const PublishFaults &faults) {
  TREU_OBS_SPAN(publish_span, "pipeline.publish");
  TREU_OBS_SCOPED_LATENCY_US(publish_timer, "pipeline.publish_us");
  PublishReport report;

  const std::vector<std::uint8_t> bytes = ckpt.encode();
  const ckpt::CheckpointStore::WriteReport wr = store_.write(ckpt);
  report.committed = wr.checkpoint_committed;
  if (!wr.checkpoint_committed) {
    report.error = wr.error.empty() ? "checkpoint write did not commit"
                                    : wr.error;
    TREU_OBS_COUNTER_ADD("pipeline.publish.failed", 1);
    return report;
  }

  if (faults.corrupt_file) {
    // Rot the committed container at rest, after its digest was taken:
    // the chain record stays honest and verification must now reject it.
    if (auto on_disk = ckpt::read_file(wr.path)) {
      if (!on_disk->empty()) {
        (*on_disk)[on_disk->size() / 2] ^= 0x20;
        std::FILE *f = std::fopen(wr.path.c_str(), "wb");
        if (f != nullptr) {
          (void)std::fwrite(on_disk->data(), 1, on_disk->size(), f);
          (void)std::fclose(f);
        }
      }
    }
  }

  RegistryEntry entry;
  entry.version = head_version() + 1;
  entry.step = ckpt.step;
  entry.filename = ckpt::CheckpointStore::filename_for_step(ckpt.step);
  entry.weight_digest = ckpt.weight_digest().hex();
  entry.file_digest = core::sha256(bytes).hex();
  entry.prev_digest = head_digest();
  entry.entry_digest = core::sha256(canonical_record(entry)).hex();

  if (faults.tear_log) {
    std::string error;
    (void)append_record(entry, /*tear=*/true, &error);
    report.torn_log = true;
    report.error = "registry log append torn (simulated crash)";
    TREU_OBS_COUNTER_ADD("pipeline.publish.torn_log", 1);
    return report;
  }

  if (!append_record(entry, /*tear=*/false, &report.error)) {
    TREU_OBS_COUNTER_ADD("pipeline.publish.failed", 1);
    return report;
  }
  report.logged = true;
  entries_.push_back(entry);

  // Read-back verification: the publish is only as good as what a fresh
  // recovery would find.
  entry.vetted = verify_entry(entry);
  report.vetted = entry.vetted;
  report.entry = entry;
  entries_.back().vetted = entry.vetted;
  TREU_OBS_COUNTER_ADD("pipeline.publishes_total", 1);
  if (!report.vetted) {
    TREU_OBS_COUNTER_ADD("pipeline.publish.unvetted", 1);
  }
  TREU_OBS_FR_EVENT(PipelinePublish, 0, entry.version,
                    report.vetted ? 1 : 0);
  return report;
}

}  // namespace treu::pipeline
