#pragma once

// ModelRegistry — a versioned, tamper-evident publication log on top of
// ckpt::CheckpointStore.
//
// Publishing a checkpoint is two durable steps:
//
//   1. the checkpoint container commits through the store's atomic
//      tmp+fsync+rename protocol (ckpt-<step>.treu);
//   2. one record is appended to <dir>/registry.log — write(2) with
//      O_APPEND, then fsync — naming the file, its SHA-256, the
//      checkpoint's weight digest, and the digest of the *previous*
//      record.
//
// Each record's own digest covers its predecessor's, so the log is a hash
// chain anchored at a fixed genesis string: truncating, reordering, or
// editing any record breaks verification from that point on — the
// nonrepudiation property the paper's trust theme asks for. A crash
// mid-append leaves a torn tail record; bit rot leaves a record whose
// digest no longer verifies. scan() never throws on either: it classifies
// (torn vs corrupt), keeps the verified prefix, and reports what it
// dropped. repair() (run at construction) truncates the torn tail so the
// next append starts on a record boundary.
//
// A chain-verified record is necessary but not sufficient to serve from:
// the checkpoint *file* can rot independently of the log. An entry is
// `vetted` only when the bytes on disk still hash to the recorded file
// digest — that check is what stands between a PublishCorrupt fault and
// production traffic.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "treu/ckpt/checkpoint.hpp"
#include "treu/ckpt/store.hpp"

namespace treu::pipeline {

/// One publication record, as stored in (or parsed from) registry.log.
struct RegistryEntry {
  std::uint64_t version = 0;  // 1-based publication index
  std::uint64_t step = 0;     // training step of the checkpoint
  std::string filename;       // checkpoint file inside the registry dir
  std::string weight_digest;  // hex digest of the checkpoint's parameters
  std::string file_digest;    // hex SHA-256 of the committed container
  std::string prev_digest;    // predecessor's entry_digest (genesis for v1)
  std::string entry_digest;   // SHA-256 over the canonical record text
  /// Filled by scan(): the on-disk file still hashes to file_digest, so
  /// these exact bytes may be loaded and served.
  bool vetted = false;
};

/// Simulated publish-time faults (driven by fault::FaultPlan decisions;
/// see RolloutController). Both default off.
struct PublishFaults {
  /// Flip one bit of the committed checkpoint file after the digest was
  /// recorded — at-rest rot between publish and verification.
  bool corrupt_file = false;
  /// Crash mid log-append: only a prefix of the record reaches the log and
  /// the in-memory registry must be discarded, exactly as if the process
  /// died. The caller treats the publish as never having happened.
  bool tear_log = false;
};

class ModelRegistry {
 public:
  /// Opens (creating if needed) the registry at `dir`. Runs a scan and
  /// repairs the log's torn tail, so appends resume on a record boundary
  /// after any crash. `injector` (not owned, may be null) faults the
  /// checkpoint writes, same as CheckpointStore.
  explicit ModelRegistry(std::string dir,
                         fault::FileInjector *injector = nullptr);

  struct PublishReport {
    bool committed = false;  // checkpoint file reached disk
    bool logged = false;     // registry record durably appended
    bool vetted = false;     // post-publish verification passed
    bool torn_log = false;   // tear_log fault fired (treat as a crash)
    RegistryEntry entry;
    std::string error;
  };

  /// Publish one checkpoint: atomic container write, then chained log
  /// append, then read-back verification. Never throws on I/O failure —
  /// the report says how far the publish got.
  PublishReport publish(const ckpt::TrainingCheckpoint &ckpt,
                        const PublishFaults &faults = {});

  struct ScanReport {
    std::vector<RegistryEntry> entries;  // verified chain prefix, in order
    bool log_missing = false;
    std::size_t torn = 0;     // structurally damaged records (incl. tail)
    std::size_t corrupt = 0;  // records whose digest/chain check failed
    std::size_t dropped = 0;  // records after the first bad one, unclassified
    std::size_t unvetted = 0; // chain-valid entries whose file rotted
  };

  /// Classified, never-throw read of the on-disk log: chain-verify every
  /// record, stop at the first bad one, then vet each surviving entry's
  /// checkpoint file against its recorded digest.
  [[nodiscard]] ScanReport scan() const;

  /// Newest chain-verified entry whose file still verifies, if any.
  [[nodiscard]] std::optional<RegistryEntry> latest_vetted() const;

  /// Chain-verified entry with this version, if any.
  [[nodiscard]] std::optional<RegistryEntry> entry_for_version(
      std::uint64_t version) const;

  /// Re-check one entry's checkpoint file against its recorded digest.
  [[nodiscard]] bool verify_entry(const RegistryEntry &entry) const;

  /// Decode the entry's checkpoint file (classified; never throws).
  [[nodiscard]] ckpt::LoadResult load(const RegistryEntry &entry) const;

  /// Digest the next record must chain onto.
  [[nodiscard]] std::string head_digest() const;

  /// Versions currently in the verified chain (in-memory view).
  [[nodiscard]] std::uint64_t head_version() const;

  [[nodiscard]] const std::string &dir() const noexcept { return dir_; }
  [[nodiscard]] std::string log_path() const { return dir_ + "/registry.log"; }
  [[nodiscard]] ckpt::CheckpointStore &store() noexcept { return store_; }

  /// The canonical text a record's digest is computed over.
  [[nodiscard]] static std::string canonical_record(const RegistryEntry &e);
  /// Chain anchor: SHA-256 of "treu-model-registry v1".
  [[nodiscard]] static std::string genesis_digest();

 private:
  bool append_record(const RegistryEntry &entry, bool tear,
                     std::string *error);
  void repair();  // truncate the log to its verified prefix

  std::string dir_;
  ckpt::CheckpointStore store_;
  // Verified chain as of construction plus successful publishes since.
  std::vector<RegistryEntry> entries_;
};

}  // namespace treu::pipeline
