#pragma once

// CanarySplitServer — deterministic traffic splitting across an incumbent
// fleet and a canary fleet.
//
// Routing is a pure function of (request key, salt, fraction): key k goes
// to the canary iff mix64(k ^ mix64(salt)) falls below fraction of the
// 64-bit space. No clocks, no counters, no randomness — the same key
// routes the same way in every run, on every platform, which is what lets
// a soak assert per-request provenance ("this key was answered by that
// digest") across same-seed replays.
//
// Each fleet is a full serve::BatchServer, so the canary slice inherits
// batching, backpressure, retries, breakers, and per-response weight-hash
// provenance unchanged. Reloads go through BatchServer::reload_weights —
// digest-validated, standby-first, rollback on mismatch — which is the
// mechanism that makes "no request is ever served by an unvetted
// checkpoint" enforceable: a reload to a digest the registry cannot verify
// never commits.

#include <cstdint>
#include <functional>
#include <future>
#include <string>
#include <utility>
#include <vector>

#include "treu/serve/batch_server.hpp"

namespace treu::pipeline {

/// splitmix64 finalizer: a strong 64-bit bit mixer.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Pure routing predicate: does `key` fall in the canary slice?
[[nodiscard]] constexpr bool in_canary_slice(std::uint64_t key,
                                             std::uint64_t salt,
                                             double fraction) noexcept {
  if (fraction <= 0.0) return false;
  if (fraction >= 1.0) return true;
  const auto threshold = static_cast<std::uint64_t>(
      fraction * 18446744073709551616.0 /* 2^64 */);
  return mix64(key ^ mix64(salt)) < threshold;
}

template <typename In, typename Out>
class CanarySplitServer {
 public:
  using Model = nn::Predictor<In, Out>;
  using Response = serve::Served<Out>;

  /// `primary` serves 1-fraction of keys, `canary` the rest. Both fleets
  /// share one config; replica sets must be disjoint model instances.
  CanarySplitServer(std::vector<Model *> primary, std::vector<Model *> canary,
                    const serve::ServeConfig &config, double fraction,
                    std::uint64_t salt)
      : fraction_(fraction),
        salt_(salt),
        primary_(std::move(primary), config),
        canary_(std::move(canary), config) {
    if (fraction < 0.0 || fraction > 1.0) {
      throw std::invalid_argument(
          "CanarySplitServer: fraction outside [0,1]");
    }
  }

  [[nodiscard]] bool routes_to_canary(std::uint64_t key) const noexcept {
    return in_canary_slice(key, salt_, fraction_);
  }

  /// Route by key: deterministic hash split between the two fleets.
  [[nodiscard]] std::future<Response> submit(
      std::uint64_t key, In input,
      serve::Priority priority = serve::Priority::Normal) {
    return (routes_to_canary(key) ? canary_ : primary_)
        .submit(std::move(input), priority);
  }

  /// Direct fleet access for shadow scoring: mirror the same input to both
  /// sides regardless of routing.
  [[nodiscard]] std::future<Response> submit_to_canary(In input) {
    return canary_.submit(std::move(input));
  }
  [[nodiscard]] std::future<Response> submit_to_primary(In input) {
    return primary_.submit(std::move(input));
  }

  serve::ReloadReport reload_canary(
      const std::function<void(Model &)> &apply,
      const std::string &expected_hash,
      const std::function<void(Model &)> &rollback) {
    return canary_.reload_weights(apply, expected_hash, rollback);
  }
  serve::ReloadReport reload_primary(
      const std::function<void(Model &)> &apply,
      const std::string &expected_hash,
      const std::function<void(Model &)> &rollback) {
    return primary_.reload_weights(apply, expected_hash, rollback);
  }

  [[nodiscard]] serve::ServeStats primary_stats() const {
    return primary_.stats();
  }
  [[nodiscard]] serve::ServeStats canary_stats() const {
    return canary_.stats();
  }
  [[nodiscard]] double fraction() const noexcept { return fraction_; }
  [[nodiscard]] std::uint64_t salt() const noexcept { return salt_; }

  void shutdown() {
    primary_.shutdown();
    canary_.shutdown();
  }

 private:
  double fraction_;
  std::uint64_t salt_;
  serve::BatchServer<In, Out> primary_;
  serve::BatchServer<In, Out> canary_;
};

}  // namespace treu::pipeline
