#pragma once

// RolloutController — a crash-safe canary promotion state machine.
//
//   Idle ──publish vetted──> Canary ──verdict pass──> Promoting ──> Promoted
//                              │                         (idempotent hook)
//                              └──verdict fail──> RollingBack ──> RolledBack
//
// Every transition is journaled to an append-only state file *before* the
// action it names runs (write-ahead intent logging), and each journal
// append is fsynced. A controller killed at any instruction therefore
// leaves a journal whose last line names exactly how far the cycle got,
// and resume() completes the cycle from that line alone:
//
//   last line            resume action
//   cycle <n> ...        rollback  (published, never canaried)
//   state <n> canary     rollback  (canary may hold unjudged weights)
//   verdict <n> ... pass promote   (the decision is durable — honor it)
//   verdict <n> ... fail rollback
//   state <n> promoting  promote   (intent logged; finish the promotion)
//   state <n> rolling-back rollback
//
// Every journal line is clock-free — cycle numbers, registry versions,
// digests, and fixed-precision scores only — so two same-seed runs (and a
// crashed run plus its resumed half) produce byte-identical journals. The
// promote/rollback hooks must be idempotent: resume may re-run an action
// the crash interrupted halfway.
//
// Fault injection: an optional fault::FaultPlan is consulted once per
// decision point (publish, canary entry, promote entry) per cycle. The
// pipeline kinds map to: PublishCorrupt — rot the committed container so
// verification must reject it; RegistryTorn — tear the log append and
// halt (a crash mid-publish); CanaryCrash / PromoteCrash — halt right
// after entering that state, exactly where a SIGKILL would be nastiest.
// A halted controller refuses further cycles; the owner constructs a
// fresh controller on the same directories and calls resume(), just as a
// restarted process would. Non-pipeline kinds decided at these points are
// ignored, so a serving-oriented plan can be shared safely.

#include <cstdint>
#include <functional>
#include <string>

#include "treu/fault/fault_plan.hpp"
#include "treu/pipeline/registry.hpp"

namespace treu::pipeline {

enum class RolloutState : std::uint8_t {
  Idle = 0,
  Canary,
  Promoting,
  Promoted,
  RollingBack,
  RolledBack,
};

[[nodiscard]] constexpr const char *to_string(RolloutState s) noexcept {
  switch (s) {
    case RolloutState::Idle: return "idle";
    case RolloutState::Canary: return "canary";
    case RolloutState::Promoting: return "promoting";
    case RolloutState::Promoted: return "promoted";
    case RolloutState::RollingBack: return "rolling-back";
    case RolloutState::RolledBack: return "rolled-back";
  }
  return "unknown";
}

/// Shadow-scoring outcome for one canary window: candidate vs incumbent on
/// the same traffic slice. The adapter computes these however it likes
/// (eval-set accuracy, SLO gauges, ...) as long as same-seed runs produce
/// identical numbers.
struct CanaryVerdict {
  double candidate_score = 0.0;
  double incumbent_score = 0.0;
  double canary_goodput = 1.0;      // fraction of canary requests answered
  std::uint64_t canary_errors = 0;  // failed canary requests in the window
};

/// Type-erased deployment surface. All hooks must be idempotent (resume
/// may repeat them) and deterministic for a given seed.
struct RolloutHooks {
  /// Load the candidate onto the canary slice, digest-validated against
  /// entry.weight_digest. False aborts the canary into a rollback.
  std::function<bool(const RegistryEntry &)> start_canary;
  /// Shadow-score the canary slice against the incumbent.
  std::function<CanaryVerdict(const RegistryEntry &)> score;
  /// Move the whole fleet onto the candidate (idempotent).
  std::function<bool(const RegistryEntry &)> promote;
  /// Restore the incumbent everywhere, canary slice included (idempotent).
  std::function<bool()> rollback;
};

/// Simulated-SIGKILL points for the kill-at-every-state crash tests. The
/// controller journals up to the point, runs any action the point sits
/// after, then halts without writing another byte — on-disk state is
/// indistinguishable from a kill at that instruction.
enum class CrashPoint : std::uint8_t {
  None = 0,
  AfterPublish,           // cycle line durable, no state line yet
  AfterCanaryEnter,       // "state n canary" durable, weights not applied
  AfterCanaryApply,       // canary fleet holds the candidate
  AfterVerdict,           // verdict durable, outcome state not entered
  AfterPromotingEnter,    // "state n promoting" durable, fleet untouched
  AfterPromoteApply,      // fleet promoted, "promoted" line never written
  AfterRollingBackEnter,  // "state n rolling-back" durable, not rolled back
};

struct RolloutConfig {
  /// Pass iff candidate_score + max_score_regression >= incumbent_score.
  double max_score_regression = 0.0;
  /// ...and canary_goodput >= min_canary_goodput.
  double min_canary_goodput = 0.0;
  /// Optional pipeline fault schedule (not owned; may be shared).
  fault::FaultPlan *plan = nullptr;
  /// Test hook: halt at this point of the next cycle.
  CrashPoint crash_point = CrashPoint::None;
};

struct CycleReport {
  std::uint64_t cycle = 0;
  bool published = false;  // chain record durable
  bool vetted = false;     // post-publish verification passed
  bool pass = false;       // canary verdict
  bool crashed = false;    // halted mid-cycle (injected or crash_point)
  RolloutState state = RolloutState::Idle;  // terminal state reached
  RegistryEntry entry;
  CanaryVerdict verdict;
  std::string error;
};

struct ResumeReport {
  bool resumed = false;  // an interrupted cycle was found and completed
  std::uint64_t cycle = 0;
  RolloutState from = RolloutState::Idle;   // journal tail at restart
  RolloutState state = RolloutState::Idle;  // state after convergence
  std::size_t torn_journal_lines = 0;       // truncated torn tail lines
};

class RolloutController {
 public:
  /// Reads the journal at `journal_path` (creating it if missing) to
  /// restore cycle count, incumbent, and any interrupted cycle. Does not
  /// act on an interrupted cycle — call resume() before run_cycle().
  RolloutController(ModelRegistry &registry, RolloutHooks hooks,
                    const RolloutConfig &config, std::string journal_path);

  /// Complete any interrupted cycle per the table above. Safe to call when
  /// nothing is pending (reports resumed=false). Never throws on damaged
  /// journals: a torn tail is truncated and counted.
  ResumeReport resume();

  /// Drive one full publish→canary→promote/rollback cycle. Throws
  /// std::logic_error if an interrupted cycle is pending or the controller
  /// has halted (simulated crash) — construct a fresh controller instead.
  CycleReport run_cycle(const ckpt::TrainingCheckpoint &candidate);

  [[nodiscard]] RolloutState state() const noexcept { return state_; }
  [[nodiscard]] std::uint64_t cycles() const noexcept { return cycle_; }
  /// Registry version the fleet currently serves; 0 = pre-registry
  /// baseline (nothing promoted yet).
  [[nodiscard]] std::uint64_t incumbent_version() const noexcept {
    return incumbent_version_;
  }
  [[nodiscard]] bool halted() const noexcept { return halted_; }
  [[nodiscard]] bool pending_resume() const noexcept {
    return pending_resume_;
  }
  [[nodiscard]] const std::string &journal_path() const noexcept {
    return journal_path_;
  }
  /// Current on-disk journal bytes (the byte-identity surface).
  [[nodiscard]] std::string journal_string() const;

 private:
  struct JournalTail;  // defined in rollout.cpp

  bool journal_append(const std::string &line);
  void journal_state(std::uint64_t cycle, RolloutState s);
  [[nodiscard]] bool crash_here(CrashPoint point);
  void do_promote(std::uint64_t cycle, const RegistryEntry &entry,
                  CycleReport *report);
  void do_rollback(std::uint64_t cycle, bool rolling_back_journaled,
                   CycleReport *report);

  ModelRegistry &registry_;
  RolloutHooks hooks_;
  RolloutConfig config_;
  std::string journal_path_;

  RolloutState state_ = RolloutState::Idle;
  std::uint64_t cycle_ = 0;              // last cycle number seen/used
  std::uint64_t incumbent_version_ = 0;  // 0 = baseline weights
  bool halted_ = false;
  bool pending_resume_ = false;
  // Interrupted-cycle facts recovered from the journal.
  std::uint64_t pending_cycle_ = 0;
  std::uint64_t pending_version_ = 0;
  RolloutState pending_from_ = RolloutState::Idle;
  bool pending_pass_ = false;       // verdict outcome, when one was logged
  bool pending_has_verdict_ = false;
  std::size_t torn_journal_lines_ = 0;
};

}  // namespace treu::pipeline
