#include "treu/pf/kalman.hpp"

#include <algorithm>
#include <cmath>

#include "treu/core/timer.hpp"

namespace treu::pf {

EkfLocator::EkfLocator(const ConcertSchedule &schedule, const EkfConfig &config)
    : schedule_(schedule), config_(config) {
  x_[1] = config.rate_mean;
}

void EkfLocator::step(double observation, double dt) {
  // Predict: x <- F x with F = [[1, dt], [0, 1]]; P <- F P F^T + Q.
  x_[0] += x_[1] * dt;
  x_[0] = std::clamp(x_[0], 0.0, schedule_.total_duration());
  const double q_pos = config_.position_jitter * config_.position_jitter;
  const double q_rate = config_.rate_sigma * config_.rate_sigma;
  const double p00 = p_[0][0], p01 = p_[0][1], p10 = p_[1][0], p11 = p_[1][1];
  p_[0][0] = p00 + dt * (p10 + p01) + dt * dt * p11 + q_pos;
  p_[0][1] = p01 + dt * p11;
  p_[1][0] = p10 + dt * p11;
  p_[1][1] = p11 + q_rate;

  // Update through the feature map h(pos) with a numerical Jacobian. The
  // map is piecewise constant, so H is zero except when the differencing
  // stencil straddles an event boundary.
  const double pos = x_[0];
  const double step_size = config_.jacobian_step;
  const double h_plus = schedule_.feature_at(pos + step_size);
  const double h_minus = schedule_.feature_at(pos - step_size);
  const double h = schedule_.feature_at(pos);
  const double H = (h_plus - h_minus) / (2.0 * step_size);

  const double r = config_.obs_sigma * config_.obs_sigma;
  const double s = H * p_[0][0] * H + r;
  if (std::fabs(H) < 1e-12 || s <= 0.0) {
    return;  // no usable gradient: the update degenerates (the point!)
  }
  const double k0 = p_[0][0] * H / s;
  const double k1 = p_[1][0] * H / s;
  const double innovation = observation - h;
  x_[0] += k0 * innovation;
  x_[1] += k1 * innovation;
  x_[0] = std::clamp(x_[0], 0.0, schedule_.total_duration());
  // Joseph-free covariance update: P <- (I - K H) P.
  const double new_p00 = (1.0 - k0 * H) * p_[0][0];
  const double new_p01 = (1.0 - k0 * H) * p_[0][1];
  const double new_p10 = p_[1][0] - k1 * H * p_[0][0];
  const double new_p11 = p_[1][1] - k1 * H * p_[0][1];
  p_[0][0] = new_p00;
  p_[0][1] = new_p01;
  p_[1][0] = new_p10;
  p_[1][1] = new_p11;
}

TrackingResult track_ekf(const ConcertSchedule &schedule, const Trace &trace,
                         const EkfConfig &config) {
  TrackingResult result;
  EkfLocator locator(schedule, config);
  double sq_sum = 0.0;
  double abs_sum = 0.0;
  std::size_t correct = 0;
  core::WallTimer timer;
  for (std::size_t t = 0; t < trace.observations.size(); ++t) {
    locator.step(trace.observations[t], trace.dt);
    const double est = locator.estimate_position();
    const double err = est - trace.truth[t];
    sq_sum += err * err;
    abs_sum += std::fabs(err);
    if (schedule.event_at(est) == schedule.event_at(trace.truth[t])) {
      ++correct;
    }
  }
  result.seconds = timer.elapsed_seconds();
  const double n =
      static_cast<double>(std::max<std::size_t>(trace.observations.size(), 1));
  result.rmse = std::sqrt(sq_sum / n);
  result.mean_abs_error = abs_sum / n;
  result.event_accuracy = static_cast<double>(correct) / n;
  return result;
}

}  // namespace treu::pf
