#include "treu/pf/concert.hpp"

#include <algorithm>
#include <stdexcept>

namespace treu::pf {

ConcertSchedule::ConcertSchedule(std::vector<Event> events)
    : events_(std::move(events)) {
  if (events_.empty()) {
    throw std::invalid_argument("ConcertSchedule: empty schedule");
  }
  double t = 0.0;
  for (auto &e : events_) {
    e.start = t;
    t += e.duration;
  }
  total_ = t;
}

ConcertSchedule ConcertSchedule::random(std::size_t k, core::Rng &rng,
                                        double min_duration,
                                        double max_duration) {
  if (k == 0) throw std::invalid_argument("ConcertSchedule::random: k == 0");
  std::vector<Event> events(k);
  // Features: a shuffled, spaced grid so adjacent events never share a
  // signature (distinct events, per the project description).
  std::vector<double> features(k);
  for (std::size_t i = 0; i < k; ++i) {
    features[i] = static_cast<double>(i) * 10.0;
  }
  rng.shuffle(features);
  for (std::size_t i = 0; i < k; ++i) {
    events[i].duration = rng.uniform(min_duration, max_duration);
    events[i].feature = features[i];
  }
  return ConcertSchedule(std::move(events));
}

std::size_t ConcertSchedule::event_at(double t) const noexcept {
  if (t <= 0.0) return 0;
  for (std::size_t i = 0; i < events_.size(); ++i) {
    if (t < events_[i].start + events_[i].duration) return i;
  }
  return events_.size() - 1;
}

double ConcertSchedule::feature_at(double t) const noexcept {
  return events_[event_at(t)].feature;
}

Trace simulate_performance(const ConcertSchedule &schedule,
                           const SimulatorConfig &config, core::Rng &rng) {
  Trace trace;
  trace.dt = config.dt;
  double position = 0.0;
  double rate = config.rate_mean;
  while (position < schedule.total_duration()) {
    trace.truth.push_back(position);
    trace.observations.push_back(schedule.feature_at(position) +
                                 rng.normal(0.0, config.obs_sigma));
    rate = std::max(0.1, rate + rng.normal(0.0, config.rate_sigma));
    position += rate * config.dt;
  }
  return trace;
}

}  // namespace treu::pf
