#include "treu/pf/weighting.hpp"

#include <cmath>

namespace treu::pf {

const char *to_string(WeightKind kind) noexcept {
  switch (kind) {
    case WeightKind::Gaussian: return "gaussian";
    case WeightKind::FastRational: return "fast_rational";
    case WeightKind::Epanechnikov: return "epanechnikov";
  }
  return "?";
}

double gaussian_weight(double residual, double sigma) noexcept {
  const double z = residual / sigma;
  return std::exp(-0.5 * z * z);
}

double fast_weight(double residual, double sigma) noexcept {
  // 1/(1 + r^2/(4 sigma^2))^2 = 1 - r^2/(2 sigma^2) + O(r^4): matches the
  // Gaussian kernel to second order at r = 0.
  const double z2 = residual * residual / (4.0 * sigma * sigma);
  const double d = 1.0 + z2;
  return 1.0 / (d * d);
}

double epanechnikov_weight(double residual, double sigma) noexcept {
  const double z2 = residual * residual / (6.0 * sigma * sigma);
  return z2 >= 1.0 ? 0.0 : 1.0 - z2;
}

double weight(WeightKind kind, double residual, double sigma) noexcept {
  switch (kind) {
    case WeightKind::Gaussian: return gaussian_weight(residual, sigma);
    case WeightKind::FastRational: return fast_weight(residual, sigma);
    case WeightKind::Epanechnikov: return epanechnikov_weight(residual, sigma);
  }
  return 0.0;
}

}  // namespace treu::pf
