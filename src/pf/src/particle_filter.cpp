#include "treu/pf/particle_filter.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "treu/core/timer.hpp"

namespace treu::pf {

double effective_sample_size(std::span<const double> weights) noexcept {
  double sum_sq = 0.0;
  for (double w : weights) sum_sq += w * w;
  return sum_sq > 0.0 ? 1.0 / sum_sq : 0.0;
}

std::vector<std::size_t> systematic_resample(std::span<const double> weights,
                                             std::size_t n, core::Rng &rng) {
  std::vector<std::size_t> parents(n, 0);
  if (weights.empty() || n == 0) return parents;
  const double step = 1.0 / static_cast<double>(n);
  double u = rng.uniform() * step;
  double cum = weights[0];
  std::size_t i = 0;
  for (std::size_t j = 0; j < n; ++j) {
    while (u > cum && i + 1 < weights.size()) {
      ++i;
      cum += weights[i];
    }
    parents[j] = i;
    u += step;
  }
  return parents;
}

std::vector<std::size_t> multinomial_resample(std::span<const double> weights,
                                              std::size_t n, core::Rng &rng) {
  std::vector<std::size_t> parents(n, 0);
  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t pick = rng.categorical(weights);
    parents[j] = pick >= weights.size() ? 0 : pick;
  }
  return parents;
}

EventLocator::EventLocator(const ConcertSchedule &schedule,
                           const PfConfig &config, core::Rng &rng)
    : schedule_(schedule), config_(config), rng_(rng.split(0x9F)) {
  if (config.n_particles == 0) {
    throw std::invalid_argument("EventLocator: need at least one particle");
  }
  positions_.resize(config.n_particles);
  rates_.resize(config.n_particles);
  weights_.assign(config.n_particles,
                  1.0 / static_cast<double>(config.n_particles));
  // Initialize near the start of the schedule with mild spread.
  for (std::size_t i = 0; i < config.n_particles; ++i) {
    positions_[i] = std::fabs(rng_.normal(0.0, 2.0));
    rates_[i] = std::max(0.1, rng_.normal(config.rate_mean, config.rate_sigma * 5.0));
  }
}

void EventLocator::step(double observation, double dt) {
  elapsed_ += dt;
  const std::size_t n = positions_.size();

  // Predict.
  for (std::size_t i = 0; i < n; ++i) {
    rates_[i] = std::max(0.1, rates_[i] + rng_.normal(0.0, config_.rate_sigma));
    positions_[i] += rates_[i] * dt + rng_.normal(0.0, config_.position_jitter);
    positions_[i] = std::clamp(positions_[i], 0.0, schedule_.total_duration());
  }

  // Update.
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double residual =
        observation - schedule_.feature_at(positions_[i]);
    double w = weights_[i] * weight(config_.kind, residual, config_.obs_sigma);
    if (config_.use_schedule_prior) {
      // Soft attention toward where the schedule says we should be by now.
      const double expected = elapsed_ * config_.rate_mean;
      w *= fast_weight(positions_[i] - expected, config_.prior_sigma);
    }
    weights_[i] = w;
    total += w;
  }
  if (total <= 0.0 || !std::isfinite(total)) {
    // Degenerate update (all kernels zero): reset to uniform rather than
    // dividing by zero — the filter recovers on the next informative step.
    const double uniform = 1.0 / static_cast<double>(n);
    for (auto &w : weights_) w = uniform;
  } else {
    for (auto &w : weights_) w /= total;
  }

  last_ess_ = effective_sample_size(weights_);
  if (last_ess_ <
      config_.resample_threshold * static_cast<double>(n)) {
    const auto parents = systematic_resample(weights_, n, rng_);
    std::vector<double> new_pos(n), new_rate(n);
    for (std::size_t j = 0; j < n; ++j) {
      new_pos[j] = positions_[parents[j]];
      new_rate[j] = rates_[parents[j]];
    }
    positions_ = std::move(new_pos);
    rates_ = std::move(new_rate);
    const double uniform = 1.0 / static_cast<double>(n);
    for (auto &w : weights_) w = uniform;
    ++resamples_;
  }
}

double EventLocator::estimate_position() const noexcept {
  double s = 0.0;
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    s += weights_[i] * positions_[i];
  }
  return s;
}

std::size_t EventLocator::estimate_event() const noexcept {
  return schedule_.event_at(estimate_position());
}

TrackingResult track(const ConcertSchedule &schedule, const Trace &trace,
                     const PfConfig &config, core::Rng &rng) {
  TrackingResult result;
  EventLocator locator(schedule, config, rng);
  double sq_sum = 0.0;
  double abs_sum = 0.0;
  std::size_t correct_events = 0;
  core::WallTimer timer;
  for (std::size_t t = 0; t < trace.observations.size(); ++t) {
    locator.step(trace.observations[t], trace.dt);
    const double est = locator.estimate_position();
    const double err = est - trace.truth[t];
    sq_sum += err * err;
    abs_sum += std::fabs(err);
    if (schedule.event_at(est) == schedule.event_at(trace.truth[t])) {
      ++correct_events;
    }
  }
  result.seconds = timer.elapsed_seconds();
  const double n = static_cast<double>(std::max<std::size_t>(trace.observations.size(), 1));
  result.rmse = std::sqrt(sq_sum / n);
  result.mean_abs_error = abs_sum / n;
  result.event_accuracy = static_cast<double>(correct_events) / n;
  result.resamples = locator.resample_count();
  return result;
}

}  // namespace treu::pf
