#pragma once

// Extended-Kalman-filter baseline for the event-location problem (§2.2).
//
// The §2.2 project's premise is that *usual* tracking machinery struggles
// when environment features are not repeatedly observable. The EKF makes
// that concrete: the concert's feature map is piecewise constant in the
// schedule position, so its derivative is zero almost everywhere, the
// Kalman gain collapses, and the filter degenerates to dead reckoning with
// ever-growing variance. We implement the EKF honestly (numerical Jacobian
// of the feature map, full covariance propagation) and let the experiment
// show the particle filter's advantage — the quantitative version of the
// project's motivation.

#include <array>

#include "treu/pf/concert.hpp"
#include "treu/pf/particle_filter.hpp"  // TrackingResult

namespace treu::pf {

struct EkfConfig {
  double rate_mean = 1.0;
  double rate_sigma = 0.05;        // process noise on the tempo
  double position_jitter = 0.05;   // process noise on the position
  double obs_sigma = 0.5;          // observation noise
  double jacobian_step = 0.5;      // central-difference step (s)
};

/// EKF over the state [position, rate].
class EkfLocator {
 public:
  EkfLocator(const ConcertSchedule &schedule, const EkfConfig &config);

  /// Assimilate one observation taken `dt` seconds after the previous one.
  void step(double observation, double dt);

  [[nodiscard]] double estimate_position() const noexcept { return x_[0]; }
  [[nodiscard]] double estimate_rate() const noexcept { return x_[1]; }
  /// Position variance (P[0][0]): watch it grow when the Jacobian is zero.
  [[nodiscard]] double position_variance() const noexcept { return p_[0][0]; }

 private:
  const ConcertSchedule &schedule_;
  EkfConfig config_;
  std::array<double, 2> x_{0.0, 1.0};              // [position, rate]
  std::array<std::array<double, 2>, 2> p_{{{4.0, 0.0}, {0.0, 0.01}}};
};

/// Track a trace with the EKF and report the same metrics as pf::track.
[[nodiscard]] TrackingResult track_ekf(const ConcertSchedule &schedule,
                                       const Trace &trace,
                                       const EkfConfig &config = {});

}  // namespace treu::pf
