#pragma once

// The concert case study (§2.2): a schedule of distinct, non-repeating
// events with expected start times, a ground-truth performance that drifts
// around the schedule, and a noisy scalar feature observed at a fixed rate.
//
// "Usual implementations of particle filters require environment features to
// be repeatedly observable" — here each event happens once, so localization
// must lean on the *schedule* (the map) plus the instantaneous feature.

#include <cstddef>
#include <vector>

#include "treu/core/rng.hpp"

namespace treu::pf {

struct Event {
  double start = 0.0;     // scheduled start time (s)
  double duration = 0.0;  // scheduled duration (s)
  double feature = 0.0;   // distinct scalar signature (e.g. spectral centroid)
};

class ConcertSchedule {
 public:
  explicit ConcertSchedule(std::vector<Event> events);

  /// Random schedule: k events, durations U(min,max), features distinct and
  /// well separated.
  static ConcertSchedule random(std::size_t k, core::Rng &rng,
                                double min_duration = 20.0,
                                double max_duration = 60.0);

  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  [[nodiscard]] const Event &event(std::size_t i) const { return events_.at(i); }
  [[nodiscard]] double total_duration() const noexcept { return total_; }

  /// Index of the event scheduled at position t (clamped to [0, size-1]).
  [[nodiscard]] std::size_t event_at(double t) const noexcept;

  /// Feature signature at schedule position t.
  [[nodiscard]] double feature_at(double t) const noexcept;

 private:
  std::vector<Event> events_;
  double total_ = 0.0;
};

/// One simulated performance: the true position advances with a random
/// tempo (rate) drift and the observed feature carries Gaussian noise.
struct Trace {
  std::vector<double> truth;         // true schedule position per step
  std::vector<double> observations;  // noisy feature per step
  double dt = 1.0;
};

struct SimulatorConfig {
  double dt = 1.0;           // seconds between observations
  double rate_mean = 1.0;    // expected tempo (schedule seconds per real second)
  double rate_sigma = 0.05;  // random-walk tempo drift per step
  double obs_sigma = 0.5;    // feature observation noise
};

[[nodiscard]] Trace simulate_performance(const ConcertSchedule &schedule,
                                         const SimulatorConfig &config,
                                         core::Rng &rng);

}  // namespace treu::pf
