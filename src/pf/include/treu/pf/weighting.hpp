#pragma once

// Particle weighting functions (§2.2).
//
// The student project's headline result: a "fast weighting function that is
// much faster and almost as accurate as the typical Gaussian weighting
// function". The Gaussian kernel costs an exp() per particle per step; the
// fast kernel is a rational approximation with the same qualitative shape
// (maximum 1 at zero residual, monotone decreasing, heavier tails) built
// from two multiplies and one divide. Both are exposed as plain functions
// (hot loop) and as an enum-dispatched functor for configuration.

#include <cstdint>

namespace treu::pf {

enum class WeightKind : std::uint8_t { Gaussian, FastRational, Epanechnikov };

[[nodiscard]] const char *to_string(WeightKind kind) noexcept;

/// exp(-r^2 / (2 sigma^2)) — the classical likelihood kernel.
[[nodiscard]] double gaussian_weight(double residual, double sigma) noexcept;

/// 1 / (1 + r^2 / (4 sigma^2))^2 — transcendental-free Gaussian stand-in.
/// Second-order Taylor match at 0; heavier tails (more forgiving of outlier
/// observations, which in practice is part of why it tracks almost as well).
[[nodiscard]] double fast_weight(double residual, double sigma) noexcept;

/// max(0, 1 - r^2 / (6 sigma^2)) — compact-support kernel (variance-matched
/// Epanechnikov); cheapest of all but zero weight outside +-sqrt(6) sigma,
/// which can starve the filter. Included as the ablation's third point.
[[nodiscard]] double epanechnikov_weight(double residual, double sigma) noexcept;

/// Dispatch on kind.
[[nodiscard]] double weight(WeightKind kind, double residual,
                            double sigma) noexcept;

}  // namespace treu::pf
