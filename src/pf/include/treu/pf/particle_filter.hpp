#pragma once

// Particle filter for temporal event location (§2.2).
//
// State per particle: (position in the schedule, tempo rate). Predict
// advances each particle by its rate with random-walk drift; update weights
// particles by the configured kernel on the feature residual, optionally
// multiplied by a *schedule prior* — a soft attention over the expected
// position given elapsed wall-clock time, which is what lets the filter
// survive features that are only observable once (the project's motivating
// limitation of standard particle filters).
//
// Resampling is systematic (low-variance) and triggered by the effective
// sample size dropping below a configurable fraction.

#include <cstddef>
#include <vector>

#include "treu/core/rng.hpp"
#include "treu/pf/concert.hpp"
#include "treu/pf/weighting.hpp"

namespace treu::pf {

struct PfConfig {
  std::size_t n_particles = 512;
  WeightKind kind = WeightKind::Gaussian;
  double obs_sigma = 0.5;          // kernel bandwidth on feature residuals
  double rate_mean = 1.0;
  double rate_sigma = 0.05;        // per-step tempo drift
  double position_jitter = 0.05;   // extra positional diffusion
  double resample_threshold = 0.5; // resample when ESS/N < threshold
  bool use_schedule_prior = true;
  double prior_sigma = 30.0;       // bandwidth of the schedule prior (s)
};

/// Effective sample size of normalized weights: 1 / sum w_i^2.
[[nodiscard]] double effective_sample_size(std::span<const double> weights) noexcept;

/// Systematic (low-variance) resampling: returns parent index per particle.
[[nodiscard]] std::vector<std::size_t> systematic_resample(
    std::span<const double> weights, std::size_t n, core::Rng &rng);

/// Multinomial resampling (baseline; higher variance).
[[nodiscard]] std::vector<std::size_t> multinomial_resample(
    std::span<const double> weights, std::size_t n, core::Rng &rng);

class EventLocator {
 public:
  EventLocator(const ConcertSchedule &schedule, const PfConfig &config,
               core::Rng &rng);

  /// Assimilate one observation taken `dt` seconds after the previous one.
  void step(double observation, double dt);

  /// Weighted-mean position estimate.
  [[nodiscard]] double estimate_position() const noexcept;

  /// Most likely current event index.
  [[nodiscard]] std::size_t estimate_event() const noexcept;

  [[nodiscard]] double last_ess() const noexcept { return last_ess_; }
  [[nodiscard]] std::size_t resample_count() const noexcept {
    return resamples_;
  }
  [[nodiscard]] std::span<const double> positions() const noexcept {
    return positions_;
  }
  [[nodiscard]] std::span<const double> weights() const noexcept {
    return weights_;
  }

 private:
  const ConcertSchedule &schedule_;
  PfConfig config_;
  core::Rng rng_;
  std::vector<double> positions_;
  std::vector<double> rates_;
  std::vector<double> weights_;  // normalized
  double elapsed_ = 0.0;         // wall-clock since start (schedule prior)
  double last_ess_ = 0.0;
  std::size_t resamples_ = 0;
};

/// Tracking-quality metrics of one filter run against ground truth.
struct TrackingResult {
  double rmse = 0.0;            // position RMSE (seconds)
  double mean_abs_error = 0.0;
  double event_accuracy = 0.0;  // fraction of steps with correct event id
  double seconds = 0.0;         // filter wall time (excl. simulation)
  std::size_t resamples = 0;
};

/// Run the locator over a pre-simulated trace.
[[nodiscard]] TrackingResult track(const ConcertSchedule &schedule,
                                   const Trace &trace, const PfConfig &config,
                                   core::Rng &rng);

}  // namespace treu::pf
