#include "treu/core/manifest.hpp"

#include <charconv>
#include <cinttypes>
#include <cstdio>

namespace treu::core {
namespace {

// Self-delimiting field encoding: "<len>:<bytes>" (netstring-style), which
// makes the canonical string injective over field values.
void emit(std::string &out, std::string_view field) {
  out += std::to_string(field.size());
  out += ':';
  out += field;
}

// Doubles serialize as hex floats: bit-exact and locale-independent.
std::string format_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

}  // namespace

Manifest &Manifest::set(std::string key, std::string value) {
  params[std::move(key)] = std::move(value);
  return *this;
}

Manifest &Manifest::set(std::string key, double value) {
  return set(std::move(key), format_double(value));
}

Manifest &Manifest::set(std::string key, std::int64_t value) {
  return set(std::move(key), std::to_string(value));
}

std::optional<std::string> Manifest::get(std::string_view key) const {
  const auto it = params.find(std::string(key));
  if (it == params.end()) return std::nullopt;
  return it->second;
}

double Manifest::get_double(std::string_view key, double fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  // Accept both hex-float (our own encoding) and decimal.
  return std::strtod(v->c_str(), nullptr);
}

std::int64_t Manifest::get_int(std::string_view key,
                               std::int64_t fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  std::int64_t out = fallback;
  std::from_chars(v->data(), v->data() + v->size(), out);
  return out;
}

std::string Manifest::canonical_string() const {
  std::string out = "manifest-v1\n";
  emit(out, name);
  emit(out, description);
  emit(out, std::to_string(seed));
  emit(out, code_version);
  emit(out, std::to_string(params.size()));
  for (const auto &[k, v] : params) {  // std::map: already sorted by key
    emit(out, k);
    emit(out, v);
  }
  return out;
}

std::optional<Manifest> Manifest::from_canonical_string(std::string_view text) {
  constexpr std::string_view kHeader = "manifest-v1\n";
  if (text.substr(0, kHeader.size()) != kHeader) return std::nullopt;
  std::size_t pos = kHeader.size();

  const auto field = [&]() -> std::optional<std::string> {
    std::size_t len = 0;
    bool any = false;
    while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') {
      len = len * 10 + static_cast<std::size_t>(text[pos] - '0');
      ++pos;
      any = true;
      if (len > text.size()) return std::nullopt;
    }
    if (!any || pos >= text.size() || text[pos] != ':') return std::nullopt;
    ++pos;
    if (pos + len > text.size()) return std::nullopt;
    std::string value(text.substr(pos, len));
    pos += len;
    return value;
  };
  const auto parse_u64 = [](const std::string &s) -> std::optional<std::uint64_t> {
    std::uint64_t out = 0;
    const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
    if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
    return out;
  };

  Manifest m;
  const auto name = field();
  const auto description = field();
  const auto seed_text = field();
  const auto version = field();
  const auto count_text = field();
  if (!name || !description || !seed_text || !version || !count_text) {
    return std::nullopt;
  }
  m.name = *name;
  m.description = *description;
  const auto seed = parse_u64(*seed_text);
  const auto count = parse_u64(*count_text);
  if (!seed || !count) return std::nullopt;
  m.seed = *seed;
  m.code_version = *version;
  std::string last_key;
  for (std::uint64_t i = 0; i < *count; ++i) {
    const auto key = field();
    const auto value = field();
    if (!key || !value) return std::nullopt;
    if (i > 0 && !(*key > last_key)) return std::nullopt;  // canonical order
    last_key = *key;
    m.params.emplace(*key, *value);
  }
  if (pos != text.size()) return std::nullopt;  // trailing bytes
  return m;
}

Digest Manifest::digest() const { return sha256(canonical_string()); }

std::string RunRecord::canonical_string() const {
  std::string out = "run-v1\n";
  emit(out, manifest_digest.hex());
  emit(out, format_double(duration_seconds));
  emit(out, notes);
  emit(out, std::to_string(metrics.size()));
  for (const auto &[k, v] : metrics) {
    emit(out, k);
    emit(out, format_double(v));
  }
  emit(out, std::to_string(artifacts.size()));
  for (const auto &[k, d] : artifacts) {
    emit(out, k);
    emit(out, d.hex());
  }
  return out;
}

Digest RunRecord::digest() const { return sha256(canonical_string()); }

Digest Journal::genesis() { return sha256("treu-journal-v1"); }

Digest Journal::append(RunRecord record) {
  const Digest prev = head();
  const Digest rec = record.digest();
  Sha256 h;
  h.update(std::span<const std::uint8_t>(prev.bytes.data(), prev.bytes.size()));
  h.update(std::span<const std::uint8_t>(rec.bytes.data(), rec.bytes.size()));
  records_.push_back(std::move(record));
  chain_.push_back(h.finish());
  return chain_.back();
}

Digest Journal::head() const {
  return chain_.empty() ? genesis() : chain_.back();
}

std::optional<std::size_t> Journal::verify() const {
  Digest prev = genesis();
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const Digest rec = records_[i].digest();
    Sha256 h;
    h.update(
        std::span<const std::uint8_t>(prev.bytes.data(), prev.bytes.size()));
    h.update(std::span<const std::uint8_t>(rec.bytes.data(), rec.bytes.size()));
    const Digest expect = h.finish();
    if (!(expect == chain_[i])) return i;
    prev = chain_[i];
  }
  return std::nullopt;
}

std::vector<std::size_t> Journal::runs_of(const Digest &manifest) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < records_.size(); ++i) {
    if (records_[i].manifest_digest == manifest) out.push_back(i);
  }
  return out;
}

void Journal::tamper_with_record(std::size_t i, const std::string &notes) {
  records_.at(i).notes = notes;
}

}  // namespace treu::core
