#include "treu/core/journal_io.hpp"

#include <charconv>
#include <cstdio>
#include <sstream>

namespace treu::core {
namespace {

constexpr std::string_view kHeader = "treu-journal-export-v1";

void emit_field(std::string &out, std::string_view value) {
  out += std::to_string(value.size());
  out += ':';
  out += value;
  out += '\n';
}

std::string format_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", v);  // hex float: bit-exact
  return buf;
}

// Line-oriented netstring reader.
class Reader {
 public:
  explicit Reader(std::string_view text) : text_(text) {}

  [[nodiscard]] bool eof() const noexcept { return pos_ >= text_.size(); }

  /// Read one "<len>:<bytes>\n" field.
  std::optional<std::string_view> field() {
    std::size_t len = 0;
    std::size_t i = pos_;
    bool any_digit = false;
    while (i < text_.size() && text_[i] >= '0' && text_[i] <= '9') {
      len = len * 10 + static_cast<std::size_t>(text_[i] - '0');
      ++i;
      any_digit = true;
      if (len > text_.size()) return std::nullopt;  // absurd length
    }
    if (!any_digit || i >= text_.size() || text_[i] != ':') return std::nullopt;
    ++i;
    if (i + len > text_.size()) return std::nullopt;
    const std::string_view value = text_.substr(i, len);
    i += len;
    if (i >= text_.size() || text_[i] != '\n') return std::nullopt;
    pos_ = i + 1;
    return value;
  }

  /// Read a plain line (for the header).
  std::optional<std::string_view> line() {
    if (eof()) return std::nullopt;
    const std::size_t nl = text_.find('\n', pos_);
    if (nl == std::string_view::npos) return std::nullopt;
    const std::string_view value = text_.substr(pos_, nl - pos_);
    pos_ = nl + 1;
    return value;
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
};

std::optional<std::size_t> parse_size(std::string_view s) {
  std::size_t out = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return out;
}

ImportResult fail(std::string error, std::size_t records) {
  ImportResult r;
  r.ok = false;
  r.error = std::move(error);
  r.records = records;
  return r;
}

}  // namespace

std::string export_journal(const Journal &journal) {
  std::string out;
  out += kHeader;
  out += '\n';
  emit_field(out, std::to_string(journal.size()));
  for (std::size_t i = 0; i < journal.size(); ++i) {
    const RunRecord &rec = journal.record(i);
    emit_field(out, "record");
    emit_field(out, rec.manifest_digest.hex());
    emit_field(out, format_double(rec.duration_seconds));
    emit_field(out, rec.notes);
    emit_field(out, std::to_string(rec.metrics.size()));
    for (const auto &[k, v] : rec.metrics) {
      emit_field(out, k);
      emit_field(out, format_double(v));
    }
    emit_field(out, std::to_string(rec.artifacts.size()));
    for (const auto &[k, d] : rec.artifacts) {
      emit_field(out, k);
      emit_field(out, d.hex());
    }
    emit_field(out, journal.chain_hash(i).hex());
  }
  return out;
}

ImportResult import_journal(std::string_view text) {
  Reader reader(text);
  const auto header = reader.line();
  if (!header || *header != kHeader) {
    return fail("bad or missing header", 0);
  }
  const auto count_field = reader.field();
  if (!count_field) return fail("missing record count", 0);
  const auto count = parse_size(*count_field);
  if (!count) return fail("unparseable record count", 0);

  ImportResult result;
  for (std::size_t i = 0; i < *count; ++i) {
    const auto tag = reader.field();
    if (!tag || *tag != "record") {
      return fail("missing record tag at index " + std::to_string(i), i);
    }
    RunRecord rec;
    const auto manifest_hex = reader.field();
    const auto duration = reader.field();
    const auto notes = reader.field();
    const auto n_metrics_field = reader.field();
    if (!manifest_hex || !duration || !notes || !n_metrics_field) {
      return fail("truncated record header at index " + std::to_string(i), i);
    }
    try {
      rec.manifest_digest = Digest::from_hex(*manifest_hex);
    } catch (const std::exception &) {
      return fail("bad manifest digest at index " + std::to_string(i), i);
    }
    rec.duration_seconds = std::strtod(std::string(*duration).c_str(), nullptr);
    rec.notes = std::string(*notes);
    const auto n_metrics = parse_size(*n_metrics_field);
    if (!n_metrics) return fail("bad metric count", i);
    for (std::size_t m = 0; m < *n_metrics; ++m) {
      const auto key = reader.field();
      const auto value = reader.field();
      if (!key || !value) return fail("truncated metrics", i);
      rec.metrics[std::string(*key)] =
          std::strtod(std::string(*value).c_str(), nullptr);
    }
    const auto n_artifacts_field = reader.field();
    if (!n_artifacts_field) return fail("missing artifact count", i);
    const auto n_artifacts = parse_size(*n_artifacts_field);
    if (!n_artifacts) return fail("bad artifact count", i);
    for (std::size_t a = 0; a < *n_artifacts; ++a) {
      const auto key = reader.field();
      const auto value = reader.field();
      if (!key || !value) return fail("truncated artifacts", i);
      try {
        rec.artifacts[std::string(*key)] = Digest::from_hex(*value);
      } catch (const std::exception &) {
        return fail("bad artifact digest", i);
      }
    }
    const auto chain_hex = reader.field();
    if (!chain_hex) return fail("missing chain hash", i);
    Digest recorded_chain;
    try {
      recorded_chain = Digest::from_hex(*chain_hex);
    } catch (const std::exception &) {
      return fail("bad chain hash", i);
    }
    // Append recomputes the chain; a tampered record or reordered block
    // produces a different head than the recorded one.
    const Digest recomputed = result.journal.append(std::move(rec));
    if (!(recomputed == recorded_chain)) {
      return fail("chain verification failed at record " + std::to_string(i) +
                      " (record was modified after export)",
                  i);
    }
    ++result.records;
  }
  if (!reader.eof()) {
    // Trailing garbage is suspicious for an artifact of record.
    return fail("trailing data after final record", result.records);
  }
  result.ok = true;
  return result;
}

}  // namespace treu::core
