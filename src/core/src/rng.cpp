#include "treu/core/rng.hpp"

#include <cmath>
#include <numbers>

namespace treu::core {
namespace {

constexpr std::uint32_t kPhiloxM0 = 0xD2511F53u;
constexpr std::uint32_t kPhiloxM1 = 0xCD9E8D57u;
constexpr std::uint32_t kWeyl0 = 0x9E3779B9u;  // golden ratio
constexpr std::uint32_t kWeyl1 = 0xBB67AE85u;  // sqrt(3) - 1

inline std::uint32_t mulhi(std::uint32_t a, std::uint32_t b,
                           std::uint32_t &lo) noexcept {
  const std::uint64_t p = static_cast<std::uint64_t>(a) * b;
  lo = static_cast<std::uint32_t>(p);
  return static_cast<std::uint32_t>(p >> 32);
}

// 64-bit mix (SplitMix64 finalizer) used to derive stream keys.
inline std::uint64_t mix64(std::uint64_t z) noexcept {
  z += 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

std::array<std::uint32_t, 4> philox4x32(std::array<std::uint32_t, 4> ctr,
                                        std::array<std::uint32_t, 2> key) noexcept {
  for (int round = 0; round < 10; ++round) {
    std::uint32_t lo0;
    std::uint32_t lo1;
    const std::uint32_t hi0 = mulhi(kPhiloxM0, ctr[0], lo0);
    const std::uint32_t hi1 = mulhi(kPhiloxM1, ctr[2], lo1);
    ctr = {hi1 ^ ctr[1] ^ key[0], lo1, hi0 ^ ctr[3] ^ key[1], lo0};
    key[0] += kWeyl0;
    key[1] += kWeyl1;
  }
  return ctr;
}

Rng::Rng(std::uint64_t seed, std::uint64_t stream) noexcept
    : seed_(seed), stream_(stream) {}

Rng Rng::split(std::uint64_t lane) const noexcept {
  // Derive a new stream id that depends on (seed, stream, lane) through a
  // strong mix; collisions across lanes of the same parent are impossible
  // for lane < 2^64 because mix64 is a bijection of stream^rot(lane).
  const std::uint64_t child =
      mix64(stream_ ^ (lane * 0xA24BAED4963EE407ull + 0x9FB21C651E98DF25ull));
  return Rng(seed_, child);
}

void Rng::refill() noexcept {
  const std::array<std::uint32_t, 4> ctr = {
      static_cast<std::uint32_t>(counter_),
      static_cast<std::uint32_t>(counter_ >> 32),
      static_cast<std::uint32_t>(stream_),
      static_cast<std::uint32_t>(stream_ >> 32)};
  const std::uint64_t key64 = mix64(seed_);
  buf_ = philox4x32(ctr, {static_cast<std::uint32_t>(key64),
                          static_cast<std::uint32_t>(key64 >> 32)});
  ++counter_;
  buf_pos_ = 0;
}

std::uint32_t Rng::next_u32() noexcept {
  if (buf_pos_ >= 4) refill();
  return buf_[buf_pos_++];
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t hi = next_u32();
  const std::uint64_t lo = next_u32();
  return (hi << 32) | lo;
}

double Rng::uniform() noexcept {
  // 53 random bits into [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) noexcept {
  // Lemire-style rejection for unbiased bounded integers.
  if (n == 0) return 0;
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  if (hi <= lo) return lo;
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

double Rng::normal() noexcept {
  // Box–Muller; consumes exactly two uniforms, returns one deviate. The
  // second deviate is discarded on purpose so that the number of raw draws
  // per call is constant (stream alignment across refactors).
  double u1 = uniform();
  const double u2 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::exponential(double lambda) noexcept {
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log(u) / lambda;
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

std::size_t Rng::categorical(std::span<const double> weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) return weights.size();
  const double u = uniform() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u < acc) return i;
  }
  return weights.size() - 1;
}

double Rng::gamma(double k, double theta) noexcept {
  if (k <= 0.0) return 0.0;
  if (k < 1.0) {
    // Boost: Gamma(k) = Gamma(k+1) * U^(1/k).
    const double g = gamma(k + 1.0, 1.0);
    double u = uniform();
    if (u <= 0.0) u = 0x1.0p-53;
    return theta * g * std::pow(u, 1.0 / k);
  }
  // Marsaglia–Tsang squeeze.
  const double d = k - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = normal();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    const double u = uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return theta * d * v;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return theta * d * v;
    }
  }
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) noexcept {
  if (k > n) k = n;
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(uniform_index(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

RngState Rng::state() const noexcept {
  return RngState{seed_, stream_, counter_,
                  static_cast<std::uint32_t>(buf_pos_)};
}

Rng Rng::from_state(const RngState &s) noexcept {
  Rng rng(s.seed, s.stream);
  if (s.buf_pos < 4) {
    // Mid-block: the buffered words are a pure function of the previous
    // counter value, so recompute them instead of serializing them.
    rng.counter_ = s.counter - 1;
    rng.refill();  // restores buf_ and re-increments counter_ to s.counter
    rng.buf_pos_ = s.buf_pos;
  } else {
    rng.counter_ = s.counter;
  }
  return rng;
}

std::vector<double> Rng::normal_vector(std::size_t n) noexcept {
  std::vector<double> v(n);
  for (auto &x : v) x = normal();
  return v;
}

}  // namespace treu::core
