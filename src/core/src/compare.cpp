#include "treu/core/compare.hpp"

#include <bit>
#include <cmath>
#include <limits>
#include <sstream>

namespace treu::core {

bool Tolerance::accepts(double reference, double measured) const noexcept {
  if (std::isnan(reference) || std::isnan(measured)) {
    return std::isnan(reference) && std::isnan(measured);
  }
  return std::fabs(measured - reference) <=
         abs_tol + rel_tol * std::fabs(reference);
}

std::uint64_t ulp_distance(double a, double b) noexcept {
  if (std::isnan(a) || std::isnan(b)) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  if (a == b) return 0;  // covers +0 == -0
  const auto to_ordered = [](double x) -> std::int64_t {
    const auto bits = std::bit_cast<std::int64_t>(x);
    // Map the sign-magnitude double ordering onto two's complement.
    return bits < 0 ? std::numeric_limits<std::int64_t>::min() - bits : bits;
  };
  const std::int64_t ia = to_ordered(a);
  const std::int64_t ib = to_ordered(b);
  return ia > ib ? static_cast<std::uint64_t>(ia) - static_cast<std::uint64_t>(ib)
                 : static_cast<std::uint64_t>(ib) - static_cast<std::uint64_t>(ia);
}

ComparisonReport compare_metrics(
    const std::map<std::string, double> &reference,
    const std::map<std::string, double> &measured,
    const std::map<std::string, Tolerance> &tolerances, Tolerance fallback) {
  ComparisonReport report;
  for (const auto &[name, ref] : reference) {
    const auto it = measured.find(name);
    if (it == measured.end()) {
      report.mismatches.push_back({name, ref, 0.0, 0.0, false, true});
      continue;
    }
    ++report.compared;
    const auto tol_it = tolerances.find(name);
    const Tolerance &tol = tol_it == tolerances.end() ? fallback : tol_it->second;
    if (!tol.accepts(ref, it->second)) {
      report.mismatches.push_back(
          {name, ref, it->second, std::fabs(it->second - ref), false, false});
    }
  }
  for (const auto &[name, got] : measured) {
    if (!reference.contains(name)) {
      report.mismatches.push_back({name, 0.0, got, 0.0, true, false});
    }
  }
  return report;
}

std::string ComparisonReport::summary() const {
  std::ostringstream os;
  if (reproduced()) {
    os << "reproduced (" << compared << " metrics within tolerance)";
    return os.str();
  }
  os << mismatches.size() << " mismatch(es): ";
  for (std::size_t i = 0; i < mismatches.size(); ++i) {
    const auto &m = mismatches[i];
    if (i) os << ", ";
    if (m.missing_in_measured) {
      os << m.name << " missing in measured";
    } else if (m.missing_in_reference) {
      os << m.name << " unexpected";
    } else {
      os << m.name << " ref=" << m.reference << " got=" << m.measured;
    }
  }
  return os.str();
}

}  // namespace treu::core
