#include "treu/core/env.hpp"

#include <bit>
#include <sstream>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace treu::core {

EnvironmentInfo capture_environment() {
  EnvironmentInfo info;
#if defined(__clang__)
  info.compiler = "clang " + std::to_string(__clang_major__) + "." +
                  std::to_string(__clang_minor__) + "." +
                  std::to_string(__clang_patchlevel__);
#elif defined(__GNUC__)
  info.compiler = "gcc " + std::to_string(__GNUC__) + "." +
                  std::to_string(__GNUC_MINOR__) + "." +
                  std::to_string(__GNUC_PATCHLEVEL__);
#else
  info.compiler = "unknown";
#endif
  info.cpp_standard = __cplusplus;
  info.pointer_bits = sizeof(void *) * 8;
  info.little_endian = std::endian::native == std::endian::little;
#ifdef NDEBUG
  info.build_type = "release";
#else
  info.build_type = "debug";
#endif
#if defined(__unix__) || defined(__APPLE__)
  char host[256] = {};
  if (gethostname(host, sizeof(host) - 1) == 0) info.hostname = host;
#endif
  info.hardware_threads = std::thread::hardware_concurrency();
  return info;
}

Digest EnvironmentInfo::digest() const {
  Sha256 h;
  h.update("env-v1\n");
  h.update(compiler);
  h.update_value(cpp_standard);
  h.update_value(pointer_bits);
  h.update_value(little_endian);
  h.update(build_type);
  return h.finish();
}

std::string EnvironmentInfo::describe() const {
  std::ostringstream os;
  os << "compiler: " << compiler << '\n'
     << "c++ standard: " << cpp_standard << '\n'
     << "pointer bits: " << pointer_bits << '\n'
     << "endianness: " << (little_endian ? "little" : "big") << '\n'
     << "build type: " << build_type << '\n'
     << "hostname: " << hostname << '\n'
     << "hardware threads: " << hardware_threads << '\n';
  return os.str();
}

}  // namespace treu::core
