#include "treu/core/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <stdexcept>

namespace treu::core {

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) noexcept {
  return std::sqrt(variance(xs));
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double mode(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  std::map<double, std::size_t> counts;
  for (double x : xs) ++counts[x];
  double best = xs[0];
  std::size_t best_count = 0;
  for (const auto &[value, count] : counts) {  // map order => smallest wins ties
    if (count > best_count) {
      best = value;
      best_count = count;
    }
  }
  return best;
}

double min_of(std::span<const double> xs) noexcept {
  double m = std::numeric_limits<double>::infinity();
  for (double x : xs) m = std::min(m, x);
  return m;
}

double max_of(std::span<const double> xs) noexcept {
  double m = -std::numeric_limits<double>::infinity();
  for (double x : xs) m = std::max(m, x);
  return m;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size()) {
    throw std::invalid_argument("pearson: size mismatch");
  }
  if (xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double trimmed_mean(std::span<const double> xs, double trim) {
  if (xs.empty()) return 0.0;
  if (trim < 0.0 || trim >= 0.5) {
    throw std::invalid_argument("trimmed_mean: trim must be in [0, 0.5)");
  }
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  const std::size_t k = static_cast<std::size_t>(trim * static_cast<double>(v.size()));
  double s = 0.0;
  std::size_t n = 0;
  for (std::size_t i = k; i + k < v.size(); ++i) {
    s += v[i];
    ++n;
  }
  return n == 0 ? median(xs) : s / static_cast<double>(n);
}

BootstrapCi bootstrap_mean_ci(std::span<const double> xs, Rng &rng,
                              double level, std::size_t resamples) {
  BootstrapCi ci;
  ci.point = mean(xs);
  if (xs.size() < 2 || resamples == 0) {
    ci.lo = ci.hi = ci.point;
    return ci;
  }
  std::vector<double> means(resamples);
  for (std::size_t r = 0; r < resamples; ++r) {
    double s = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      s += xs[static_cast<std::size_t>(rng.uniform_index(xs.size()))];
    }
    means[r] = s / static_cast<double>(xs.size());
  }
  const double alpha = (1.0 - level) / 2.0;
  ci.lo = quantile(means, alpha);
  ci.hi = quantile(means, 1.0 - alpha);
  return ci;
}

double cvar_lower(std::span<const double> xs, double alpha) {
  if (xs.empty()) return 0.0;
  alpha = std::clamp(alpha, 1e-9, 1.0);
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  const std::size_t k = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(alpha * static_cast<double>(v.size()))));
  double s = 0.0;
  for (std::size_t i = 0; i < k; ++i) s += v[i];
  return s / static_cast<double>(k);
}

}  // namespace treu::core
