#include "treu/core/provenance.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>

namespace treu::core {

void ProvenanceGraph::add_artifact(const std::string &name,
                                   const Digest &digest,
                                   const std::vector<std::string> &parents) {
  if (nodes_.contains(name)) {
    throw std::invalid_argument("ProvenanceGraph: duplicate artifact " + name);
  }
  for (const auto &p : parents) {
    if (!nodes_.contains(p)) {
      throw std::invalid_argument("ProvenanceGraph: unknown parent " + p);
    }
  }
  nodes_.emplace(name, Node{digest, parents});
  insertion_order_.push_back(name);
}

bool ProvenanceGraph::contains(const std::string &name) const {
  return nodes_.contains(name);
}

const Digest &ProvenanceGraph::digest_of(const std::string &name) const {
  return nodes_.at(name).digest;
}

const std::vector<std::string> &ProvenanceGraph::parents_of(
    const std::string &name) const {
  return nodes_.at(name).parents;
}

std::vector<std::string> ProvenanceGraph::lineage(
    const std::string &name) const {
  if (!nodes_.contains(name)) {
    throw std::invalid_argument("ProvenanceGraph: unknown artifact " + name);
  }
  std::vector<std::string> order;
  std::set<std::string> seen;
  // Post-order DFS; parents vectors are stored in registration order, so the
  // output is deterministic.
  const std::function<void(const std::string &)> visit =
      [&](const std::string &n) {
        if (seen.contains(n)) return;
        seen.insert(n);
        for (const auto &p : nodes_.at(n).parents) visit(p);
        order.push_back(n);
      };
  visit(name);
  return order;
}

std::vector<std::string> ProvenanceGraph::sinks() const {
  std::set<std::string> has_child;
  for (const auto &[name, node] : nodes_) {
    (void)name;
    for (const auto &p : node.parents) has_child.insert(p);
  }
  std::vector<std::string> out;
  for (const auto &name : insertion_order_) {
    if (!has_child.contains(name)) out.push_back(name);
  }
  return out;
}

std::vector<std::string> ProvenanceGraph::verify_lineage(
    const std::string &name,
    const std::function<std::optional<Digest>(const std::string &)> &oracle)
    const {
  std::vector<std::string> broken;
  for (const auto &n : lineage(name)) {
    const auto current = oracle(n);
    if (!current || !(*current == nodes_.at(n).digest)) broken.push_back(n);
  }
  return broken;
}

std::string ProvenanceGraph::to_dot() const {
  std::ostringstream os;
  os << "digraph provenance {\n";
  for (const auto &name : insertion_order_) {
    os << "  \"" << name << "\" [label=\"" << name << "\\n"
       << nodes_.at(name).digest.hex().substr(0, 12) << "\"];\n";
  }
  for (const auto &name : insertion_order_) {
    for (const auto &p : nodes_.at(name).parents) {
      os << "  \"" << p << "\" -> \"" << name << "\";\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace treu::core
