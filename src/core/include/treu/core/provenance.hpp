#pragma once

// Provenance graph: which artifact was derived from which.
//
// Nodes are named artifacts with content digests; edges point from an
// artifact to the inputs it was derived from (dataset -> preprocessed set ->
// trained weights -> result table). The graph answers the two questions an
// artifact reviewer asks: "what went into this result?" (lineage) and "is
// everything along that path still what it claims to be?" (verify against a
// digest oracle).

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "treu/core/sha256.hpp"

namespace treu::core {

class ProvenanceGraph {
 public:
  /// Register an artifact with its digest and (already-registered) parents.
  /// Throws std::invalid_argument on duplicate names or unknown parents —
  /// insertion order therefore guarantees acyclicity.
  void add_artifact(const std::string &name, const Digest &digest,
                    const std::vector<std::string> &parents = {});

  [[nodiscard]] bool contains(const std::string &name) const;
  [[nodiscard]] const Digest &digest_of(const std::string &name) const;
  [[nodiscard]] const std::vector<std::string> &parents_of(
      const std::string &name) const;
  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }

  /// All transitive ancestors of `name` (dependencies first, deterministic
  /// order, `name` itself last).
  [[nodiscard]] std::vector<std::string> lineage(const std::string &name) const;

  /// Artifacts nothing depends on (the "results").
  [[nodiscard]] std::vector<std::string> sinks() const;

  /// Re-check every artifact in `name`'s lineage against the oracle
  /// (current digest by name). Returns the names whose digests changed or
  /// that the oracle cannot produce.
  [[nodiscard]] std::vector<std::string> verify_lineage(
      const std::string &name,
      const std::function<std::optional<Digest>(const std::string &)> &oracle)
      const;

  /// Graphviz dot rendering (stable node order).
  [[nodiscard]] std::string to_dot() const;

 private:
  struct Node {
    Digest digest;
    std::vector<std::string> parents;
  };
  std::map<std::string, Node> nodes_;
  std::vector<std::string> insertion_order_;
};

}  // namespace treu::core
