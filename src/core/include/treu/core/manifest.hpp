#pragma once

// Experiment manifests, run records, and the hash-chained run journal.
//
// The manifest is the unit of "what was run": a named experiment, its
// parameters, and the master seed. Its digest is stable under map reordering
// because parameters serialize in canonical (sorted-key) order. A run record
// binds a manifest digest to measured metrics and artifact digests; the
// journal chains record digests so that any later edit of an earlier record
// is detectable (a tiny, file-free ledger).

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "treu/core/sha256.hpp"

namespace treu::core {

/// Declarative description of one experiment configuration.
struct Manifest {
  std::string name;
  std::string description;
  std::uint64_t seed = 0;
  std::map<std::string, std::string> params;  // canonical order by key
  std::string code_version;                   // e.g. git describe / lib version

  Manifest &set(std::string key, std::string value);
  Manifest &set(std::string key, double value);
  Manifest &set(std::string key, std::int64_t value);

  /// Look up a parameter; empty optional when missing.
  [[nodiscard]] std::optional<std::string> get(std::string_view key) const;
  [[nodiscard]] double get_double(std::string_view key, double fallback) const;
  [[nodiscard]] std::int64_t get_int(std::string_view key,
                                     std::int64_t fallback) const;

  /// Canonical, self-delimiting serialization (stable across platforms).
  [[nodiscard]] std::string canonical_string() const;

  /// Parse a canonical string back into a manifest (round-trips with
  /// canonical_string, including the digest). Returns nullopt on malformed
  /// input — a manifest that travels with an artifact must parse exactly or
  /// not at all.
  [[nodiscard]] static std::optional<Manifest> from_canonical_string(
      std::string_view text);

  /// SHA-256 of the canonical string: the experiment's identity.
  [[nodiscard]] Digest digest() const;
};

/// Result of one execution of a manifest.
struct RunRecord {
  Digest manifest_digest;
  std::map<std::string, double> metrics;       // canonical order by key
  std::map<std::string, Digest> artifacts;     // named artifact fingerprints
  double duration_seconds = 0.0;
  std::string notes;

  [[nodiscard]] std::string canonical_string() const;
  [[nodiscard]] Digest digest() const;
};

/// Append-only, hash-chained sequence of run records.
///
/// entry_hash[i] = SHA256(entry_hash[i-1] || record_digest[i]); the genesis
/// hash is SHA256("treu-journal-v1"). `verify()` recomputes the chain and
/// reports the first index at which it breaks (or nullopt when intact).
class Journal {
 public:
  /// Append a record; returns the new chain head hash.
  Digest append(RunRecord record);

  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  [[nodiscard]] const RunRecord &record(std::size_t i) const {
    return records_.at(i);
  }
  [[nodiscard]] const Digest &chain_hash(std::size_t i) const {
    return chain_.at(i);
  }
  [[nodiscard]] Digest head() const;

  /// Recompute the chain; returns the first broken index, or nullopt.
  [[nodiscard]] std::optional<std::size_t> verify() const;

  /// Find all runs of a given manifest.
  [[nodiscard]] std::vector<std::size_t> runs_of(const Digest &manifest) const;

  /// Deliberately corrupt a stored record (testing hook for tamper
  /// detection; the chain hashes are left as recorded).
  void tamper_with_record(std::size_t i, const std::string &notes);

  [[nodiscard]] static Digest genesis();

 private:
  std::vector<RunRecord> records_;
  std::vector<Digest> chain_;
};

}  // namespace treu::core
