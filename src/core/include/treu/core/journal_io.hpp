#pragma once

// Journal serialization: export a run journal to a line-oriented text
// format and import it back with full chain verification.
//
// This is the artifact-exchange half of the reproducibility story: a
// journal exported by the author travels with the artifact; the reviewer
// imports it, the chain is re-verified during parsing, and any edited
// record (or truncated tail) is rejected with a precise error. The format
// is deliberately boring — versioned header, one record per block,
// netstring-escaped fields — so it can be diffed and archived.

#include <optional>
#include <string>
#include <string_view>

#include "treu/core/manifest.hpp"

namespace treu::core {

/// Serialize the journal (records + chain hashes) to text.
[[nodiscard]] std::string export_journal(const Journal &journal);

/// Result of an import attempt.
struct ImportResult {
  Journal journal;
  bool ok = false;
  std::string error;          // empty when ok
  std::size_t records = 0;    // parsed before success/failure
};

/// Parse an exported journal. Verifies the hash chain as it parses:
/// tampered records, reordered blocks, or a forged head all fail with a
/// descriptive error. Never throws; malformed input is reported in the
/// result.
[[nodiscard]] ImportResult import_journal(std::string_view text);

}  // namespace treu::core
