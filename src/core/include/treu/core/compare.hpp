#pragma once

// Tolerance-aware comparison of experiment results.
//
// "Did the rerun reproduce the published numbers?" is rarely a bitwise
// question — a reproduction is judged against declared tolerances. This
// header provides the comparison vocabulary: per-metric absolute/relative
// tolerances, ULP distance for bit-level forensics, and a structured report
// listing exactly which metrics diverged and by how much.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace treu::core {

/// Acceptance band for one metric. A value b matches reference a when
/// |b - a| <= abs_tol + rel_tol * |a|.
struct Tolerance {
  double abs_tol = 0.0;
  double rel_tol = 0.0;

  [[nodiscard]] bool accepts(double reference, double measured) const noexcept;
};

/// Number of representable doubles strictly between a and b (0 when equal).
/// Returns UINT64_MAX for NaNs or differing signs across zero at extreme
/// distance.
[[nodiscard]] std::uint64_t ulp_distance(double a, double b) noexcept;

/// One divergent (or missing) metric in a comparison.
struct MetricMismatch {
  std::string name;
  double reference = 0.0;
  double measured = 0.0;
  double abs_error = 0.0;
  bool missing_in_reference = false;
  bool missing_in_measured = false;
};

/// Result of comparing two metric maps.
struct ComparisonReport {
  std::vector<MetricMismatch> mismatches;
  std::size_t compared = 0;

  [[nodiscard]] bool reproduced() const noexcept { return mismatches.empty(); }
  [[nodiscard]] std::string summary() const;
};

/// Compare `measured` against `reference` under per-metric tolerances.
/// Metrics absent from `tolerances` use `fallback`. Keys present on only one
/// side are reported as mismatches.
[[nodiscard]] ComparisonReport compare_metrics(
    const std::map<std::string, double> &reference,
    const std::map<std::string, double> &measured,
    const std::map<std::string, Tolerance> &tolerances = {},
    Tolerance fallback = {1e-12, 1e-9});

}  // namespace treu::core
