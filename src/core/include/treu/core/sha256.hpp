#pragma once

// SHA-256 (FIPS 180-4), implemented from scratch.
//
// The reproducibility kernel uses SHA-256 to fingerprint artifacts: input
// datasets, model weights, result tables, and the experiment manifests
// themselves. A digest mismatch is the toolkit's primitive notion of "this
// is not the computation you ran before".

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace treu::core {

/// 32-byte SHA-256 digest.
struct Digest {
  std::array<std::uint8_t, 32> bytes{};

  /// Lower-case hex representation (64 chars).
  [[nodiscard]] std::string hex() const;

  /// Parse from hex; throws std::invalid_argument on malformed input.
  [[nodiscard]] static Digest from_hex(std::string_view hex);

  friend bool operator==(const Digest &, const Digest &) = default;
};

/// Incremental SHA-256 hasher.
class Sha256 {
 public:
  Sha256() noexcept;

  /// Absorb bytes. May be called any number of times.
  Sha256 &update(std::span<const std::uint8_t> data) noexcept;
  Sha256 &update(std::string_view text) noexcept;

  /// Absorb the raw little-endian bytes of a trivially copyable value.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  Sha256 &update_value(const T &v) noexcept {
    return update(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t *>(&v), sizeof(T)));
  }

  /// Finalize and return the digest. The hasher must not be reused after.
  [[nodiscard]] Digest finish() noexcept;

 private:
  void process_block(const std::uint8_t *block) noexcept;

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffer_len_ = 0;
  std::uint64_t total_bits_ = 0;
};

/// One-shot digest of a byte span.
[[nodiscard]] Digest sha256(std::span<const std::uint8_t> data) noexcept;

/// One-shot digest of a string.
[[nodiscard]] Digest sha256(std::string_view text) noexcept;

/// Digest of a vector<double> viewed as raw bytes (bit-exact fingerprint of
/// numeric results).
[[nodiscard]] Digest sha256_doubles(std::span<const double> xs) noexcept;

}  // namespace treu::core
