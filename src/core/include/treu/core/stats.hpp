#pragma once

// Descriptive statistics shared across the experiment modules (survey
// tables, RL reliability, robust-statistics baselines). All functions are
// deterministic; anything randomized (bootstrap) takes an explicit Rng.

#include <cstddef>
#include <span>
#include <vector>

#include "treu/core/rng.hpp"

namespace treu::core {

[[nodiscard]] double mean(std::span<const double> xs) noexcept;

/// Sample variance (n-1 denominator); 0 for fewer than 2 elements.
[[nodiscard]] double variance(std::span<const double> xs) noexcept;

[[nodiscard]] double stddev(std::span<const double> xs) noexcept;

/// Median (average of middle two for even n). Copies and sorts.
[[nodiscard]] double median(std::span<const double> xs);

/// Linear-interpolated quantile, q in [0, 1]. Copies and sorts.
[[nodiscard]] double quantile(std::span<const double> xs, double q);

/// Smallest most-frequent value (for Likert-style integer-valued data).
[[nodiscard]] double mode(std::span<const double> xs);

[[nodiscard]] double min_of(std::span<const double> xs) noexcept;
[[nodiscard]] double max_of(std::span<const double> xs) noexcept;

/// Pearson correlation; 0 when either side is constant.
[[nodiscard]] double pearson(std::span<const double> xs,
                             std::span<const double> ys);

/// Mean of the central (1 - 2*trim) fraction, trim in [0, 0.5).
[[nodiscard]] double trimmed_mean(std::span<const double> xs, double trim);

/// Percentile bootstrap confidence interval for the mean.
struct BootstrapCi {
  double lo = 0.0;
  double hi = 0.0;
  double point = 0.0;
};
[[nodiscard]] BootstrapCi bootstrap_mean_ci(std::span<const double> xs,
                                            Rng &rng, double level = 0.95,
                                            std::size_t resamples = 1000);

/// Conditional value-at-risk of the *lower* tail: mean of the worst
/// `alpha` fraction. Used as the RL reliability metric (§2.8).
[[nodiscard]] double cvar_lower(std::span<const double> xs, double alpha);

}  // namespace treu::core
