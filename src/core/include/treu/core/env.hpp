#pragma once

// Environment capture: the "what machine / what build" half of a
// reproducible record. Fields that are stable across reruns on the same
// build (compiler, standard, word size, endianness) go into the digest;
// volatile fields (hostname, core count) are recorded but excluded, so two
// machines with the same toolchain produce the same environment digest.

#include <cstddef>
#include <string>

#include "treu/core/sha256.hpp"

namespace treu::core {

struct EnvironmentInfo {
  std::string compiler;        // e.g. "gcc 12.2.0"
  long cpp_standard = 0;       // __cplusplus
  std::size_t pointer_bits = 0;
  bool little_endian = true;
  std::string build_type;      // "release" / "debug" / "unknown"
  // Volatile (not part of the digest):
  std::string hostname;
  unsigned hardware_threads = 0;

  /// Digest over the stable fields only.
  [[nodiscard]] Digest digest() const;

  /// Human-readable one-per-line description.
  [[nodiscard]] std::string describe() const;
};

/// Capture the current process environment.
[[nodiscard]] EnvironmentInfo capture_environment();

}  // namespace treu::core
