#pragma once

// Minimal wall-clock timer for experiment drivers. Benchmarks use
// google-benchmark; this is for coarse per-phase durations recorded into
// RunRecords.

#include <chrono>

namespace treu::core {

class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds since construction or last reset.
  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace treu::core
