#pragma once

// Counter-based deterministic random number generation (Philox-4x32-10).
//
// Reproducible experiments need more than a fixed seed: they need random
// streams that are (a) identical across platforms and compilers, (b) cheap
// to split into independent sub-streams (per particle, per shard, per
// worker) without coordination, and (c) insensitive to the order in which
// parallel consumers draw. Counter-based generators (Salmon et al., SC'11)
// provide exactly this: the i-th output is a pure function of (key, i), so
// any consumer can jump anywhere in the stream.
//
// `Rng` wraps Philox-4x32-10 with a convenient sequential interface plus
// `split(lane)` for derived independent streams. All distributions here are
// implemented from scratch (never std::<distribution>, whose outputs differ
// across standard libraries).

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace treu::core {

/// Raw Philox-4x32-10 block function: 4 x 32-bit counter, 2 x 32-bit key ->
/// 4 x 32-bit output. Stateless and pure.
[[nodiscard]] std::array<std::uint32_t, 4> philox4x32(
    std::array<std::uint32_t, 4> ctr, std::array<std::uint32_t, 2> key) noexcept;

/// Complete serializable state of one Rng stream. Because the generator is
/// counter-based, four integers pin the stream exactly: the identity
/// (seed, stream), the next block index, and the position inside the
/// current block. `Rng::from_state` reconstructs a generator whose future
/// output is bitwise identical to the captured one — the primitive that
/// lets a checkpointed training run resume mid-stream (treu::ckpt).
struct RngState {
  std::uint64_t seed = 0;
  std::uint64_t stream = 0;
  std::uint64_t counter = 0;  // next Philox block index
  std::uint32_t buf_pos = 4;  // consumed words in the current block (4 = none buffered)

  friend bool operator==(const RngState &, const RngState &) = default;
};

/// Deterministic, splittable random stream.
class Rng {
 public:
  /// Stream identified by (seed, stream). Different stream ids give
  /// statistically independent sequences for the same seed.
  explicit Rng(std::uint64_t seed, std::uint64_t stream = 0) noexcept;

  /// Derived independent stream: deterministic function of this stream's
  /// identity and `lane`. Does not advance this stream.
  [[nodiscard]] Rng split(std::uint64_t lane) const noexcept;

  /// Next raw 64 random bits.
  std::uint64_t next_u64() noexcept;

  /// Next 32 random bits.
  std::uint32_t next_u32() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n). n must be > 0. Unbiased (rejection).
  std::uint64_t uniform_index(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Standard normal via Box–Muller (deterministic, no cached spare —
  /// every call consumes exactly two uniforms so streams stay alignable).
  double normal() noexcept;

  /// Normal with mean/stddev.
  double normal(double mean, double stddev) noexcept;

  /// Exponential with rate lambda.
  double exponential(double lambda) noexcept;

  /// Bernoulli draw.
  bool bernoulli(double p) noexcept;

  /// Sample an index from unnormalised non-negative weights (linear scan).
  /// Returns weights.size() when all weights are zero.
  std::size_t categorical(std::span<const double> weights) noexcept;

  /// Gamma(shape k >= 0) via Marsaglia–Tsang (with boost for k < 1).
  double gamma(double k, double theta = 1.0) noexcept;

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T> &v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_index(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Draw k distinct indices from [0, n) (partial Fisher–Yates).
  [[nodiscard]] std::vector<std::size_t> sample_without_replacement(
      std::size_t n, std::size_t k) noexcept;

  /// Vector of n iid standard normals.
  [[nodiscard]] std::vector<double> normal_vector(std::size_t n) noexcept;

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] std::uint64_t stream() const noexcept { return stream_; }

  /// Snapshot the full generator state (cheap: four integers).
  [[nodiscard]] RngState state() const noexcept;

  /// Rebuild a generator from a snapshot. The returned stream's output is
  /// bitwise identical to what the snapshotted generator would have
  /// produced next, on every platform.
  [[nodiscard]] static Rng from_state(const RngState &s) noexcept;

 private:
  void refill() noexcept;

  std::uint64_t seed_;
  std::uint64_t stream_;
  std::uint64_t counter_ = 0;       // block index
  std::array<std::uint32_t, 4> buf_{};
  std::size_t buf_pos_ = 4;          // force refill on first use
};

}  // namespace treu::core
