#pragma once

// Synthetic field-video generator (§2.6).
//
// The original study trained YOLOv8 on video frames of lettuce and weeds.
// Consecutive video frames have heavily overlapping content (the camera and
// plants barely move between frames); the deaugmented dataset resampled the
// video at a lower frame frequency so every frame shows distinct content —
// covering 24x the video length with the same 24-frame budget. The
// generator reproduces exactly that structure: a long scene of drifting
// plants rendered to small grayscale frames, from which `consecutive_frames`
// (the original set) or `strided_frames` (the deaugmented set) are drawn.

#include <cstddef>
#include <vector>

#include "treu/core/rng.hpp"
#include "treu/tensor/matrix.hpp"

namespace treu::vision {

inline constexpr std::size_t kLettuce = 0;
inline constexpr std::size_t kWeed = 1;
inline constexpr std::size_t kNumClasses = 2;

struct Box {
  double x = 0.0;  // center
  double y = 0.0;
  double size = 0.0;  // square half-extent
  std::size_t cls = kLettuce;
};

[[nodiscard]] double iou(const Box &a, const Box &b) noexcept;

struct Frame {
  tensor::Matrix image;     // grayscale in [0, 1]
  std::vector<Box> truth;   // ground-truth boxes
  std::size_t time = 0;     // frame index in the source video
};

struct SceneConfig {
  std::size_t image_size = 48;
  double min_size = 3.0;
  double max_size = 5.5;
  double camera_speed = 0.4;   // world pixels the camera advances per frame
  double plant_density = 0.7;  // probability a world cell contains a plant
  double cell_width = 11.0;    // world pixels per plant cell
  double noise = 0.05;         // pixel noise stddev
};

/// A camera panning along an endless crop row. Plants are fixed in *world*
/// coordinates (their identity, size, and class are deterministic hashes of
/// their world cell), and the camera advances `camera_speed` pixels per
/// frame. Consecutive frames therefore show the same plants barely shifted
/// (the redundancy of video), while frames taken far apart show entirely
/// new plants — the content-coverage axis the §2.6 deaugmentation result
/// turns on.
class Scene {
 public:
  Scene(const SceneConfig &config, core::Rng &rng);

  /// Render the frame at time t; any t renders independently.
  [[nodiscard]] Frame render(std::size_t t, core::Rng &rng) const;

  [[nodiscard]] const SceneConfig &config() const noexcept { return config_; }

 private:
  struct Plant {
    double world_x, y;
    double size;
    std::size_t cls;
    bool present;
  };
  [[nodiscard]] Plant plant_in_cell(long cell) const;

  SceneConfig config_;
  std::uint64_t world_seed_ = 0;
};

/// `n` consecutive frames starting at `start` — the paper's original set.
[[nodiscard]] std::vector<Frame> consecutive_frames(const Scene &scene,
                                                    std::size_t start,
                                                    std::size_t n,
                                                    core::Rng &rng);

/// `n` frames sampled every `stride` frames — the deaugmented set (covers
/// stride x the video length of the consecutive set).
[[nodiscard]] std::vector<Frame> strided_frames(const Scene &scene,
                                                std::size_t start,
                                                std::size_t n,
                                                std::size_t stride,
                                                core::Rng &rng);

/// Mean per-pixel absolute difference between consecutive frames of a set
/// (the redundancy diagnostic: near zero for the original set).
[[nodiscard]] double frame_overlap(const std::vector<Frame> &frames);

}  // namespace treu::vision
