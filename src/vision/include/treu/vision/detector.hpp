#pragma once

// Sliding-window detector and evaluation (§2.6).
//
// A deliberately simple detector (the study's point is about the *dataset*,
// not the architecture): 12x12 windows at stride 4 are classified
// {background, lettuce, weed} by an MLP over 2x2-mean-pooled pixels;
// detections above a confidence threshold go through non-maximum
// suppression and are scored against ground truth with average precision
// at an IoU threshold.

#include <cstddef>
#include <memory>
#include <vector>

#include "treu/core/rng.hpp"
#include "treu/nn/mlp.hpp"
#include "treu/nn/predictor.hpp"
#include "treu/vision/scene.hpp"

namespace treu::vision {

struct Detection {
  Box box;
  double score = 0.0;
};

struct DetectorConfig {
  std::size_t window = 12;
  std::size_t stride = 4;
  double train_iou = 0.3;       // window labeled positive above this IoU
  double nms_iou = 0.3;
  double score_threshold = 0.6;
  double match_iou = 0.3;       // detection-to-truth matching for AP
  double background_keep = 0.25;  // subsample background windows
  std::vector<std::size_t> hidden = {32};
  nn::TrainConfig train;
};

/// Window feature: 2x2 mean-pooled pixels of the window, flattened.
[[nodiscard]] std::vector<double> window_features(const tensor::Matrix &image,
                                                  std::size_t x0, std::size_t y0,
                                                  std::size_t window);

/// Greedy non-maximum suppression (per class).
[[nodiscard]] std::vector<Detection> nms(std::vector<Detection> detections,
                                         double iou_threshold);

/// Per-window class probabilities (softmax over {classes..., background}).
struct WindowScore {
  std::vector<double> probs;
};

/// The detector's scoring head behind the unified Predictor API: pooled
/// window features in, softmax class probabilities out. `detect` batches
/// every window of a frame through one `predict_batch` call, and the
/// serving layer can score windows from many frames in one batch. Softmax
/// and the MLP layers are row-independent, so batched outputs are
/// bitwise-identical to per-window calls.
class WindowScorer final
    : public nn::Predictor<std::vector<double>, WindowScore> {
 public:
  WindowScorer(std::size_t feature_dim, const std::vector<std::size_t> &hidden,
               core::Rng &rng);

  [[nodiscard]] std::vector<WindowScore> predict_batch(
      std::span<const std::vector<double>> inputs) override;
  [[nodiscard]] std::string weight_hash() override;

  [[nodiscard]] nn::MlpClassifier &classifier() noexcept { return mlp_; }

 private:
  nn::MlpClassifier mlp_;
};

class SlidingWindowDetector {
 public:
  SlidingWindowDetector(const DetectorConfig &config, core::Rng &rng);

  /// Build window-level training data from frames and train the classifier.
  void fit(const std::vector<Frame> &frames, core::Rng &rng);

  /// Detect objects in one frame (all windows scored as one batch).
  [[nodiscard]] std::vector<Detection> detect(const Frame &frame);

  [[nodiscard]] const DetectorConfig &config() const noexcept { return config_; }

  /// The batched scoring head (for serving / direct batched use).
  [[nodiscard]] WindowScorer &scorer() noexcept { return *scorer_; }

 private:
  DetectorConfig config_;
  std::unique_ptr<WindowScorer> scorer_;
  std::size_t feature_dim_ = 0;
};

/// All-point-interpolated average precision for one class.
[[nodiscard]] double average_precision(
    const std::vector<std::vector<Detection>> &detections_per_frame,
    const std::vector<Frame> &frames, std::size_t cls, double match_iou);

/// Mean AP over classes.
[[nodiscard]] double mean_average_precision(
    const std::vector<std::vector<Detection>> &detections_per_frame,
    const std::vector<Frame> &frames, double match_iou);

/// §2.6 experiment: same scene, same 24-frame budget; original
/// (consecutive) vs deaugmented (strided) training sets, validated on a
/// disjoint segment of the video.
struct DeaugExperimentConfig {
  SceneConfig scene;
  DetectorConfig detector;
  std::size_t frames_budget = 24;
  std::size_t stride = 24;         // deaugmentation factor (paper: 24x)
  std::size_t validation_frames = 12;
};

struct DeaugExperimentResult {
  double original_map = 0.0;
  double deaug_map = 0.0;
  double original_overlap = 0.0;   // redundancy diagnostic
  double deaug_overlap = 0.0;
};

[[nodiscard]] DeaugExperimentResult run_deaug_experiment(
    const DeaugExperimentConfig &config, core::Rng &rng);

}  // namespace treu::vision
