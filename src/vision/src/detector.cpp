#include "treu/vision/detector.hpp"

#include <algorithm>
#include <cmath>

namespace treu::vision {

std::vector<double> window_features(const tensor::Matrix &image,
                                    std::size_t x0, std::size_t y0,
                                    std::size_t window) {
  const std::size_t pooled = window / 2;
  std::vector<double> f(pooled * pooled, 0.0);
  for (std::size_t py = 0; py < pooled; ++py) {
    for (std::size_t px = 0; px < pooled; ++px) {
      double s = 0.0;
      for (std::size_t dy = 0; dy < 2; ++dy) {
        for (std::size_t dx = 0; dx < 2; ++dx) {
          s += image(y0 + 2 * py + dy, x0 + 2 * px + dx);
        }
      }
      f[py * pooled + px] = s / 4.0;
    }
  }
  return f;
}

std::vector<Detection> nms(std::vector<Detection> detections,
                           double iou_threshold) {
  std::stable_sort(detections.begin(), detections.end(),
                   [](const Detection &a, const Detection &b) {
                     return a.score > b.score;
                   });
  std::vector<Detection> kept;
  for (const Detection &d : detections) {
    bool suppressed = false;
    for (const Detection &k : kept) {
      if (k.box.cls == d.box.cls && iou(k.box, d.box) > iou_threshold) {
        suppressed = true;
        break;
      }
    }
    if (!suppressed) kept.push_back(d);
  }
  return kept;
}

WindowScorer::WindowScorer(std::size_t feature_dim,
                           const std::vector<std::size_t> &hidden,
                           core::Rng &rng)
    : mlp_(feature_dim, hidden, kNumClasses + 1, rng) {}

std::vector<WindowScore> WindowScorer::predict_batch(
    std::span<const std::vector<double>> inputs) {
  std::vector<WindowScore> out;
  if (inputs.empty()) return out;
  const std::size_t dim = inputs.front().size();
  tensor::Matrix x(inputs.size(), dim);
  for (std::size_t r = 0; r < inputs.size(); ++r) {
    auto row = x.row(r);
    for (std::size_t c = 0; c < dim; ++c) row[c] = inputs[r][c];
  }
  const tensor::Matrix probs = nn::softmax(mlp_.logits(x));
  out.reserve(inputs.size());
  for (std::size_t r = 0; r < probs.rows(); ++r) {
    const auto row = probs.row(r);
    out.push_back({{row.begin(), row.end()}});
  }
  return out;
}

std::string WindowScorer::weight_hash() { return mlp_.weight_hash(); }

SlidingWindowDetector::SlidingWindowDetector(const DetectorConfig &config,
                                             core::Rng &rng)
    : config_(config) {
  const std::size_t pooled = config_.window / 2;
  feature_dim_ = pooled * pooled;
  core::Rng init = rng.split(0xDE7);
  scorer_ = std::make_unique<WindowScorer>(feature_dim_, config_.hidden, init);
}

void SlidingWindowDetector::fit(const std::vector<Frame> &frames,
                                core::Rng &rng) {
  std::vector<std::vector<double>> feats;
  std::vector<std::size_t> labels;
  core::Rng keep_rng = rng.split(0xBA1);
  for (const Frame &frame : frames) {
    const std::size_t s = frame.image.rows();
    for (std::size_t y0 = 0; y0 + config_.window <= s; y0 += config_.stride) {
      for (std::size_t x0 = 0; x0 + config_.window <= s;
           x0 += config_.stride) {
        const Box wbox{static_cast<double>(x0) + config_.window / 2.0,
                       static_cast<double>(y0) + config_.window / 2.0,
                       config_.window / 2.0, 0};
        // Label = class of the best-overlapping truth box, else background.
        std::size_t label = kNumClasses;  // background index
        double best = config_.train_iou;
        for (const Box &t : frame.truth) {
          Box cmp = wbox;
          cmp.cls = t.cls;
          const double overlap = iou(cmp, t);
          if (overlap > best) {
            best = overlap;
            label = t.cls;
          }
        }
        if (label == kNumClasses &&
            !keep_rng.bernoulli(config_.background_keep)) {
          continue;  // subsample the dominant background class
        }
        feats.push_back(window_features(frame.image, x0, y0, config_.window));
        labels.push_back(label);
      }
    }
  }
  nn::Dataset data;
  data.x = tensor::Matrix(feats.size(), feature_dim_);
  data.y = labels;
  for (std::size_t i = 0; i < feats.size(); ++i) {
    auto row = data.x.row(i);
    for (std::size_t j = 0; j < feature_dim_; ++j) row[j] = feats[i][j];
  }
  core::Rng train_rng = rng.split(0x7E1);
  scorer_->classifier().train(data, config_.train, train_rng);
}

std::vector<Detection> SlidingWindowDetector::detect(const Frame &frame) {
  // Gather every window's features, then score the whole frame as one
  // batch through the Predictor API.
  std::vector<std::vector<double>> feats;
  std::vector<std::pair<std::size_t, std::size_t>> origins;
  const std::size_t s = frame.image.rows();
  for (std::size_t y0 = 0; y0 + config_.window <= s; y0 += config_.stride) {
    for (std::size_t x0 = 0; x0 + config_.window <= s; x0 += config_.stride) {
      feats.push_back(window_features(frame.image, x0, y0, config_.window));
      origins.emplace_back(x0, y0);
    }
  }
  const std::vector<WindowScore> scores = scorer_->predict_batch(feats);
  std::vector<Detection> raw;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    const auto [x0, y0] = origins[i];
    for (std::size_t cls = 0; cls < kNumClasses; ++cls) {
      if (scores[i].probs[cls] >= config_.score_threshold) {
        Detection d;
        d.box = {static_cast<double>(x0) + config_.window / 2.0,
                 static_cast<double>(y0) + config_.window / 2.0,
                 config_.window / 2.0, cls};
        d.score = scores[i].probs[cls];
        raw.push_back(d);
      }
    }
  }
  return nms(std::move(raw), config_.nms_iou);
}

double average_precision(
    const std::vector<std::vector<Detection>> &detections_per_frame,
    const std::vector<Frame> &frames, std::size_t cls, double match_iou) {
  // Gather detections of this class with frame ids, sort by score.
  struct Entry {
    double score;
    std::size_t frame;
    Box box;
  };
  std::vector<Entry> entries;
  std::size_t total_truth = 0;
  for (std::size_t f = 0; f < frames.size(); ++f) {
    for (const Box &t : frames[f].truth) {
      if (t.cls == cls) ++total_truth;
    }
    if (f < detections_per_frame.size()) {
      for (const Detection &d : detections_per_frame[f]) {
        if (d.box.cls == cls) entries.push_back({d.score, f, d.box});
      }
    }
  }
  if (total_truth == 0) return 0.0;
  std::stable_sort(entries.begin(), entries.end(),
                   [](const Entry &a, const Entry &b) { return a.score > b.score; });

  std::vector<std::vector<bool>> used(frames.size());
  for (std::size_t f = 0; f < frames.size(); ++f) {
    used[f].assign(frames[f].truth.size(), false);
  }
  std::size_t tp = 0, fp = 0;
  std::vector<double> precision, recall;
  for (const Entry &e : entries) {
    double best = match_iou;
    std::size_t best_t = frames[e.frame].truth.size();
    for (std::size_t t = 0; t < frames[e.frame].truth.size(); ++t) {
      const Box &truth = frames[e.frame].truth[t];
      if (truth.cls != cls || used[e.frame][t]) continue;
      const double overlap = iou(e.box, truth);
      if (overlap >= best) {
        best = overlap;
        best_t = t;
      }
    }
    if (best_t < frames[e.frame].truth.size()) {
      used[e.frame][best_t] = true;
      ++tp;
    } else {
      ++fp;
    }
    precision.push_back(static_cast<double>(tp) / static_cast<double>(tp + fp));
    recall.push_back(static_cast<double>(tp) / static_cast<double>(total_truth));
  }
  // All-point interpolation.
  double ap = 0.0;
  double prev_recall = 0.0;
  for (std::size_t i = 0; i < precision.size(); ++i) {
    double max_prec = 0.0;
    for (std::size_t j = i; j < precision.size(); ++j) {
      max_prec = std::max(max_prec, precision[j]);
    }
    ap += (recall[i] - prev_recall) * max_prec;
    prev_recall = recall[i];
  }
  return ap;
}

double mean_average_precision(
    const std::vector<std::vector<Detection>> &detections_per_frame,
    const std::vector<Frame> &frames, double match_iou) {
  double s = 0.0;
  for (std::size_t cls = 0; cls < kNumClasses; ++cls) {
    s += average_precision(detections_per_frame, frames, cls, match_iou);
  }
  return s / static_cast<double>(kNumClasses);
}

DeaugExperimentResult run_deaug_experiment(const DeaugExperimentConfig &config,
                                           core::Rng &rng) {
  DeaugExperimentResult result;
  core::Rng scene_rng = rng.split(1);
  const Scene scene(config.scene, scene_rng);

  core::Rng frames_rng = rng.split(2);
  const std::vector<Frame> original =
      consecutive_frames(scene, 0, config.frames_budget, frames_rng);
  const std::vector<Frame> deaug = strided_frames(
      scene, 0, config.frames_budget, config.stride, frames_rng);
  // Validation: frames from far beyond both training windows.
  const std::size_t val_start =
      config.frames_budget * config.stride + 1000;
  const std::vector<Frame> validation = strided_frames(
      scene, val_start, config.validation_frames, 37, frames_rng);

  result.original_overlap = frame_overlap(original);
  result.deaug_overlap = frame_overlap(deaug);

  const auto evaluate = [&](const std::vector<Frame> &train_set,
                            std::uint64_t lane) {
    core::Rng det_rng = rng.split(lane);
    SlidingWindowDetector detector(config.detector, det_rng);
    core::Rng fit_rng = rng.split(lane + 1);
    detector.fit(train_set, fit_rng);
    std::vector<std::vector<Detection>> dets;
    dets.reserve(validation.size());
    for (const Frame &f : validation) dets.push_back(detector.detect(f));
    return mean_average_precision(dets, validation,
                                  config.detector.match_iou);
  };
  result.original_map = evaluate(original, 10);
  result.deaug_map = evaluate(deaug, 20);
  return result;
}

}  // namespace treu::vision
