#include "treu/vision/scene.hpp"

#include <algorithm>
#include <cmath>

namespace treu::vision {

double iou(const Box &a, const Box &b) noexcept {
  const double ax0 = a.x - a.size, ax1 = a.x + a.size;
  const double ay0 = a.y - a.size, ay1 = a.y + a.size;
  const double bx0 = b.x - b.size, bx1 = b.x + b.size;
  const double by0 = b.y - b.size, by1 = b.y + b.size;
  const double ix = std::max(0.0, std::min(ax1, bx1) - std::max(ax0, bx0));
  const double iy = std::max(0.0, std::min(ay1, by1) - std::max(ay0, by0));
  const double inter = ix * iy;
  const double area_a = (ax1 - ax0) * (ay1 - ay0);
  const double area_b = (bx1 - bx0) * (by1 - by0);
  const double uni = area_a + area_b - inter;
  return uni > 0.0 ? inter / uni : 0.0;
}

Scene::Scene(const SceneConfig &config, core::Rng &rng)
    : config_(config), world_seed_(rng.next_u64()) {}

Scene::Plant Scene::plant_in_cell(long cell) const {
  // Deterministic per-cell stream: the world never changes between renders.
  core::Rng cell_rng(world_seed_, static_cast<std::uint64_t>(cell) * 2 + 1);
  Plant plant;
  plant.present = cell_rng.bernoulli(config_.plant_density);
  const double s = static_cast<double>(config_.image_size);
  plant.world_x = static_cast<double>(cell) * config_.cell_width +
                  cell_rng.uniform(0.25, 0.75) * config_.cell_width;
  plant.y = cell_rng.uniform(config_.max_size, s - config_.max_size);
  plant.size = cell_rng.uniform(config_.min_size, config_.max_size);
  plant.cls = cell_rng.bernoulli(0.5) ? kLettuce : kWeed;
  return plant;
}

Frame Scene::render(std::size_t t, core::Rng &rng) const {
  const std::size_t s = config_.image_size;
  Frame frame;
  frame.time = t;
  frame.image = tensor::Matrix(s, s, 0.1);  // soil background
  core::Rng noise_rng = rng.split(0xF0000 + t);

  const double camera_x = static_cast<double>(t) * config_.camera_speed;
  const long first_cell = static_cast<long>(
      std::floor((camera_x - config_.max_size) / config_.cell_width));
  const long last_cell = static_cast<long>(
      std::ceil((camera_x + static_cast<double>(s) + config_.max_size) /
                config_.cell_width));

  for (long cell = first_cell; cell <= last_cell; ++cell) {
    const Plant plant = plant_in_cell(cell);
    if (!plant.present) continue;
    const double cx = plant.world_x - camera_x;
    const double cy = plant.y;
    if (cx < -config_.max_size ||
        cx > static_cast<double>(s) + config_.max_size) {
      continue;
    }
    // Only plants whose center is on screen become ground truth (partially
    // visible edge plants would make the AP matching ambiguous).
    if (cx >= 0.0 && cx < static_cast<double>(s)) {
      frame.truth.push_back(Box{cx, cy, plant.size, plant.cls});
    }
    // Lettuce: bright filled disk. Weed: darker ring (hollow center).
    const int r = static_cast<int>(std::ceil(plant.size));
    for (int dy = -r; dy <= r; ++dy) {
      for (int dx = -r; dx <= r; ++dx) {
        const int px = static_cast<int>(std::floor(cx)) + dx;
        const int py = static_cast<int>(std::floor(cy)) + dy;
        if (px < 0 || py < 0 || px >= static_cast<int>(s) ||
            py >= static_cast<int>(s)) {
          continue;
        }
        const double dist = std::sqrt(static_cast<double>(dx * dx + dy * dy));
        if (dist > plant.size) continue;
        double value;
        if (plant.cls == kLettuce) {
          value = 0.9 - 0.1 * dist / plant.size;
        } else {
          // Ring: bright at the rim, dark center.
          value = dist > plant.size * 0.5 ? 0.7 : 0.2;
        }
        frame.image(static_cast<std::size_t>(py),
                    static_cast<std::size_t>(px)) = value;
      }
    }
  }
  for (auto &p : frame.image.flat()) {
    p = std::clamp(p + noise_rng.normal(0.0, config_.noise), 0.0, 1.0);
  }
  return frame;
}

std::vector<Frame> consecutive_frames(const Scene &scene, std::size_t start,
                                      std::size_t n, core::Rng &rng) {
  std::vector<Frame> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(scene.render(start + i, rng));
  }
  return out;
}

std::vector<Frame> strided_frames(const Scene &scene, std::size_t start,
                                  std::size_t n, std::size_t stride,
                                  core::Rng &rng) {
  std::vector<Frame> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(scene.render(start + i * stride, rng));
  }
  return out;
}

double frame_overlap(const std::vector<Frame> &frames) {
  if (frames.size() < 2) return 0.0;
  double total = 0.0;
  std::size_t pairs = 0;
  for (std::size_t i = 1; i < frames.size(); ++i) {
    const auto &a = frames[i - 1].image;
    const auto &b = frames[i].image;
    if (a.size() != b.size()) continue;
    double diff = 0.0;
    for (std::size_t j = 0; j < a.size(); ++j) {
      diff += std::fabs(a.flat()[j] - b.flat()[j]);
    }
    total += diff / static_cast<double>(a.size());
    ++pairs;
  }
  return pairs > 0 ? total / static_cast<double>(pairs) : 0.0;
}

}  // namespace treu::vision
