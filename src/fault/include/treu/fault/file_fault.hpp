#pragma once

// FileFaultInjector — seed-deterministic filesystem fault injection.
//
// PR 3's FaultPlan exercises the serving stack's *predictor* bad paths;
// this is the same idea pointed at the filesystem faults that kill real
// durability layers. An atomic write protocol (temp file + fsync + rename,
// treu::ckpt) has three interesting ways to die:
//
//   Truncate          crash mid-write: the temp file is cut at byte b and
//                     never renamed — the torn artifact a recovery scan
//                     must step over.
//   FlipBit           at-rest corruption: the write commits, then bit i of
//                     the final file flips — the silent fault only a
//                     checksum catches.
//   CrashBeforeRename crash in the gap after fsync, before rename: a
//                     complete temp file is stranded and the final file
//                     never appears.
//
// Scheduling follows FaultPlan exactly: the decision for write event k is
// a pure function of (seed, config, k, file size) — each event draws from
// its own Philox stream core::Rng(seed, k) — so a soak that corrupted
// checkpoint 7 can be replayed bit-for-bit from its seed. `at()` exposes
// the pure function; `decide_write()` assigns the next event index,
// records history, and bumps the fault.injected.file_* counters.

#include <array>
#include <cstdint>
#include <mutex>
#include <vector>

#include "treu/core/rng.hpp"

namespace treu::fault {

/// What to do to one committed file write.
enum class FileFaultKind : std::uint8_t {
  None = 0,           // honest write: temp + fsync + rename
  Truncate,           // temp file cut at `truncate_at`, rename skipped
  FlipBit,            // full protocol, then bit `flip_bit` of the file flips
  CrashBeforeRename,  // temp file complete, rename skipped
};

[[nodiscard]] constexpr const char *to_string(FileFaultKind kind) noexcept {
  switch (kind) {
    case FileFaultKind::None: return "none";
    case FileFaultKind::Truncate: return "truncate";
    case FileFaultKind::FlipBit: return "flip-bit";
    case FileFaultKind::CrashBeforeRename: return "crash-before-rename";
  }
  return "unknown";
}

/// One injector verdict. `truncate_at` is meaningful only for Truncate
/// (byte offset < file size), `flip_bit` only for FlipBit (bit index <
/// file size * 8).
struct FileFaultDecision {
  FileFaultKind kind = FileFaultKind::None;
  std::uint64_t truncate_at = 0;
  std::uint64_t flip_bit = 0;
};

/// Hook interface consulted once per atomic file write. Implementations
/// must be thread-safe.
class FileInjector {
 public:
  virtual ~FileInjector() = default;

  /// `file_bytes` is the size of the payload about to be persisted.
  [[nodiscard]] virtual FileFaultDecision decide_write(
      std::uint64_t file_bytes) = 0;
};

struct FileFaultConfig {
  double truncate_rate = 0.0;  // P(Truncate) per write
  double flip_rate = 0.0;      // P(FlipBit) per write
  double crash_rate = 0.0;     // P(CrashBeforeRename) per write
};

class FileFaultInjector final : public FileInjector {
 public:
  /// Throws std::invalid_argument when rates are negative or sum above 1.
  FileFaultInjector(const FileFaultConfig &config, std::uint64_t seed);

  /// Assign the next event index and return its decision. Thread-safe.
  [[nodiscard]] FileFaultDecision decide_write(
      std::uint64_t file_bytes) override;

  /// The pure schedule: what decide_write() returns for event index
  /// `event` on a file of `file_bytes` bytes. Does not advance, record, or
  /// count anything. A zero-byte file never draws Truncate or FlipBit.
  [[nodiscard]] FileFaultDecision at(std::uint64_t event,
                                     std::uint64_t file_bytes) const;

  /// Kinds decided so far, in event order (same seed => same history).
  [[nodiscard]] std::vector<FileFaultKind> history() const;

  /// Events decided so far.
  [[nodiscard]] std::uint64_t events() const;

  /// How many times `kind` has been decided.
  [[nodiscard]] std::uint64_t injected(FileFaultKind kind) const;

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] const FileFaultConfig &config() const noexcept {
    return config_;
  }

 private:
  FileFaultConfig config_;
  std::uint64_t seed_;

  mutable std::mutex mu_;
  std::uint64_t next_event_ = 0;
  std::vector<FileFaultKind> history_;
  std::array<std::uint64_t, 4> counts_{};  // indexed by FileFaultKind
};

}  // namespace treu::fault
