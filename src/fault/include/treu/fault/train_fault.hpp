#pragma once

// TrainFaultPlan — seed-deterministic corruption events for the training
// loop, the training-side sibling of FaultPlan (serving) and
// FileFaultInjector (checkpoint I/O).
//
// The step driver (`nn::run_step_driver`) consults a TrainInjector once per
// *executed* training batch. The decision for event k is a pure function of
// (seed, config, k): each event draws from its own Philox stream
// `core::Rng(seed, k)`, so a fault schedule replays identically across runs
// — which is what makes guard recovery testable as a property ("same seed +
// same schedule => same recovery log + same final digest").
//
// Fault mix (one uniform per event; rates must sum to <= 1, remainder None):
//   NanGrad      poison one gradient scalar with a quiet NaN after backward
//   ExplodeGrad  scale every gradient by `explode_magnitude`
//   CorruptParam silently scale one parameter scalar by `corrupt_param_scale`
//                (finite and small — the silent-data-corruption case; only
//                the shadow-recompute / digest audits can see it)
//   CorruptBatch rotate the minibatch's sample indices by a deterministic
//                offset, so the loop trains on the wrong rows
//
// `pick` is a second uniform in [0, 1) drawn from the same event stream; the
// driver uses it to select the scalar / rotation deterministically.

#include <array>
#include <cstdint>
#include <mutex>
#include <vector>

namespace treu::fault {

enum class TrainFaultKind : std::uint8_t {
  None = 0,
  NanGrad,
  ExplodeGrad,
  CorruptParam,
  CorruptBatch,
};

[[nodiscard]] const char *to_string(TrainFaultKind kind);

struct TrainFaultDecision {
  TrainFaultKind kind = TrainFaultKind::None;
  /// ExplodeGrad: gradient scale. CorruptParam: parameter scale.
  double magnitude = 1.0;
  /// Uniform in [0, 1): selects which scalar (or batch rotation) to hit.
  double pick = 0.0;
};

/// Per-batch injection hook for the training step driver.
class TrainInjector {
 public:
  virtual ~TrainInjector() = default;

  /// Consulted once per executed training batch (replays after a rollback
  /// are new events — the schedule indexes executions, not batch positions).
  [[nodiscard]] virtual TrainFaultDecision decide_step() = 0;
};

struct TrainFaultPlanConfig {
  double nan_grad_rate = 0.0;       // P(NanGrad) per event
  double explode_grad_rate = 0.0;   // P(ExplodeGrad) per event
  double corrupt_param_rate = 0.0;  // P(CorruptParam) per event
  double corrupt_batch_rate = 0.0;  // P(CorruptBatch) per event
  double explode_magnitude = 1e9;
  /// Deliberately close to 1: the corruption must stay finite and small
  /// enough that loss/grad sentinels cannot see it — only the SDC audits.
  double corrupt_param_scale = 1.5;
};

class TrainFaultPlan final : public TrainInjector {
 public:
  /// Throws std::invalid_argument when rates are negative or sum above 1.
  TrainFaultPlan(const TrainFaultPlanConfig &config, std::uint64_t seed);

  /// Assign the next event index and return its decision. Thread-safe.
  [[nodiscard]] TrainFaultDecision decide_step() override;

  /// The pure schedule: what decide_step() returns for event index `event`.
  /// Does not advance, record, or count anything.
  [[nodiscard]] TrainFaultDecision at(std::uint64_t event) const;

  /// Kinds decided so far, in event order (same seed => same history).
  [[nodiscard]] std::vector<TrainFaultKind> history() const;

  /// Events decided so far.
  [[nodiscard]] std::uint64_t events() const;

  /// How many times `kind` has been decided.
  [[nodiscard]] std::uint64_t injected(TrainFaultKind kind) const;

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] const TrainFaultPlanConfig &config() const noexcept {
    return config_;
  }

 private:
  TrainFaultPlanConfig config_;
  std::uint64_t seed_;

  mutable std::mutex mu_;
  std::uint64_t next_event_ = 0;
  std::vector<TrainFaultKind> history_;
  std::array<std::uint64_t, 5> counts_{};  // indexed by TrainFaultKind
};

}  // namespace treu::fault
