#pragma once

// FaultPlan — a seed-deterministic schedule of injectable faults.
//
// The decision for injection event k is a pure function of
// (seed, config, k, replica): each event draws from its own Philox stream
// `core::Rng(seed, k)`, so the schedule is identical across runs, platforms
// and thread interleavings — only *which request* lands on event k depends
// on scheduling, never what event k decides. `at()` exposes the pure
// function so a test can enumerate the whole schedule without a server;
// `decide()` additionally assigns the next event index, records history,
// and bumps the fault.injected.* counters.
//
// Fault mix: independent rates for Throw / Stall / Corrupt plus the
// cluster-level WorkerKill / WorkerStall / LinkDrop (their sum must be
// <= 1; the remainder is None), drawn from one uniform per event. Stall
// durations are uniform in [stall_min, stall_max]; worker stalls in
// [worker_stall_min, worker_stall_max]. On top of the rates, a blackout
// window turns every event for one chosen replica into a Blackout fault
// while the event index is inside [blackout_from, blackout_until) — the
// deterministic analogue of a replica going dark for a while. The worker
// rates default to 0, so a pre-cluster config draws the exact same
// schedule it always did (the ladder gains only zero-width slices).

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "treu/core/rng.hpp"
#include "treu/fault/injector.hpp"

namespace treu::fault {

struct FaultPlanConfig {
  double throw_rate = 0.0;    // P(Throw) per event
  double stall_rate = 0.0;    // P(Stall) per event
  double corrupt_rate = 0.0;  // P(Corrupt) per event
  /// Cluster-level rates: the event's `replica` names a worker process.
  /// Only treu::cluster acts on these; in-process servers ignore them.
  double worker_kill_rate = 0.0;   // P(WorkerKill) per dispatch
  double worker_stall_rate = 0.0;  // P(WorkerStall) per dispatch
  double link_drop_rate = 0.0;     // P(LinkDrop) per dispatch
  /// Pipeline-level rates: the event is a rollout decision point. Their
  /// ladder slices sit above link_drop, so the zero defaults keep every
  /// pre-pipeline schedule bit-identical.
  double publish_corrupt_rate = 0.0;  // P(PublishCorrupt) per publish
  double canary_crash_rate = 0.0;     // P(CanaryCrash) per canary entry
  double promote_crash_rate = 0.0;    // P(PromoteCrash) per promote entry
  double registry_torn_rate = 0.0;    // P(RegistryTorn) per log append
  /// Stall duration range (uniform per stall event).
  std::chrono::microseconds stall_min{100};
  std::chrono::microseconds stall_max{1000};
  /// Worker-stall duration range (uniform per worker-stall event). Whole
  /// event loops freeze for this long, so the useful range sits above the
  /// cluster's heartbeat timeout, not the per-call stall range.
  std::chrono::microseconds worker_stall_min{1000};
  std::chrono::microseconds worker_stall_max{5000};
  /// Replica blackout window by event index: every decision for
  /// `blackout_replica` with index in [blackout_from, blackout_until) is a
  /// Blackout fault. SIZE_MAX (the default) disables the window.
  std::size_t blackout_replica = static_cast<std::size_t>(-1);
  std::uint64_t blackout_from = 0;
  std::uint64_t blackout_until = 0;
};

class FaultPlan final : public Injector {
 public:
  /// Throws std::invalid_argument when rates are negative, sum above 1, or
  /// stall_max < stall_min.
  FaultPlan(const FaultPlanConfig &config, std::uint64_t seed);

  /// Assign the next event index and return its decision. Thread-safe.
  [[nodiscard]] FaultDecision decide(std::size_t replica,
                                     std::size_t batch_size) override;

  /// The pure schedule: what decide() returns for event index `event` on
  /// `replica`. Does not advance, record, or count anything.
  [[nodiscard]] FaultDecision at(std::uint64_t event,
                                 std::size_t replica) const;

  /// Kinds decided so far, in event order (same seed => same history).
  [[nodiscard]] std::vector<FaultKind> history() const;

  /// Events decided so far.
  [[nodiscard]] std::uint64_t events() const;

  /// How many times `kind` has been decided.
  [[nodiscard]] std::uint64_t injected(FaultKind kind) const;

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] const FaultPlanConfig &config() const noexcept {
    return config_;
  }

 private:
  FaultPlanConfig config_;
  std::uint64_t seed_;

  mutable std::mutex mu_;
  std::uint64_t next_event_ = 0;
  std::vector<FaultKind> history_;
  std::array<std::uint64_t, 12> counts_{};  // indexed by FaultKind
};

}  // namespace treu::fault
