#pragma once

// treu::fault — deterministic fault injection for the serving stack.
//
// A trustworthy system is one whose *bad paths* are exercised as
// deliberately as its happy path, and re-runnable from a seed. This module
// defines the hook surface: an `Injector` is consulted once per model-call
// attempt and answers with a `FaultDecision` — do nothing, throw, stall,
// corrupt the output, or black out (a replica-wide outage). The serving
// layer (`treu::serve::BatchServer`) applies the decision; the injector
// never touches the model itself, so the same plan can drive any
// Predictor type.
//
// The canonical implementation is `FaultPlan` (fault_plan.hpp): a
// counter-based schedule where the decision for event k is a pure function
// of (seed, config, k), so any failure a test or bench provokes can be
// replayed exactly from its seed.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace treu::fault {

/// What to do to one model-call attempt (or, for the cluster-level kinds,
/// to one cross-process dispatch — see treu::cluster::ClusterController).
enum class FaultKind : std::uint8_t {
  None = 0,      // run the model untouched
  Throw,         // skip the model, raise FaultError instead
  Stall,         // sleep `stall` before running the model (latency fault)
  Corrupt,       // run the model, then corrupt its outputs (silent fault)
  Blackout,      // replica-wide outage window: behaves like Throw
  // Cluster-level kinds: `replica` is a worker-process index and the
  // injury lands on the whole worker or its link, not one model call.
  // In-process consumers (BatchServer) never see these unless the plan's
  // worker rates are set, and must treat them as None.
  WorkerKill,    // SIGKILL the worker process mid-load
  WorkerStall,   // freeze the worker's event loop for `stall`
  LinkDrop,      // the dispatched frame vanishes on the wire
  // Pipeline-level kinds: the event is one rollout decision point
  // (publish / canary start / promote start), not a model call. Only
  // treu::pipeline::RolloutController acts on these; every other consumer
  // must treat them as None.
  PublishCorrupt,  // rot the just-committed checkpoint bytes at rest
  CanaryCrash,     // kill the controller right after entering Canary
  PromoteCrash,    // kill the controller right after entering Promoting
  RegistryTorn,    // crash mid registry-log append (torn tail record)
};

[[nodiscard]] constexpr const char *to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::None: return "none";
    case FaultKind::Throw: return "throw";
    case FaultKind::Stall: return "stall";
    case FaultKind::Corrupt: return "corrupt";
    case FaultKind::Blackout: return "blackout";
    case FaultKind::WorkerKill: return "worker_kill";
    case FaultKind::WorkerStall: return "worker_stall";
    case FaultKind::LinkDrop: return "link_drop";
    case FaultKind::PublishCorrupt: return "publish_corrupt";
    case FaultKind::CanaryCrash: return "canary_crash";
    case FaultKind::PromoteCrash: return "promote_crash";
    case FaultKind::RegistryTorn: return "registry_torn";
  }
  return "unknown";
}

/// One injector verdict. `stall` is meaningful only for FaultKind::Stall.
struct FaultDecision {
  FaultKind kind = FaultKind::None;
  std::chrono::microseconds stall{0};
};

/// The exception an injected Throw/Blackout surfaces as. Distinct from any
/// real model failure so tests can tell injected faults apart.
class FaultError final : public std::runtime_error {
 public:
  explicit FaultError(const std::string &what) : std::runtime_error(what) {}
};

/// Hook interface consulted once per model-call attempt (retries ask
/// again, so a retried batch can draw a different fault). Implementations
/// must be thread-safe: concurrent batches decide concurrently.
class Injector {
 public:
  virtual ~Injector() = default;

  /// `replica` is the index of the replica about to run; `batch_size` the
  /// number of requests riding on this attempt.
  [[nodiscard]] virtual FaultDecision decide(std::size_t replica,
                                             std::size_t batch_size) = 0;
};

}  // namespace treu::fault
