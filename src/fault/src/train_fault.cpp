#include "treu/fault/train_fault.hpp"

#include <stdexcept>

#include "treu/core/rng.hpp"
#include "treu/obs/obs.hpp"

namespace treu::fault {

const char *to_string(TrainFaultKind kind) {
  switch (kind) {
    case TrainFaultKind::None:
      return "none";
    case TrainFaultKind::NanGrad:
      return "nan_grad";
    case TrainFaultKind::ExplodeGrad:
      return "explode_grad";
    case TrainFaultKind::CorruptParam:
      return "corrupt_param";
    case TrainFaultKind::CorruptBatch:
      return "corrupt_batch";
  }
  return "unknown";
}

TrainFaultPlan::TrainFaultPlan(const TrainFaultPlanConfig &config,
                               std::uint64_t seed)
    : config_(config), seed_(seed) {
  if (config_.nan_grad_rate < 0.0 || config_.explode_grad_rate < 0.0 ||
      config_.corrupt_param_rate < 0.0 || config_.corrupt_batch_rate < 0.0) {
    throw std::invalid_argument("TrainFaultPlan: negative fault rate");
  }
  if (config_.nan_grad_rate + config_.explode_grad_rate +
          config_.corrupt_param_rate + config_.corrupt_batch_rate >
      1.0) {
    throw std::invalid_argument("TrainFaultPlan: fault rates sum above 1");
  }
}

TrainFaultDecision TrainFaultPlan::at(std::uint64_t event) const {
  // One stream per event: the decision never depends on how many draws
  // earlier events made, so the schedule is enumerable without running.
  core::Rng rng(seed_, event);
  const double u = rng.uniform();
  TrainFaultDecision d;
  double edge = config_.nan_grad_rate;
  if (u < edge) {
    d.kind = TrainFaultKind::NanGrad;
  } else if (u < (edge += config_.explode_grad_rate)) {
    d.kind = TrainFaultKind::ExplodeGrad;
    d.magnitude = config_.explode_magnitude;
  } else if (u < (edge += config_.corrupt_param_rate)) {
    d.kind = TrainFaultKind::CorruptParam;
    d.magnitude = config_.corrupt_param_scale;
  } else if (u < (edge += config_.corrupt_batch_rate)) {
    d.kind = TrainFaultKind::CorruptBatch;
  }
  if (d.kind != TrainFaultKind::None) d.pick = rng.uniform();
  return d;
}

TrainFaultDecision TrainFaultPlan::decide_step() {
  TrainFaultDecision d;
  {
    std::lock_guard lock(mu_);
    const std::uint64_t event = next_event_++;
    d = at(event);
    history_.push_back(d.kind);
    ++counts_[static_cast<std::size_t>(d.kind)];
  }
  switch (d.kind) {
    case TrainFaultKind::NanGrad:
      TREU_OBS_COUNTER_ADD("fault.injected.train_nan_grad", 1);
      break;
    case TrainFaultKind::ExplodeGrad:
      TREU_OBS_COUNTER_ADD("fault.injected.train_explode_grad", 1);
      break;
    case TrainFaultKind::CorruptParam:
      TREU_OBS_COUNTER_ADD("fault.injected.train_corrupt_param", 1);
      break;
    case TrainFaultKind::CorruptBatch:
      TREU_OBS_COUNTER_ADD("fault.injected.train_corrupt_batch", 1);
      break;
    case TrainFaultKind::None:
      break;
  }
  return d;
}

std::vector<TrainFaultKind> TrainFaultPlan::history() const {
  std::lock_guard lock(mu_);
  return history_;
}

std::uint64_t TrainFaultPlan::events() const {
  std::lock_guard lock(mu_);
  return next_event_;
}

std::uint64_t TrainFaultPlan::injected(TrainFaultKind kind) const {
  std::lock_guard lock(mu_);
  return counts_[static_cast<std::size_t>(kind)];
}

}  // namespace treu::fault
