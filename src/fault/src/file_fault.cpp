#include "treu/fault/file_fault.hpp"

#include <stdexcept>

#include "treu/obs/obs.hpp"

namespace treu::fault {

FileFaultInjector::FileFaultInjector(const FileFaultConfig &config,
                                     std::uint64_t seed)
    : config_(config), seed_(seed) {
  if (config_.truncate_rate < 0.0 || config_.flip_rate < 0.0 ||
      config_.crash_rate < 0.0) {
    throw std::invalid_argument("FileFaultInjector: negative fault rate");
  }
  if (config_.truncate_rate + config_.flip_rate + config_.crash_rate > 1.0) {
    throw std::invalid_argument("FileFaultInjector: fault rates sum above 1");
  }
}

FileFaultDecision FileFaultInjector::at(std::uint64_t event,
                                        std::uint64_t file_bytes) const {
  // One stream per event (FaultPlan's scheme): the decision never depends
  // on how many draws earlier events made, so the schedule survives any
  // write interleaving and can be enumerated without a store.
  core::Rng rng(seed_, event);
  const double u = rng.uniform();
  FileFaultDecision d;
  if (u < config_.truncate_rate) {
    if (file_bytes == 0) return d;  // nothing to tear
    d.kind = FileFaultKind::Truncate;
    d.truncate_at = rng.uniform_index(file_bytes);
  } else if (u < config_.truncate_rate + config_.flip_rate) {
    if (file_bytes == 0) return d;  // nothing to flip
    d.kind = FileFaultKind::FlipBit;
    d.flip_bit = rng.uniform_index(file_bytes * 8);
  } else if (u < config_.truncate_rate + config_.flip_rate +
                     config_.crash_rate) {
    d.kind = FileFaultKind::CrashBeforeRename;
  }
  return d;
}

FileFaultDecision FileFaultInjector::decide_write(std::uint64_t file_bytes) {
  FileFaultDecision d;
  {
    std::lock_guard lock(mu_);
    const std::uint64_t event = next_event_++;
    d = at(event, file_bytes);
    history_.push_back(d.kind);
    ++counts_[static_cast<std::size_t>(d.kind)];
  }
  switch (d.kind) {
    case FileFaultKind::Truncate:
      TREU_OBS_COUNTER_ADD("fault.injected.file_truncate", 1);
      break;
    case FileFaultKind::FlipBit:
      TREU_OBS_COUNTER_ADD("fault.injected.file_flip_bit", 1);
      break;
    case FileFaultKind::CrashBeforeRename:
      TREU_OBS_COUNTER_ADD("fault.injected.file_crash", 1);
      break;
    case FileFaultKind::None:
      break;
  }
  return d;
}

std::vector<FileFaultKind> FileFaultInjector::history() const {
  std::lock_guard lock(mu_);
  return history_;
}

std::uint64_t FileFaultInjector::events() const {
  std::lock_guard lock(mu_);
  return next_event_;
}

std::uint64_t FileFaultInjector::injected(FileFaultKind kind) const {
  std::lock_guard lock(mu_);
  return counts_[static_cast<std::size_t>(kind)];
}

}  // namespace treu::fault
