#include "treu/fault/fault_plan.hpp"

#include <stdexcept>

#include "treu/obs/obs.hpp"

namespace treu::fault {

FaultPlan::FaultPlan(const FaultPlanConfig &config, std::uint64_t seed)
    : config_(config), seed_(seed) {
  if (config_.throw_rate < 0.0 || config_.stall_rate < 0.0 ||
      config_.corrupt_rate < 0.0 || config_.worker_kill_rate < 0.0 ||
      config_.worker_stall_rate < 0.0 || config_.link_drop_rate < 0.0 ||
      config_.publish_corrupt_rate < 0.0 || config_.canary_crash_rate < 0.0 ||
      config_.promote_crash_rate < 0.0 || config_.registry_torn_rate < 0.0) {
    throw std::invalid_argument("FaultPlan: negative fault rate");
  }
  if (config_.throw_rate + config_.stall_rate + config_.corrupt_rate +
          config_.worker_kill_rate + config_.worker_stall_rate +
          config_.link_drop_rate + config_.publish_corrupt_rate +
          config_.canary_crash_rate + config_.promote_crash_rate +
          config_.registry_torn_rate >
      1.0) {
    throw std::invalid_argument("FaultPlan: fault rates sum above 1");
  }
  if (config_.stall_max < config_.stall_min) {
    throw std::invalid_argument("FaultPlan: stall_max < stall_min");
  }
  if (config_.worker_stall_max < config_.worker_stall_min) {
    throw std::invalid_argument(
        "FaultPlan: worker_stall_max < worker_stall_min");
  }
}

FaultDecision FaultPlan::at(std::uint64_t event, std::size_t replica) const {
  if (replica == config_.blackout_replica && event >= config_.blackout_from &&
      event < config_.blackout_until) {
    return FaultDecision{FaultKind::Blackout, std::chrono::microseconds{0}};
  }
  // One stream per event: the decision never depends on how many draws
  // earlier events made, so the schedule survives any interleaving.
  core::Rng rng(seed_, event);
  const double u = rng.uniform();
  FaultDecision d;
  double edge = config_.throw_rate;
  if (u < edge) {
    d.kind = FaultKind::Throw;
    return d;
  }
  edge += config_.stall_rate;
  if (u < edge) {
    d.kind = FaultKind::Stall;
    d.stall = std::chrono::microseconds(static_cast<std::int64_t>(
        rng.uniform(static_cast<double>(config_.stall_min.count()),
                    static_cast<double>(config_.stall_max.count() + 1))));
    return d;
  }
  edge += config_.corrupt_rate;
  if (u < edge) {
    d.kind = FaultKind::Corrupt;
    return d;
  }
  edge += config_.worker_kill_rate;
  if (u < edge) {
    d.kind = FaultKind::WorkerKill;
    return d;
  }
  edge += config_.worker_stall_rate;
  if (u < edge) {
    d.kind = FaultKind::WorkerStall;
    // Drawn from the same per-event stream, after the ladder uniform: the
    // duration is as replayable as the kind.
    d.stall = std::chrono::microseconds(static_cast<std::int64_t>(rng.uniform(
        static_cast<double>(config_.worker_stall_min.count()),
        static_cast<double>(config_.worker_stall_max.count() + 1))));
    return d;
  }
  edge += config_.link_drop_rate;
  if (u < edge) {
    d.kind = FaultKind::LinkDrop;
    return d;
  }
  // Pipeline slices extend the ladder above every legacy kind, so turning
  // them on can only promote events that were previously None.
  edge += config_.publish_corrupt_rate;
  if (u < edge) {
    d.kind = FaultKind::PublishCorrupt;
    return d;
  }
  edge += config_.canary_crash_rate;
  if (u < edge) {
    d.kind = FaultKind::CanaryCrash;
    return d;
  }
  edge += config_.promote_crash_rate;
  if (u < edge) {
    d.kind = FaultKind::PromoteCrash;
    return d;
  }
  edge += config_.registry_torn_rate;
  if (u < edge) d.kind = FaultKind::RegistryTorn;
  return d;
}

FaultDecision FaultPlan::decide(std::size_t replica, std::size_t batch_size) {
  (void)batch_size;
  FaultDecision d;
  {
    std::lock_guard lock(mu_);
    const std::uint64_t event = next_event_++;
    d = at(event, replica);
    history_.push_back(d.kind);
    ++counts_[static_cast<std::size_t>(d.kind)];
  }
  switch (d.kind) {
    case FaultKind::Throw:
      TREU_OBS_COUNTER_ADD("fault.injected.throw", 1);
      break;
    case FaultKind::Stall:
      TREU_OBS_COUNTER_ADD("fault.injected.stall", 1);
      break;
    case FaultKind::Corrupt:
      TREU_OBS_COUNTER_ADD("fault.injected.corrupt", 1);
      break;
    case FaultKind::Blackout:
      TREU_OBS_COUNTER_ADD("fault.injected.blackout", 1);
      break;
    case FaultKind::WorkerKill:
      TREU_OBS_COUNTER_ADD("fault.injected.worker_kill", 1);
      break;
    case FaultKind::WorkerStall:
      TREU_OBS_COUNTER_ADD("fault.injected.worker_stall", 1);
      break;
    case FaultKind::LinkDrop:
      TREU_OBS_COUNTER_ADD("fault.injected.link_drop", 1);
      break;
    case FaultKind::PublishCorrupt:
      TREU_OBS_COUNTER_ADD("fault.injected.pipeline_publish_corrupt", 1);
      break;
    case FaultKind::CanaryCrash:
      TREU_OBS_COUNTER_ADD("fault.injected.pipeline_canary_crash", 1);
      break;
    case FaultKind::PromoteCrash:
      TREU_OBS_COUNTER_ADD("fault.injected.pipeline_promote_crash", 1);
      break;
    case FaultKind::RegistryTorn:
      TREU_OBS_COUNTER_ADD("fault.injected.pipeline_registry_torn", 1);
      break;
    case FaultKind::None:
      break;
  }
  return d;
}

std::vector<FaultKind> FaultPlan::history() const {
  std::lock_guard lock(mu_);
  return history_;
}

std::uint64_t FaultPlan::events() const {
  std::lock_guard lock(mu_);
  return next_event_;
}

std::uint64_t FaultPlan::injected(FaultKind kind) const {
  std::lock_guard lock(mu_);
  return counts_[static_cast<std::size_t>(kind)];
}

}  // namespace treu::fault
