#pragma once

// Resilience policies for treu::serve — the pieces that keep an injected-
// fault (or genuinely failing) serving stack inside its contract:
//
//  - DeadlineError / ShedError: the two new ways a submitted future can
//    resolve, alongside RejectedError and model errors. Every accepted
//    request still resolves exactly one way; exact accounting is the
//    whole point.
//  - RetryPolicy + backoff_delay(): bounded retry with exponential
//    backoff and *deterministic* jitter — the delay for (policy, attempt,
//    batch id) is a pure function, so a seeded run replays its exact
//    backoff schedule.
//  - CircuitBreaker: per-replica closed -> open -> half-open breaker on
//    consecutive failures, with an injectable microsecond clock so tests
//    drive the cooldown in virtual time while the server uses wall time.
//  - Priority: admission classes for load shedding near max_pending
//    (policy wiring lives in BatchServer; see shed_watermark there).

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <string>

#include "treu/core/rng.hpp"
#include "treu/obs/obs.hpp"

namespace treu::serve {

/// The error a request's future carries when its deadline passed before a
/// response could be produced (expired in queue, or finished too late
/// behind a stalled batch).
class DeadlineError final : public std::runtime_error {
 public:
  explicit DeadlineError(const std::string &what) : std::runtime_error(what) {}
};

/// The error a request's future carries when admission shed it: the queue
/// was above the shed watermark for its priority class. Deliberately not a
/// RejectedError — shedding is a policy choice under load, not a full
/// queue, and callers may want to retry shed work elsewhere.
class ShedError final : public std::runtime_error {
 public:
  explicit ShedError(const std::string &what) : std::runtime_error(what) {}
};

/// Admission classes, most to least important. Under load (queue above the
/// shed watermark) Low is shed first, then Normal; High is only ever
/// refused by the hard max_pending bound.
enum class Priority : std::uint8_t { High = 0, Normal = 1, Low = 2 };

/// Bounded retry with exponential backoff and deterministic jitter.
/// max_attempts == 1 means no retry (the default).
struct RetryPolicy {
  std::size_t max_attempts = 1;
  std::chrono::microseconds base_backoff{100};
  double multiplier = 2.0;
  std::chrono::microseconds max_backoff{5000};
  /// Jitter fraction in [0, 1): delay is scaled by a factor uniform in
  /// [1 - jitter, 1 + jitter) drawn from a stream keyed by jitter_seed.
  double jitter = 0.0;
  std::uint64_t jitter_seed = 0;
};

/// Delay before retry number `attempt` (0 = first retry) of batch
/// `batch_id`. Pure function: exponential base_backoff * multiplier^attempt
/// capped at max_backoff, then jittered from Rng(jitter_seed, batch_id)
/// split by attempt — identical across runs, platforms and interleavings.
[[nodiscard]] inline std::chrono::microseconds backoff_delay(
    const RetryPolicy &policy, std::size_t attempt, std::uint64_t batch_id) {
  double us = static_cast<double>(policy.base_backoff.count());
  for (std::size_t i = 0; i < attempt; ++i) {
    us *= policy.multiplier;
    if (us >= static_cast<double>(policy.max_backoff.count())) break;
  }
  us = std::min(us, static_cast<double>(policy.max_backoff.count()));
  if (policy.jitter > 0.0) {
    core::Rng rng = core::Rng(policy.jitter_seed, batch_id).split(attempt);
    us *= rng.uniform(1.0 - policy.jitter, 1.0 + policy.jitter);
  }
  return std::chrono::microseconds(
      std::max<std::int64_t>(0, static_cast<std::int64_t>(us)));
}

enum class BreakerState : std::uint8_t { Closed = 0, Open = 1, HalfOpen = 2 };

[[nodiscard]] constexpr const char *to_string(BreakerState s) noexcept {
  switch (s) {
    case BreakerState::Closed: return "closed";
    case BreakerState::Open: return "open";
    case BreakerState::HalfOpen: return "half-open";
  }
  return "unknown";
}

struct BreakerConfig {
  /// Consecutive failures that trip the breaker open. 0 disables the
  /// breaker entirely (allow() is always true, records are no-ops).
  std::size_t failure_threshold = 0;
  /// How long an open breaker refuses work before letting one probe
  /// through (half-open).
  std::chrono::microseconds cooldown{10000};
  /// Microsecond clock. Leave empty for steady_clock wall time; tests
  /// inject a counter to drive cooldowns in virtual time.
  std::function<std::int64_t()> clock;
  /// Identity stamped into flight-recorder transition events so a dump can
  /// tell which replica's breaker tripped (BatchServer sets it to the
  /// replica's construction index).
  std::uint64_t id = 0;
};

/// Per-replica circuit breaker: closed -> open after failure_threshold
/// consecutive failures; open -> half-open once cooldown elapsed (exactly
/// one probe admitted); half-open -> closed on probe success, -> open on
/// probe failure. Internally synchronized.
class CircuitBreaker {
 public:
  explicit CircuitBreaker(const BreakerConfig &config) : config_(config) {}

  /// May this caller run work now? Open -> HalfOpen transition (and the
  /// single-probe admission) happens here.
  [[nodiscard]] bool allow() {
    if (config_.failure_threshold == 0) return true;
    std::lock_guard lock(mu_);
    switch (state_) {
      case BreakerState::Closed:
        return true;
      case BreakerState::Open:
        if (now_us() - opened_at_us_ >=
            static_cast<std::int64_t>(config_.cooldown.count())) {
          state_ = BreakerState::HalfOpen;
          probe_in_flight_ = true;
          TREU_OBS_FR_EVENT(BreakerHalfOpen, 0, config_.id, 0);
          return true;
        }
        return false;
      case BreakerState::HalfOpen:
        if (probe_in_flight_) return false;
        probe_in_flight_ = true;
        return true;
    }
    return true;
  }

  void record_success() {
    if (config_.failure_threshold == 0) return;
    std::lock_guard lock(mu_);
    consecutive_failures_ = 0;
    probe_in_flight_ = false;
    if (state_ != BreakerState::Closed) {
      state_ = BreakerState::Closed;
      TREU_OBS_GAUGE_ADD("serve.breaker.state", -1);
      TREU_OBS_FR_EVENT(BreakerClose, 0, config_.id, 0);
    }
  }

  /// Give back an admission that never ran: the caller passed allow()
  /// (possibly consuming the one half-open probe) but found no live work
  /// to execute, so neither record_success() nor record_failure() will
  /// follow. A half-open probe reverts to Open *without* restarting the
  /// cooldown (opened_at is kept), so the next allow() re-admits a probe
  /// immediately — the probe opportunity is returned, not consumed. No-op
  /// when no probe is pending (a Closed-state admission holds nothing).
  void release_probe() {
    if (config_.failure_threshold == 0) return;
    std::lock_guard lock(mu_);
    if (!probe_in_flight_) return;
    probe_in_flight_ = false;
    if (state_ == BreakerState::HalfOpen) state_ = BreakerState::Open;
  }

  void record_failure() {
    if (config_.failure_threshold == 0) return;
    std::lock_guard lock(mu_);
    probe_in_flight_ = false;
    if (state_ == BreakerState::HalfOpen) {
      // Failed probe: back to open for another cooldown.
      state_ = BreakerState::Open;
      opened_at_us_ = now_us();
      ++opened_count_;
      TREU_OBS_COUNTER_ADD("serve.breaker.opened_total", 1);
      TREU_OBS_FR_EVENT(BreakerOpen, 0, config_.id, opened_count_);
      return;
    }
    if (state_ == BreakerState::Open) return;  // already open; don't extend
    if (++consecutive_failures_ >= config_.failure_threshold) {
      state_ = BreakerState::Open;
      opened_at_us_ = now_us();
      consecutive_failures_ = 0;
      ++opened_count_;
      TREU_OBS_GAUGE_ADD("serve.breaker.state", 1);
      TREU_OBS_COUNTER_ADD("serve.breaker.opened_total", 1);
      TREU_OBS_FR_EVENT(BreakerOpen, 0, config_.id, opened_count_);
    }
  }

  /// Time, in this breaker's clock units, until allow() could next admit
  /// work by cooldown expiry. Zero when allow() may already succeed
  /// (disabled, Closed, or Open with the cooldown elapsed). HalfOpen with
  /// a probe in flight has no time-based expiry — the probe's completion
  /// unblocks it — so the full cooldown is returned as a bounded re-check
  /// hint for pollers.
  [[nodiscard]] std::chrono::microseconds time_until_allow() const {
    if (config_.failure_threshold == 0) return std::chrono::microseconds{0};
    std::lock_guard lock(mu_);
    switch (state_) {
      case BreakerState::Closed:
        return std::chrono::microseconds{0};
      case BreakerState::HalfOpen:
        return probe_in_flight_ ? config_.cooldown
                                : std::chrono::microseconds{0};
      case BreakerState::Open:
        break;
    }
    const std::int64_t remaining =
        static_cast<std::int64_t>(config_.cooldown.count()) -
        (now_us() - opened_at_us_);
    return std::chrono::microseconds(std::max<std::int64_t>(0, remaining));
  }

  [[nodiscard]] BreakerState state() const {
    std::lock_guard lock(mu_);
    return state_;
  }

  /// Times this breaker has transitioned to Open (including re-opens from
  /// a failed half-open probe).
  [[nodiscard]] std::uint64_t opened() const {
    std::lock_guard lock(mu_);
    return opened_count_;
  }

  [[nodiscard]] const BreakerConfig &config() const noexcept {
    return config_;
  }

 private:
  [[nodiscard]] std::int64_t now_us() const {
    if (config_.clock) return config_.clock();
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  BreakerConfig config_;
  mutable std::mutex mu_;
  BreakerState state_ = BreakerState::Closed;
  std::size_t consecutive_failures_ = 0;
  std::int64_t opened_at_us_ = 0;
  bool probe_in_flight_ = false;
  std::uint64_t opened_count_ = 0;
};

}  // namespace treu::serve
