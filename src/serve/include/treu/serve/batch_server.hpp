#pragma once

// treu::serve — a dynamic-batching inference runtime.
//
// BatchServer puts any nn::Predictor behind a request queue and turns
// per-sample model code into throughput:
//
//   submit(input) -> future            a dedicated batcher thread
//   ┌────────────┐   condition-var    ┌─────────────────────────────┐
//   │ bounded    │ ────wakeup───────> │ batch former: flush on      │
//   │ FIFO queue │                    │ max_batch_size OR           │
//   └────────────┘                    │ max_queue_delay, whichever  │
//        │ reject beyond max_pending  │ comes first                 │
//        v                            └──────────┬──────────────────┘
//   future <- RejectedError                      │ per-batch job on
//                                                v treu::parallel::ThreadPool
//                                     ┌─────────────────────────────┐
//                                     │ replica checkout ->         │
//                                     │ predict_batch -> fulfill    │
//                                     │ futures (output + weight    │
//                                     │ hash + queue latency)       │
//                                     └─────────────────────────────┘
//
// Design notes
//  - Batching is adaptive: while every model replica is busy, requests keep
//    queueing, so the next batch is bigger — backlog converts to batch size
//    instead of per-sample dispatch overhead. An idle server dispatches a
//    lone request after `max_queue_delay` (timeout-only flush).
//  - Backpressure is a bounded queue: beyond `max_pending` undispatched
//    requests, `submit` fails the returned future with RejectedError
//    immediately. Rejecting at admission keeps tail latency of accepted
//    work flat instead of letting the queue grow without bound.
//  - Model instances are NOT thread-safe (forward passes mutate layer
//    caches), so each in-flight batch checks out one replica; concurrency
//    equals the number of replicas passed in. Weight hashes are computed
//    once at construction — serving assumes frozen weights — and every
//    response carries its replica's hash, extending the repo's provenance
//    story to online traffic: any answer can be attributed to an exact
//    weight snapshot.
//  - `shutdown()` (also run by the destructor) stops admissions, flushes
//    the remaining queue in max_batch_size chunks ignoring the delay, and
//    returns once every accepted request has been fulfilled.
//  - Everything observable is counted twice: exact internal stats guarded
//    by the server mutex (tests rely on these; they exist with obs
//    compiled out), plus treu::obs metrics for telemetry artifacts —
//    serve.requests_total / serve.rejected_total / serve.batches_total /
//    serve.responses_total counters, the serve.queue_depth gauge, and
//    serve.batch_size / serve.queue_latency_us / serve.batch_forward_us
//    histograms.

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "treu/nn/predictor.hpp"
#include "treu/obs/obs.hpp"
#include "treu/parallel/thread_pool.hpp"

namespace treu::serve {

struct ServeConfig {
  /// Flush a forming batch at this many requests...
  std::size_t max_batch_size = 32;
  /// ...or once the oldest queued request has waited this long.
  std::chrono::microseconds max_queue_delay{2000};
  /// Admission bound: undispatched requests beyond this are rejected.
  std::size_t max_pending = 1024;
};

/// The error a rejected request's future carries.
class RejectedError final : public std::runtime_error {
 public:
  explicit RejectedError(const std::string &what) : std::runtime_error(what) {}
};

/// One served response: the model output plus serving provenance.
template <typename Out>
struct Served {
  Out output;
  std::string weight_hash;     // hex SHA-256 of the serving replica's weights
  std::size_t batch_size = 0;  // size of the batch this rode in
  double queue_us = 0.0;       // admission -> dispatch latency
};

/// Exact internal counters (independent of TREU_OBS_ENABLED).
struct ServeStats {
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;  // futures fulfilled with a value
  std::uint64_t batches = 0;
  std::uint64_t max_batch = 0;  // largest batch formed so far
  std::size_t queue_depth = 0;  // undispatched requests right now
};

template <typename In, typename Out>
class BatchServer {
 public:
  using Model = nn::Predictor<In, Out>;
  using Response = Served<Out>;

  /// Serve a set of replicas of one model (all must hold identical
  /// weights; each concurrent batch checks out one replica).
  BatchServer(std::vector<Model *> replicas, const ServeConfig &config,
              parallel::ThreadPool &pool = parallel::ThreadPool::global())
      : config_(config), pool_(pool) {
    if (replicas.empty()) {
      throw std::invalid_argument("BatchServer: no model replicas");
    }
    if (config_.max_batch_size == 0 || config_.max_pending == 0) {
      throw std::invalid_argument("BatchServer: zero batch/pending bound");
    }
    free_.reserve(replicas.size());
    for (Model *m : replicas) {
      if (m == nullptr) throw std::invalid_argument("BatchServer: null replica");
      free_.push_back({m, m->weight_hash()});
    }
#if TREU_OBS_ENABLED
    // Fix power-of-two bounds for the batch-size histogram before the
    // observe macro's first use can install latency-decade defaults.
    static const std::vector<double> kBatchBounds{1, 2,  4,  8,   16,
                                                  32, 64, 128, 256, 512};
    (void)obs::Registry::global().histogram("serve.batch_size", kBatchBounds);
#endif
    batcher_ = std::thread([this] { batcher_loop(); });
  }

  /// Single-replica convenience: batches run one at a time.
  BatchServer(Model &model, const ServeConfig &config,
              parallel::ThreadPool &pool = parallel::ThreadPool::global())
      : BatchServer(std::vector<Model *>{&model}, config, pool) {}

  BatchServer(const BatchServer &) = delete;
  BatchServer &operator=(const BatchServer &) = delete;

  ~BatchServer() { shutdown(); }

  /// Enqueue one input. The future resolves to a Served response, or to
  /// RejectedError when the server is over max_pending / shut down.
  [[nodiscard]] std::future<Response> submit(In input) {
    std::promise<Response> promise;
    std::future<Response> fut = promise.get_future();
    {
      std::lock_guard lock(mu_);
      if (!accepting_ || queue_.size() >= config_.max_pending) {
        ++stats_.rejected;
        promise.set_exception(std::make_exception_ptr(RejectedError(
            accepting_ ? "BatchServer: queue full (max_pending)"
                       : "BatchServer: shut down")));
        TREU_OBS_COUNTER_ADD("serve.rejected_total", 1);
        return fut;
      }
      ++stats_.accepted;
      queue_.push_back(Pending{std::move(input), std::move(promise),
                               std::chrono::steady_clock::now()});
    }
    TREU_OBS_COUNTER_ADD("serve.requests_total", 1);
    TREU_OBS_GAUGE_ADD("serve.queue_depth", 1);
    cv_.notify_all();
    return fut;
  }

  /// Enqueue a client-side batch of any size; the batch former splits it
  /// into server batches of at most max_batch_size.
  [[nodiscard]] std::vector<std::future<Response>> submit_many(
      std::span<const In> inputs) {
    std::vector<std::future<Response>> futs;
    futs.reserve(inputs.size());
    for (const In &input : inputs) futs.push_back(submit(In(input)));
    return futs;
  }

  /// Stop admitting, serve everything already accepted, stop the batcher.
  /// Safe to call more than once (and from the destructor after an
  /// explicit call).
  void shutdown() {
    std::lock_guard shutdown_guard(shutdown_mu_);
    {
      std::unique_lock lock(mu_);
      accepting_ = false;
      cv_.notify_all();
      idle_cv_.wait(lock, [&] { return queue_.empty() && in_flight_ == 0; });
      stop_ = true;
      cv_.notify_all();
    }
    if (batcher_.joinable()) batcher_.join();
  }

  [[nodiscard]] ServeStats stats() const {
    std::lock_guard lock(mu_);
    ServeStats s = stats_;
    s.queue_depth = queue_.size();
    return s;
  }

  [[nodiscard]] const ServeConfig &config() const noexcept { return config_; }

 private:
  struct Pending {
    In input;
    std::promise<Response> promise;
    std::chrono::steady_clock::time_point enqueued;
  };
  struct Replica {
    Model *model;
    std::string hash;
  };
  struct Batch {
    std::vector<Pending> items;
    Replica replica;
    std::chrono::steady_clock::time_point dispatched;
  };

  void batcher_loop() {
    std::unique_lock lock(mu_);
    for (;;) {
      cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;

      // Form the batch: grow until full, or until the oldest request has
      // waited max_queue_delay. A draining server flushes immediately.
      const auto deadline = queue_.front().enqueued + config_.max_queue_delay;
      while (queue_.size() < config_.max_batch_size && accepting_ && !stop_) {
        if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) break;
      }

      // Wait for a free replica. Requests keep arriving meanwhile, so a
      // busy server naturally forms bigger batches.
      cv_.wait(lock, [&] { return stop_ || !free_.empty(); });
      if (free_.empty()) continue;  // stop_ set; drain requirement already met

      Batch batch;
      batch.replica = std::move(free_.back());
      free_.pop_back();
      const std::size_t n =
          std::min(queue_.size(), config_.max_batch_size);
      batch.items.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        batch.items.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      batch.dispatched = std::chrono::steady_clock::now();
      ++in_flight_;
      ++stats_.batches;
      if (n > stats_.max_batch) stats_.max_batch = n;
      lock.unlock();

      TREU_OBS_COUNTER_ADD("serve.batches_total", 1);
      TREU_OBS_GAUGE_ADD("serve.queue_depth",
                         -static_cast<std::int64_t>(n));
      TREU_OBS_HISTOGRAM_OBSERVE("serve.batch_size",
                                 static_cast<double>(n));
      for (const Pending &p : batch.items) {
        const double waited_us =
            std::chrono::duration<double, std::micro>(batch.dispatched -
                                                      p.enqueued)
                .count();
        (void)waited_us;
        TREU_OBS_HISTOGRAM_OBSERVE("serve.queue_latency_us", waited_us);
      }

      // Fire and forget: completion is reported through the per-request
      // promises, not the pool future.
      (void)pool_.submit(
          [this, b = std::move(batch)]() mutable { run_batch(std::move(b)); });

      lock.lock();
    }
  }

  void run_batch(Batch batch) {
    std::vector<In> inputs;
    inputs.reserve(batch.items.size());
    for (Pending &p : batch.items) inputs.push_back(std::move(p.input));

    std::vector<Out> outputs;
    std::exception_ptr error;
    {
      TREU_OBS_SCOPED_LATENCY_US(fwd_timer, "serve.batch_forward_us");
      try {
        outputs = batch.replica.model->predict_batch(inputs);
        if (outputs.size() != inputs.size()) {
          throw std::runtime_error("BatchServer: predict_batch size mismatch");
        }
      } catch (...) {
        error = std::current_exception();
      }
    }

    std::uint64_t served = 0;
    for (std::size_t i = 0; i < batch.items.size(); ++i) {
      if (error) {
        batch.items[i].promise.set_exception(error);
        continue;
      }
      Response r;
      r.output = std::move(outputs[i]);
      r.weight_hash = batch.replica.hash;
      r.batch_size = batch.items.size();
      r.queue_us = std::chrono::duration<double, std::micro>(
                       batch.dispatched - batch.items[i].enqueued)
                       .count();
      batch.items[i].promise.set_value(std::move(r));
      ++served;
    }
    TREU_OBS_COUNTER_ADD("serve.responses_total", served);

    {
      // Notify under the lock: once mu_ is released with in_flight_ == 0 a
      // concurrent shutdown() may destroy the server, so nothing after
      // this scope may touch members.
      std::lock_guard lock(mu_);
      free_.push_back(std::move(batch.replica));
      --in_flight_;
      stats_.completed += served;
      cv_.notify_all();
      idle_cv_.notify_all();
    }
  }

  ServeConfig config_;
  parallel::ThreadPool &pool_;

  mutable std::mutex mu_;
  std::mutex shutdown_mu_;           // serializes concurrent shutdown calls
  std::condition_variable cv_;       // batcher wakeups (work / replica free)
  std::condition_variable idle_cv_;  // shutdown waits for full drain
  std::deque<Pending> queue_;
  std::vector<Replica> free_;
  std::size_t in_flight_ = 0;
  bool accepting_ = true;
  bool stop_ = false;
  ServeStats stats_;

  std::thread batcher_;
};

}  // namespace treu::serve
