#pragma once

// treu::serve — a dynamic-batching inference runtime.
//
// BatchServer puts any nn::Predictor behind a request queue and turns
// per-sample model code into throughput:
//
//   submit(input) -> future            a dedicated batcher thread
//   ┌────────────┐   condition-var    ┌─────────────────────────────┐
//   │ bounded    │ ────wakeup───────> │ batch former: flush on      │
//   │ FIFO queue │                    │ max_batch_size OR           │
//   └────────────┘                    │ max_queue_delay, whichever  │
//        │ reject beyond max_pending  │ comes first                 │
//        │ shed above watermark       └──────────┬──────────────────┘
//        v                                       │ per-batch job on
//   future <- RejectedError / ShedError          v treu::parallel::ThreadPool
//                                     ┌─────────────────────────────┐
//                                     │ breaker-gated replica       │
//                                     │ checkout -> (fault hook) -> │
//                                     │ predict_batch w/ retries -> │
//                                     │ fulfill futures             │
//                                     └─────────────────────────────┘
//
// Design notes
//  - Batching is adaptive: while every model replica is busy, requests keep
//    queueing, so the next batch is bigger — backlog converts to batch size
//    instead of per-sample dispatch overhead. An idle server dispatches a
//    lone request after `max_queue_delay` (timeout-only flush).
//  - Backpressure is a bounded queue: beyond `max_pending` undispatched
//    requests, `submit` fails the returned future with RejectedError
//    immediately. Rejecting at admission keeps tail latency of accepted
//    work flat instead of letting the queue grow without bound. Below the
//    hard bound, priority-aware load shedding (see `shed_watermark`) fails
//    Low/Normal work with ShedError once the queue crosses its watermark,
//    so High-priority traffic degrades last.
//  - Resilience (resilience.hpp): per-request deadlines fail expired work
//    with DeadlineError (checked at batch formation and again at
//    fulfilment, so a stalled batch cannot return answers late); failed
//    model calls are retried on the same replica up to
//    `retry.max_attempts` with exponential backoff and deterministic
//    jitter; each replica sits behind a circuit breaker
//    (closed->open->half-open on consecutive failures) that takes it out
//    of checkout rotation while open.
//  - Fault injection (treu::fault): an optional `injector` is consulted
//    once per predict attempt and can throw, stall, corrupt outputs
//    (through the server's `set_output_corrupter` hook — corruption needs
//    to know the Out type), or black out a replica. Seeded injectors
//    (fault::FaultPlan) make every failure sequence replayable.
//  - Model instances are NOT thread-safe (forward passes mutate layer
//    caches), so each in-flight batch checks out one replica; concurrency
//    equals the number of replicas passed in. Weight hashes are computed
//    once at construction — serving assumes frozen weights — and every
//    response carries its replica's hash, extending the repo's provenance
//    story to online traffic: any answer can be attributed to an exact
//    weight snapshot.
//  - Hot weight reload (`reload_weights`): replicas are upgraded one at a
//    time through the same checkout rotation batches use, so no batch ever
//    observes a half-applied replica. The first replica acts as a standby:
//    its post-apply weight hash is validated against the expected digest
//    (e.g. a ckpt::TrainingCheckpoint's weight_digest()) before the rest of
//    the fleet is touched, and any mismatch rolls every updated replica
//    back. Responses keep attributing answers to the exact weights that
//    produced them — hashes swap per replica at the moment it swaps.
//  - `shutdown()` (also run by the destructor) stops admissions, flushes
//    the remaining queue in max_batch_size chunks ignoring the delay, and
//    returns once every accepted request has been fulfilled — value,
//    error, or deadline miss; exact accounting survives active faults.
//  - Everything observable is counted twice: exact internal stats guarded
//    by the server mutex (tests rely on these; they exist with obs
//    compiled out), plus treu::obs metrics for telemetry artifacts —
//    serve.requests_total / serve.rejected_total / serve.shed_total /
//    serve.batches_total / serve.responses_total / serve.deadline_miss /
//    serve.retry.attempts / serve.retry.exhausted counters, the
//    serve.queue_depth and serve.breaker.state gauges, and the
//    serve.batch_size / serve.queue_latency_us / serve.batch_forward_us
//    histograms. (serve.failed_total appears only once a request actually
//    fails, so fault-free telemetry is unchanged.)
//  - Causal tracing (obs/causal.hpp): every request gets a TraceContext
//    whose 128-bit id is a pure function of (trace_seed, submission
//    index), so two same-seed runs assign identical ids to the k-th
//    submitted request. `trace_sample_rate` head-samples traces
//    deterministically; a sampled request's full path — root lifetime,
//    queue wait, each predict attempt, terminal outcome — is emitted as
//    causally-linked spans at fulfilment (span ids follow the fixed
//    scheme in causal.hpp, so the (id, parent) tree is reproducible).
//    Every lifecycle edge also drops a compact event into the always-on
//    flight recorder (enqueue/reject/shed, dequeue, predict attempts,
//    retries, breaker transitions, fulfilment), stamped with the
//    request's trace-id low word for post-hoc causal reconstruction.
//    All of it defaults off: rate 0 plus a disabled recorder leaves the
//    serving output and telemetry byte-identical to pre-tracing builds.

#include <algorithm>
#include <array>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "treu/fault/injector.hpp"
#include "treu/nn/predictor.hpp"
#include "treu/obs/obs.hpp"
#include "treu/parallel/thread_pool.hpp"
#include "treu/serve/resilience.hpp"

namespace treu::serve {

struct ServeConfig {
  /// Flush a forming batch at this many requests...
  std::size_t max_batch_size = 32;
  /// ...or once the oldest queued request has waited this long.
  std::chrono::microseconds max_queue_delay{2000};
  /// Admission bound: undispatched requests beyond this are rejected.
  std::size_t max_pending = 1024;

  /// Per-request deadline measured from admission; 0 disables. Expired
  /// requests fail with DeadlineError instead of waiting forever.
  std::chrono::microseconds deadline{0};
  /// Retry failed model calls (same replica) with backoff; max_attempts 1
  /// (the default) means no retry.
  RetryPolicy retry;
  /// Per-replica circuit breaker; failure_threshold 0 (default) disables.
  BreakerConfig breaker;
  /// Load-shedding watermark as a fraction of max_pending in (0, 1]:
  /// Low-priority submits shed once the queue reaches
  /// watermark * max_pending, Normal at the midpoint between that and
  /// max_pending, High only at the hard bound. 1.0 (default) disables
  /// shedding entirely.
  double shed_watermark = 1.0;
  /// Optional fault-injection hook, consulted once per predict attempt.
  /// Not owned; must outlive the server.
  fault::Injector *injector = nullptr;

  /// Fraction of requests whose full causal path is recorded as linked
  /// spans in the global TraceCollector. Head-based and deterministic: a
  /// trace is sampled iff head_sample(id, rate), a pure function of the
  /// id. 0 (default) records nothing.
  double trace_sample_rate = 0.0;
  /// Seed for trace-id derivation: request k gets derive_trace_id(
  /// trace_seed, k) in submission order. Same seed -> same ids.
  std::uint64_t trace_seed = 0;
};

/// The error a rejected request's future carries.
class RejectedError final : public std::runtime_error {
 public:
  explicit RejectedError(const std::string &what) : std::runtime_error(what) {}
};

namespace detail {
// Pre-built admission-failure messages: the rejection path runs under the
// server mutex on every overloaded submit, so it must not allocate.
inline const std::string kQueueFullMsg{"BatchServer: queue full (max_pending)"};
inline const std::string kShutDownMsg{"BatchServer: shut down"};
inline const std::string kShedMsg{
    "BatchServer: shed (queue above watermark for priority)"};
inline const std::string kDeadlineMsg{"BatchServer: deadline exceeded"};
}  // namespace detail

/// One served response: the model output plus serving provenance.
template <typename Out>
struct Served {
  Out output;
  std::string weight_hash;     // hex SHA-256 of the serving replica's weights
  std::size_t batch_size = 0;  // size of the batch this rode in
  double queue_us = 0.0;       // admission -> dispatch latency
  obs::TraceId trace;          // deterministic causal trace id of the request
};

/// Exact internal counters (independent of TREU_OBS_ENABLED).
struct ServeStats {
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t shed = 0;             // failed with ShedError at admission
  std::uint64_t completed = 0;        // futures fulfilled with a value
  std::uint64_t failed = 0;           // futures failed with a model/fault error
  std::uint64_t deadline_missed = 0;  // futures failed with DeadlineError
  std::uint64_t retries = 0;          // extra predict attempts made
  std::uint64_t batches = 0;
  std::uint64_t max_batch = 0;  // largest batch formed so far
  std::uint64_t reloads = 0;    // successful fleet-wide weight reloads
  std::uint64_t reload_rollbacks = 0;  // reloads undone after validation
  std::size_t queue_depth = 0;  // undispatched requests right now
};

/// Outcome of one reload_weights call.
struct ReloadReport {
  bool ok = false;
  std::size_t replicas_updated = 0;  // replicas on the new weights now
  std::string previous_hash;         // fleet hash before the reload
  std::string new_hash;              // hash the new weights produced
  std::string error;                 // why the reload failed/rolled back
};

template <typename In, typename Out>
class BatchServer {
 public:
  using Model = nn::Predictor<In, Out>;
  using Response = Served<Out>;

  /// Serve a set of replicas of one model (all must hold identical
  /// weights; each concurrent batch checks out one replica).
  BatchServer(std::vector<Model *> replicas, const ServeConfig &config,
              parallel::ThreadPool &pool = parallel::ThreadPool::global())
      : config_(config), pool_(pool) {
    if (replicas.empty()) {
      throw std::invalid_argument("BatchServer: no model replicas");
    }
    if (config_.max_batch_size == 0 || config_.max_pending == 0) {
      throw std::invalid_argument("BatchServer: zero batch/pending bound");
    }
    if (config_.shed_watermark <= 0.0 || config_.shed_watermark > 1.0) {
      throw std::invalid_argument("BatchServer: shed_watermark outside (0,1]");
    }
    if (config_.retry.max_attempts == 0) {
      throw std::invalid_argument("BatchServer: retry.max_attempts must be >=1");
    }
    free_.reserve(replicas.size());
    breakers_.reserve(replicas.size());
    for (std::size_t i = 0; i < replicas.size(); ++i) {
      Model *m = replicas[i];
      if (m == nullptr) throw std::invalid_argument("BatchServer: null replica");
      free_.push_back({m, m->weight_hash(), i});
      BreakerConfig breaker_config = config_.breaker;
      breaker_config.id = i;  // flight-recorder events name the replica
      breakers_.push_back(std::make_unique<CircuitBreaker>(breaker_config));
    }
    if (config_.trace_sample_rate < 0.0 || config_.trace_sample_rate > 1.0) {
      throw std::invalid_argument(
          "BatchServer: trace_sample_rate outside [0,1]");
    }
    // Admission caps per priority class. With the watermark at 1.0 every
    // cap equals max_pending, and since the hard bound rejects first,
    // shedding never fires — the pre-watermark behaviour is bit-exact.
    // The Low cap is clamped to >= 1: watermark * max_pending can truncate
    // to 0 (e.g. 0.1 * 4), which would shed every Low submit even on an
    // idle server.
    const auto low_cap = std::max<std::size_t>(
        1, static_cast<std::size_t>(config_.shed_watermark *
                                    static_cast<double>(config_.max_pending)));
    shed_cap_[static_cast<std::size_t>(Priority::High)] = config_.max_pending;
    shed_cap_[static_cast<std::size_t>(Priority::Normal)] =
        (low_cap + config_.max_pending + 1) / 2;
    shed_cap_[static_cast<std::size_t>(Priority::Low)] = low_cap;
#if TREU_OBS_ENABLED
    // Fix power-of-two bounds for the batch-size histogram before the
    // observe macro's first use can install latency-decade defaults.
    static const std::vector<double> kBatchBounds{1, 2,  4,  8,   16,
                                                  32, 64, 128, 256, 512};
    (void)obs::Registry::global().histogram("serve.batch_size", kBatchBounds);
#endif
    batcher_ = std::thread([this] { batcher_loop(); });
  }

  /// Single-replica convenience: batches run one at a time.
  BatchServer(Model &model, const ServeConfig &config,
              parallel::ThreadPool &pool = parallel::ThreadPool::global())
      : BatchServer(std::vector<Model *>{&model}, config, pool) {}

  BatchServer(const BatchServer &) = delete;
  BatchServer &operator=(const BatchServer &) = delete;

  ~BatchServer() { shutdown(); }

  /// How an injected Corrupt fault mutates an output. Type-specific, so it
  /// cannot live in ServeConfig; without one, Corrupt decisions pass the
  /// output through untouched (the injector still counts them). Set before
  /// traffic starts — not synchronized against in-flight batches.
  void set_output_corrupter(std::function<void(Out &)> corrupter) {
    corrupter_ = std::move(corrupter);
  }

  /// Enqueue one input. The future resolves to a Served response, or to
  /// RejectedError (over max_pending / shut down), ShedError (above the
  /// priority's shed watermark), DeadlineError (expired before a response
  /// was produced), or the model/fault error after retries exhausted.
  [[nodiscard]] std::future<Response> submit(
      In input, Priority priority = Priority::Normal) {
    std::promise<Response> promise;
    std::future<Response> fut = promise.get_future();
    obs::TraceContext trace;
    {
      std::lock_guard lock(mu_);
      // Every submit — accepted or not — consumes one deterministic trace
      // identity, so the k-th submit of a seeded run always maps to
      // derive_trace_id(trace_seed, k) regardless of admission outcome.
      trace = obs::TraceContext::root(config_.trace_seed, next_request_seq_++,
                                      config_.trace_sample_rate);
      if (!accepting_ || queue_.size() >= config_.max_pending) {
        ++stats_.rejected;
        promise.set_exception(std::make_exception_ptr(RejectedError(
            accepting_ ? detail::kQueueFullMsg : detail::kShutDownMsg)));
        TREU_OBS_COUNTER_ADD("serve.rejected_total", 1);
        TREU_OBS_FR_EVENT(Reject, trace.id.lo, queue_.size(),
                          accepting_ ? 1 : 0);
        return fut;
      }
      if (queue_.size() >= shed_cap_[static_cast<std::size_t>(priority)]) {
        ++stats_.shed;
        promise.set_exception(
            std::make_exception_ptr(ShedError(detail::kShedMsg)));
        TREU_OBS_COUNTER_ADD("serve.shed_total", 1);
        TREU_OBS_FR_EVENT(Shed, trace.id.lo, queue_.size(),
                          static_cast<std::uint64_t>(priority));
        return fut;
      }
      ++stats_.accepted;
      Pending p;
      p.input = std::move(input);
      p.promise = std::move(promise);
      p.enqueued = std::chrono::steady_clock::now();
      p.trace = trace;
      if (trace.sampled) p.enq_us = obs_now_us();
      queue_.push_back(std::move(p));
      TREU_OBS_FR_EVENT(Enqueue, trace.id.lo, queue_.size(),
                        static_cast<std::uint64_t>(priority));
    }
    TREU_OBS_COUNTER_ADD("serve.requests_total", 1);
    TREU_OBS_GAUGE_ADD("serve.queue_depth", 1);
    cv_.notify_all();
    return fut;
  }

  /// Enqueue a client-side batch of any size; the batch former splits it
  /// into server batches of at most max_batch_size.
  [[nodiscard]] std::vector<std::future<Response>> submit_many(
      std::span<const In> inputs, Priority priority = Priority::Normal) {
    std::vector<std::future<Response>> futs;
    futs.reserve(inputs.size());
    for (const In &input : inputs) futs.push_back(submit(In(input), priority));
    return futs;
  }

  /// Stop admitting, serve everything already accepted, stop the batcher.
  /// Safe to call more than once (and from the destructor after an
  /// explicit call).
  void shutdown() {
    std::lock_guard shutdown_guard(shutdown_mu_);
    {
      std::unique_lock lock(mu_);
      accepting_ = false;
      cv_.notify_all();
      idle_cv_.wait(lock, [&] { return queue_.empty() && in_flight_ == 0; });
      stop_ = true;
      cv_.notify_all();
    }
    if (batcher_.joinable()) batcher_.join();
  }

  /// Hot-swap the fleet's weights while traffic keeps flowing.
  ///
  /// `apply` loads the new weights into one model (e.g. restore a
  /// ckpt::TrainingCheckpoint into its params); `rollback` must restore
  /// the previous weights and is mandatory — a replica that can't be
  /// rolled back would have to leave the rotation, and a shrunken fleet
  /// deadlocks shutdown's drain. When `expected_hash` is non-empty the
  /// first replica is treated as a standby: after `apply`, its
  /// weight_hash() must equal `expected_hash` or the whole reload is
  /// rolled back and no further replica is touched. Replicas are upgraded
  /// one at a time through the normal checkout rotation, so every
  /// in-flight batch runs against a fully old or fully new replica and
  /// carries the matching hash. During the rollout, traffic is served by
  /// a mix of old and new weights (normal for rolling upgrades).
  ///
  /// Serializes against concurrent reloads; safe alongside submit() and
  /// shutdown() (a reload interrupted by shutdown rolls back and reports
  /// failure).
  ReloadReport reload_weights(const std::function<void(Model &)> &apply,
                              const std::string &expected_hash,
                              const std::function<void(Model &)> &rollback) {
    if (!apply) {
      throw std::invalid_argument("BatchServer: reload apply is empty");
    }
    if (!rollback) {
      throw std::invalid_argument("BatchServer: reload rollback is empty");
    }
    std::lock_guard reload_guard(reload_mu_);
    TREU_OBS_SPAN(reload_span, "serve.reload");
    TREU_OBS_SCOPED_LATENCY_US(reload_timer, "serve.reload_us");

    ReloadReport report;
    std::vector<std::size_t> updated;
    const std::size_t fleet = breakers_.size();
    for (std::size_t i = 0; i < fleet; ++i) {
      std::optional<Replica> r = checkout_replica_for_reload(i);
      if (!r) {
        report.error = "BatchServer: shut down during reload";
        break;
      }
      if (report.previous_hash.empty()) report.previous_hash = r->hash;
      try {
        apply(*r->model);
      } catch (const std::exception &e) {
        report.error = std::string("BatchServer: reload apply threw: ") +
                       e.what();
        rollback(*r->model);
        r->hash = r->model->weight_hash();
        return_reload_replica(std::move(*r));
        break;
      }
      std::string hash = r->model->weight_hash();
      if (!expected_hash.empty() && hash != expected_hash) {
        report.error = "BatchServer: reload hash mismatch (expected " +
                       expected_hash + ", got " + hash + ")";
        rollback(*r->model);
        r->hash = r->model->weight_hash();
        return_reload_replica(std::move(*r));
        break;
      }
      r->hash = std::move(hash);
      report.new_hash = r->hash;
      return_reload_replica(std::move(*r));
      updated.push_back(i);
      ++report.replicas_updated;
      TREU_OBS_COUNTER_ADD("serve.reload.replicas_updated", 1);
    }

    if (report.replicas_updated == fleet) {
      report.ok = true;
      std::lock_guard lock(mu_);
      ++stats_.reloads;
      TREU_OBS_COUNTER_ADD("serve.reload.success", 1);
      TREU_OBS_FR_EVENT(Reload, 0, fleet, 1);
      return report;
    }

    // Validation failed (normally on the standby, so `updated` is empty) or
    // shutdown interrupted the rollout: put every touched replica back on
    // the previous weights so the fleet serves one consistent version.
    for (const std::size_t idx : updated) {
      std::optional<Replica> r = checkout_replica_for_reload(idx);
      if (!r) break;  // shut down mid-rollback; models belong to the caller
      rollback(*r->model);
      r->hash = r->model->weight_hash();
      return_reload_replica(std::move(*r));
      --report.replicas_updated;
    }
    report.new_hash.clear();
    {
      std::lock_guard lock(mu_);
      ++stats_.reload_rollbacks;
    }
    TREU_OBS_COUNTER_ADD("serve.reload.rollbacks", 1);
    TREU_OBS_FR_EVENT(ReloadRollback, 0, updated.size(), 0);
    return report;
  }

  [[nodiscard]] ServeStats stats() const {
    std::lock_guard lock(mu_);
    ServeStats s = stats_;
    s.queue_depth = queue_.size();
    return s;
  }

  /// Current breaker state per replica (index = construction order).
  [[nodiscard]] std::vector<BreakerState> breaker_states() const {
    std::vector<BreakerState> states;
    states.reserve(breakers_.size());
    for (const auto &b : breakers_) states.push_back(b->state());
    return states;
  }

  /// Times any replica's breaker has tripped open.
  [[nodiscard]] std::uint64_t breaker_trips() const {
    std::uint64_t trips = 0;
    for (const auto &b : breakers_) trips += b->opened();
    return trips;
  }

  [[nodiscard]] const ServeConfig &config() const noexcept { return config_; }

 private:
  struct Pending {
    In input;
    std::promise<Response> promise;
    std::chrono::steady_clock::time_point enqueued;
    obs::TraceContext trace;    // deterministic identity + sampling decision
    std::uint64_t enq_us = 0;   // TraceCollector clock at admission (sampled)
  };
  struct Replica {
    Model *model;
    std::string hash;
    std::size_t index;
  };
  /// One predict attempt's timing window, kept only while the batch holds
  /// at least one sampled request (see Batch::traced).
  struct AttemptWindow {
    std::uint64_t start_us = 0;
    std::uint64_t end_us = 0;
    bool ok = false;
  };
  struct Batch {
    std::vector<Pending> items;
    Replica replica;
    std::chrono::steady_clock::time_point dispatched;
    std::uint64_t id = 0;  // deterministic retry-jitter key
    bool traced = false;   // any item sampled -> collect attempt windows
    std::uint64_t dispatch_us = 0;  // TraceCollector clock at dispatch
    std::vector<AttemptWindow> attempts;
  };

#if TREU_OBS_ENABLED
  static std::uint64_t obs_now_us() {
    return obs::TraceCollector::global().now_us();
  }

  /// Emit the full causal path of one sampled request at its terminal
  /// moment: root lifetime, queue wait, each predict attempt of the batch
  /// it rode in, and a zero-length outcome marker. Emitting everything at
  /// fulfilment (rather than live) keeps the per-trace span set atomic —
  /// a trace is either fully present or fully absent in the collector.
  void emit_request_trace(const Pending &item, const Batch &batch,
                          std::uint64_t end_us, const char *outcome) {
    if (!item.trace.active()) return;
    auto &tc = obs::TraceCollector::global();
    tc.record_causal_span("serve.request", item.trace, item.enq_us, end_us);
    tc.record_causal_span("serve.queue", item.trace.child(obs::kSpanQueue),
                          item.enq_us, batch.dispatch_us);
    for (std::size_t k = 0; k < batch.attempts.size(); ++k) {
      const AttemptWindow &w = batch.attempts[k];
      tc.record_causal_span(w.ok ? "serve.attempt.ok" : "serve.attempt.fail",
                            item.trace.child(obs::span_id_attempt(k)),
                            w.start_us, w.end_us);
    }
    tc.record_causal_span(outcome, item.trace.child(obs::kSpanOutcome),
                          end_us, end_us);
  }

  /// Causal path of a request that expired while still queued: no batch,
  /// no attempts — root, queue wait, deadline outcome.
  void emit_queue_expiry_trace(const Pending &item) {
    if (!item.trace.active()) return;
    const std::uint64_t now = obs_now_us();
    auto &tc = obs::TraceCollector::global();
    tc.record_causal_span("serve.request", item.trace, item.enq_us, now);
    tc.record_causal_span("serve.queue", item.trace.child(obs::kSpanQueue),
                          item.enq_us, now);
    tc.record_causal_span("serve.outcome.deadline",
                          item.trace.child(obs::kSpanOutcome), now, now);
  }
#else
  static std::uint64_t obs_now_us() { return 0; }
#endif

  /// Wait until the replica with this construction index returns to free_
  /// and take it out of rotation. Batches notify cv_ when they retire a
  /// replica, so the wait is bounded by one in-flight batch. nullopt only
  /// when the server stops while the replica is still out (then it will
  /// land in free_ untouched after the drain).
  [[nodiscard]] std::optional<Replica> checkout_replica_for_reload(
      std::size_t index) {
    std::unique_lock lock(mu_);
    for (;;) {
      const auto it =
          std::find_if(free_.begin(), free_.end(),
                       [&](const Replica &r) { return r.index == index; });
      if (it != free_.end()) {
        Replica r = std::move(*it);
        free_.erase(it);
        return r;
      }
      if (stop_) return std::nullopt;
      cv_.wait(lock);
    }
  }

  void return_reload_replica(Replica r) {
    std::lock_guard lock(mu_);
    free_.push_back(std::move(r));
    cv_.notify_all();
  }

  /// Index into free_ of a replica whose breaker admits work, or npos.
  /// Scans oldest-returned first (checkout erases from the front, retiring
  /// batches push to the back), so replicas rotate round-robin and a
  /// half-open breaker gets its probe instead of being shadowed by a
  /// healthy neighbour. Caller holds mu_.
  [[nodiscard]] std::size_t pick_replica_locked() {
    for (std::size_t i = 0; i < free_.size(); ++i) {
      if (breakers_[free_[i].index]->allow()) return i;
    }
    return static_cast<std::size_t>(-1);
  }

  void batcher_loop() {
    constexpr auto kNpos = static_cast<std::size_t>(-1);
    std::unique_lock lock(mu_);
    for (;;) {
      cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;

      // Form the batch: grow until full, or until the oldest request has
      // waited max_queue_delay. A draining server flushes immediately.
      const auto flush_deadline =
          queue_.front().enqueued + config_.max_queue_delay;
      while (queue_.size() < config_.max_batch_size && accepting_ && !stop_) {
        if (cv_.wait_until(lock, flush_deadline) == std::cv_status::timeout) {
          break;
        }
      }

      // Wait for a free replica whose circuit breaker admits work.
      // Requests keep arriving meanwhile, so a busy server naturally forms
      // bigger batches. When every free replica's breaker refuses, sleep
      // until the earliest cooldown can expire (-> half-open probe) rather
      // than polling on a fixed short timeout — an all-open fleet would
      // otherwise burn ~5k wakeups/sec for the whole cooldown. An
      // in-flight batch retiring notifies cv_ and wakes us sooner. The
      // floor keeps a just-about-to-expire (or virtual-clock) breaker from
      // degenerating into a spin; probes always resolve their futures, so
      // the drain in shutdown() still terminates.
      std::size_t picked = kNpos;
      for (;;) {
        cv_.wait(lock, [&] { return stop_ || !free_.empty(); });
        if (stop_ && free_.empty()) break;
        picked = pick_replica_locked();
        if (picked != kNpos) break;
        auto nap = config_.breaker.cooldown;
        for (const Replica &r : free_) {
          nap = std::min(nap, breakers_[r.index]->time_until_allow());
        }
        cv_.wait_for(lock,
                     std::max(nap, std::chrono::microseconds(200)));
      }
      if (picked == kNpos) continue;  // stop_ set; drain already satisfied

      Batch batch;
      batch.replica = std::move(free_[picked]);
      free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(picked));
      batch.dispatched = std::chrono::steady_clock::now();

      // Pop up to max_batch_size live requests. Requests whose deadline
      // already passed in the queue fail here with DeadlineError and do
      // not occupy batch slots.
      std::size_t popped = 0;
      std::size_t expired = 0;
      while (!queue_.empty() && batch.items.size() < config_.max_batch_size) {
        Pending p = std::move(queue_.front());
        queue_.pop_front();
        ++popped;
        if (config_.deadline.count() > 0 &&
            batch.dispatched - p.enqueued > config_.deadline) {
          p.promise.set_exception(
              std::make_exception_ptr(DeadlineError(detail::kDeadlineMsg)));
          ++stats_.deadline_missed;
          ++expired;
          TREU_OBS_FR_EVENT(DeadlineMiss, p.trace.id.lo, 0, 0);
#if TREU_OBS_ENABLED
          emit_queue_expiry_trace(p);
#endif
          continue;
        }
        batch.items.push_back(std::move(p));
      }
      const std::size_t n = batch.items.size();
      if (n == 0) {
        // Everything popped had expired: return the replica and let the
        // drain condition observe the emptier queue. The checkout may have
        // consumed the breaker's one half-open probe; since no predict
        // will run, give the admission back — otherwise neither
        // record_success() nor record_failure() ever clears it and the
        // breaker is stuck HalfOpen refusing this replica forever.
        breakers_[batch.replica.index]->release_probe();
        free_.push_back(std::move(batch.replica));
        TREU_OBS_GAUGE_ADD("serve.queue_depth",
                           -static_cast<std::int64_t>(popped));
        TREU_OBS_COUNTER_ADD("serve.deadline_miss",
                             static_cast<std::uint64_t>(expired));
        cv_.notify_all();
        idle_cv_.notify_all();
        continue;
      }
      batch.id = next_batch_id_++;
      // One formation event per batch, not per item: every item's outcome
      // event (Fulfill / RequestFail) carries the batch id, so a trace's
      // batch is recoverable from its terminal event and the per-item
      // record cost stays at admit + outcome.
      TREU_OBS_FR_EVENT(Dequeue, batch.items[0].trace.id.lo, batch.id,
                        batch.replica.index);
#if TREU_OBS_ENABLED
      for (const Pending &p : batch.items) {
        if (p.trace.sampled) {
          batch.traced = true;
          break;
        }
      }
      if (batch.traced) batch.dispatch_us = obs_now_us();
#endif
      ++in_flight_;
      ++stats_.batches;
      if (n > stats_.max_batch) stats_.max_batch = n;
      lock.unlock();

      TREU_OBS_COUNTER_ADD("serve.batches_total", 1);
      TREU_OBS_COUNTER_ADD("serve.deadline_miss",
                           static_cast<std::uint64_t>(expired));
      TREU_OBS_GAUGE_ADD("serve.queue_depth",
                         -static_cast<std::int64_t>(popped));
      TREU_OBS_HISTOGRAM_OBSERVE("serve.batch_size",
                                 static_cast<double>(n));
      for (const Pending &p : batch.items) {
        const double waited_us =
            std::chrono::duration<double, std::micro>(batch.dispatched -
                                                      p.enqueued)
                .count();
        (void)waited_us;
        if (p.trace.sampled) {
          TREU_OBS_HISTOGRAM_OBSERVE_EXEMPLAR("serve.queue_latency_us",
                                              waited_us, p.trace.id);
        } else {
          TREU_OBS_HISTOGRAM_OBSERVE("serve.queue_latency_us", waited_us);
        }
      }

      // Fire and forget: completion is reported through the per-request
      // promises, not the pool future.
      (void)pool_.submit(
          [this, b = std::move(batch)]() mutable { run_batch(std::move(b)); });

      lock.lock();
    }
  }

  void run_batch(Batch batch) {
    TREU_OBS_SPAN(run_span, "serve.run_batch");
    std::vector<In> inputs;
    inputs.reserve(batch.items.size());
    for (Pending &p : batch.items) inputs.push_back(std::move(p.input));

    CircuitBreaker &breaker = *breakers_[batch.replica.index];
    std::vector<Out> outputs;
    std::exception_ptr error;
    std::uint64_t retries = 0;
    const std::uint64_t lead_lo = batch.items[0].trace.id.lo;
    (void)lead_lo;
    for (std::size_t attempt = 0; attempt < config_.retry.max_attempts;
         ++attempt) {
      if (attempt > 0) {
        ++retries;
        TREU_OBS_COUNTER_ADD("serve.retry.attempts", 1);
        TREU_OBS_SPAN(backoff_span, "serve.retry_backoff");
        const auto delay = backoff_delay(config_.retry, attempt - 1, batch.id);
        TREU_OBS_FR_EVENT(Retry, lead_lo, batch.id,
                          static_cast<std::uint64_t>(delay.count()));
        std::this_thread::sleep_for(delay);
      }
      error = nullptr;
      fault::FaultDecision decision;
      if (config_.injector != nullptr) {
        decision = config_.injector->decide(batch.replica.index, inputs.size());
        if (decision.kind != fault::FaultKind::None) {
          TREU_OBS_FR_EVENT(FaultInjected, lead_lo, batch.replica.index,
                            static_cast<std::uint64_t>(decision.kind));
        }
      }
      TREU_OBS_FR_EVENT(PredictStart, lead_lo, batch.id, attempt);
      AttemptWindow window;
      if (batch.traced) window.start_us = obs_now_us();
      {
        TREU_OBS_SCOPED_LATENCY_US(fwd_timer, "serve.batch_forward_us");
        try {
          if (decision.kind == fault::FaultKind::Stall) {
            std::this_thread::sleep_for(decision.stall);
          }
          if (decision.kind == fault::FaultKind::Throw) {
            throw fault::FaultError("injected fault: throw");
          }
          if (decision.kind == fault::FaultKind::Blackout) {
            throw fault::FaultError("injected fault: replica blackout");
          }
          outputs = batch.replica.model->predict_batch(inputs);
          if (outputs.size() != inputs.size()) {
            throw std::runtime_error("BatchServer: predict_batch size mismatch");
          }
          if (decision.kind == fault::FaultKind::Corrupt && corrupter_) {
            for (Out &o : outputs) corrupter_(o);
          }
        } catch (...) {
          error = std::current_exception();
        }
      }
      if (batch.traced) {
        window.end_us = obs_now_us();
        window.ok = !error;
        batch.attempts.push_back(window);
      }
      if (error) {
        breaker.record_failure();
        TREU_OBS_FR_EVENT(PredictFail, lead_lo, batch.id, attempt);
      } else {
        breaker.record_success();
        TREU_OBS_FR_EVENT(PredictOk, lead_lo, batch.id, attempt);
        break;
      }
    }
    if (error && config_.retry.max_attempts > 1) {
      TREU_OBS_COUNTER_ADD("serve.retry.exhausted", 1);
    }

    const auto fulfilled = std::chrono::steady_clock::now();
#if TREU_OBS_ENABLED
    const std::uint64_t fulfilled_us = batch.traced ? obs_now_us() : 0;
#endif
    std::uint64_t served = 0;
    std::uint64_t failed = 0;
    std::uint64_t missed = 0;
    for (std::size_t i = 0; i < batch.items.size(); ++i) {
      Pending &item = batch.items[i];
      if (error) {
        // Record the terminal event (and spans) *before* fulfilling the
        // promise: anything the client does after observing the outcome is
        // then guaranteed a later flight-recorder seq than the outcome
        // itself, which is what lets a serial closed loop reproduce the
        // full global event sequence (not just per-trace order).
        TREU_OBS_FR_EVENT(RequestFail, item.trace.id.lo, batch.id,
                          retries + 1);
#if TREU_OBS_ENABLED
        emit_request_trace(item, batch, fulfilled_us, "serve.outcome.fail");
#endif
        item.promise.set_exception(error);
        ++failed;
        continue;
      }
      // A response produced after the request's deadline (stalled or
      // slow batch) is a miss, not a late success.
      if (config_.deadline.count() > 0 &&
          fulfilled - item.enqueued > config_.deadline) {
        TREU_OBS_FR_EVENT(DeadlineMiss, item.trace.id.lo, batch.id, 1);
#if TREU_OBS_ENABLED
        emit_request_trace(item, batch, fulfilled_us, "serve.outcome.deadline");
#endif
        item.promise.set_exception(
            std::make_exception_ptr(DeadlineError(detail::kDeadlineMsg)));
        ++missed;
        continue;
      }
      Response r;
      r.output = std::move(outputs[i]);
      r.weight_hash = batch.replica.hash;
      r.batch_size = batch.items.size();
      r.queue_us = std::chrono::duration<double, std::micro>(
                       batch.dispatched - item.enqueued)
                       .count();
      r.trace = item.trace.id;
      TREU_OBS_FR_EVENT(Fulfill, item.trace.id.lo, batch.id,
                        batch.items.size());
#if TREU_OBS_ENABLED
      emit_request_trace(item, batch, fulfilled_us, "serve.outcome.ok");
#endif
      item.promise.set_value(std::move(r));
      ++served;
    }
    TREU_OBS_COUNTER_ADD("serve.responses_total", served);
    TREU_OBS_COUNTER_ADD("serve.deadline_miss", missed);
    if (failed > 0) {
      // Created lazily so fault-free runs emit telemetry byte-identical to
      // builds that predate this counter (the SLO monitor reads it).
      TREU_OBS_COUNTER_ADD("serve.failed_total", failed);
    }

    {
      // Notify under the lock: once mu_ is released with in_flight_ == 0 a
      // concurrent shutdown() may destroy the server, so nothing after
      // this scope may touch members.
      std::lock_guard lock(mu_);
      free_.push_back(std::move(batch.replica));
      --in_flight_;
      stats_.completed += served;
      stats_.failed += failed;
      stats_.deadline_missed += missed;
      stats_.retries += retries;
      cv_.notify_all();
      idle_cv_.notify_all();
    }
  }

  ServeConfig config_;
  parallel::ThreadPool &pool_;

  mutable std::mutex mu_;
  std::mutex shutdown_mu_;           // serializes concurrent shutdown calls
  std::mutex reload_mu_;             // serializes concurrent weight reloads
  std::condition_variable cv_;       // batcher wakeups (work / replica free)
  std::condition_variable idle_cv_;  // shutdown waits for full drain
  std::deque<Pending> queue_;
  std::vector<Replica> free_;
  std::vector<std::unique_ptr<CircuitBreaker>> breakers_;  // by replica index
  std::array<std::size_t, 3> shed_cap_{};                  // by Priority
  std::function<void(Out &)> corrupter_;
  std::size_t in_flight_ = 0;
  std::uint64_t next_batch_id_ = 0;
  std::uint64_t next_request_seq_ = 0;  // deterministic trace-id index
  bool accepting_ = true;
  bool stop_ = false;
  ServeStats stats_;

  std::thread batcher_;
};

}  // namespace treu::serve
