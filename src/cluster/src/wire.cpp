#include "treu/cluster/wire.hpp"

#include <cstring>

namespace treu::cluster {

const char *to_string(FrameType type) noexcept {
  switch (type) {
    case FrameType::None: return "none";
    case FrameType::Hello: return "hello";
    case FrameType::Request: return "request";
    case FrameType::Response: return "response";
    case FrameType::Error: return "error";
    case FrameType::Heartbeat: return "heartbeat";
    case FrameType::HeartbeatAck: return "heartbeat_ack";
    case FrameType::Drain: return "drain";
    case FrameType::DrainAck: return "drain_ack";
    case FrameType::Reload: return "reload";
    case FrameType::ReloadAck: return "reload_ack";
    case FrameType::Stall: return "stall";
    case FrameType::Shutdown: return "shutdown";
  }
  return "unknown";
}

const char *to_string(WireFailure failure) noexcept {
  switch (failure) {
    case WireFailure::None: return "none";
    case WireFailure::NeedMore: return "need_more";
    case WireFailure::Torn: return "torn";
    case WireFailure::Corrupt: return "corrupt";
  }
  return "unknown";
}

std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes,
                      std::uint64_t seed) noexcept {
  std::uint64_t h = seed;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001B3ULL;
  }
  return h;
}

void put_u32(std::vector<std::uint8_t> &out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::vector<std::uint8_t> &out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_f64(std::vector<std::uint8_t> &out, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

void put_str(std::vector<std::uint8_t> &out, std::string_view s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

namespace {

std::uint32_t read_u32(const std::uint8_t *p) noexcept {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t read_u64(const std::uint8_t *p) noexcept {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

bool valid_type(std::uint8_t t) noexcept {
  return t >= static_cast<std::uint8_t>(FrameType::Hello) &&
         t <= static_cast<std::uint8_t>(FrameType::Shutdown);
}

}  // namespace

bool PayloadReader::u32(std::uint32_t &out) noexcept {
  if (data_.size() - pos_ < 4) return false;
  out = read_u32(data_.data() + pos_);
  pos_ += 4;
  return true;
}

bool PayloadReader::u64(std::uint64_t &out) noexcept {
  if (data_.size() - pos_ < 8) return false;
  out = read_u64(data_.data() + pos_);
  pos_ += 8;
  return true;
}

bool PayloadReader::f64(double &out) noexcept {
  std::uint64_t bits = 0;
  if (!u64(bits)) return false;
  std::memcpy(&out, &bits, sizeof(out));
  return true;
}

bool PayloadReader::str(std::string &out) noexcept {
  std::uint32_t n = 0;
  if (!u32(n)) return false;
  if (data_.size() - pos_ < n) return false;
  out.assign(reinterpret_cast<const char *>(data_.data() + pos_), n);
  pos_ += n;
  return true;
}

std::vector<std::uint8_t> encode_frame(const Frame &frame) {
  std::vector<std::uint8_t> out;
  out.reserve(kWireHeaderSize + frame.payload.size());
  put_u32(out, kWireMagic);
  out.push_back(kWireVersion);
  out.push_back(static_cast<std::uint8_t>(frame.type));
  out.push_back(frame.flags);
  out.push_back(0);  // reserved
  put_u64(out, frame.seq);
  put_u64(out, frame.trace_hi);
  put_u64(out, frame.trace_lo);
  put_u32(out, frame.tenant);
  put_u32(out, static_cast<std::uint32_t>(frame.payload.size()));
  // Checksum covers the 40 header bytes written so far plus the payload.
  std::uint64_t sum = fnv1a64({out.data(), out.size()});
  sum = fnv1a64({frame.payload.data(), frame.payload.size()}, sum);
  put_u64(out, sum);
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
  return out;
}

WireDecodeResult decode_frame(std::span<const std::uint8_t> bytes,
                              std::size_t max_payload) {
  WireDecodeResult r;
  if (bytes.size() < kWireHeaderSize) {
    r.failure = WireFailure::NeedMore;
    return r;
  }
  const std::uint8_t *p = bytes.data();
  if (read_u32(p) != kWireMagic) {
    r.failure = WireFailure::Torn;
    r.error = "wire: bad magic";
    return r;
  }
  if (p[4] != kWireVersion) {
    r.failure = WireFailure::Torn;
    r.error = "wire: unknown version";
    return r;
  }
  if (!valid_type(p[5])) {
    r.failure = WireFailure::Torn;
    r.error = "wire: unknown frame type";
    return r;
  }
  const std::uint32_t payload_len = read_u32(p + 36);
  if (payload_len > max_payload) {
    // An oversized length prefix is structural damage: trusting it would
    // stall the stream forever (or drive an absurd allocation).
    r.failure = WireFailure::Torn;
    r.error = "wire: payload length above bound";
    return r;
  }
  if (bytes.size() < kWireHeaderSize + payload_len) {
    r.failure = WireFailure::NeedMore;
    return r;
  }
  std::uint64_t sum = fnv1a64({p, 40});
  sum = fnv1a64({p + kWireHeaderSize, payload_len}, sum);
  if (sum != read_u64(p + 40)) {
    r.failure = WireFailure::Corrupt;
    r.error = "wire: checksum mismatch";
    return r;
  }
  r.frame.type = static_cast<FrameType>(p[5]);
  r.frame.flags = p[6];
  r.frame.seq = read_u64(p + 8);
  r.frame.trace_hi = read_u64(p + 16);
  r.frame.trace_lo = read_u64(p + 24);
  r.frame.tenant = read_u32(p + 32);
  r.frame.payload.assign(p + kWireHeaderSize,
                         p + kWireHeaderSize + payload_len);
  r.consumed = kWireHeaderSize + payload_len;
  return r;
}

WireDecodeResult FrameDecoder::next() {
  if (poisoned_ != WireFailure::None) {
    WireDecodeResult r;
    r.failure = poisoned_;
    r.error = poison_error_;
    return r;
  }
  WireDecodeResult r = decode_frame({buf_.data(), buf_.size()}, max_payload_);
  if (r.failure == WireFailure::Torn || r.failure == WireFailure::Corrupt) {
    poisoned_ = r.failure;
    poison_error_ = r.error;
    buf_.clear();
    return r;
  }
  if (r.ok()) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(r.consumed));
  }
  return r;
}

}  // namespace treu::cluster
