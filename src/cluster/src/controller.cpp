#include "treu/cluster/controller.hpp"

#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "treu/cluster/ring.hpp"
#include "treu/cluster/worker.hpp"
#include "treu/obs/obs.hpp"

namespace treu::cluster {

namespace {

constexpr std::size_t kNone = kNoWorker;

std::int64_t wall_now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Write one whole frame under the worker's write mutex. Returns false on
/// any socket error (the caller treats that as a dead worker).
bool send_all(int fd, std::mutex &mu, const std::vector<std::uint8_t> &bytes) {
  std::lock_guard lock(mu);
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

struct ClusterController::Impl {
  struct WorkerSlot {
    int pid = -1;
    int fd = -1;
    std::uint64_t gen = 0;  // incarnation; readers/senders verify it
    bool live = false;      // spawned, not declared dead / drained
    bool ready = false;     // Hello received
    bool draining = false;
    bool drained = false;
    bool reaped = false;
    std::size_t restarts = 0;
    std::string weight_hash;
    std::int64_t spawn_us = 0;
    std::int64_t last_ack_us = 0;
    std::int64_t last_hb_us = 0;
    std::uint64_t drain_served = 0;
    std::unique_ptr<std::mutex> write_mu = std::make_unique<std::mutex>();
    std::thread reader;
  };

  struct Entry {
    std::promise<ClusterResponse> promise;
    std::uint32_t tenant = 0;
    serve::Priority priority = serve::Priority::Normal;
    std::vector<std::uint8_t> payload;
    std::vector<std::size_t> chain;  // deterministic shard preference
    std::size_t shard = kNone;       // current dispatch target
    std::size_t attempts = 0;        // dispatches so far
    std::int64_t resend_at_us = -1;  // >= 0: re-dispatch when clock passes
    std::int64_t deadline_us = -1;   // request_timeout for current dispatch
    obs::TraceId trace;
  };

  explicit Impl(const ClusterConfig &cfg)
      : config(cfg),
        ring(std::max<std::size_t>(1, cfg.workers), cfg.vnodes,
             cfg.ring_seed) {
    if (config.worker_kind.empty()) {
      throw std::invalid_argument("cluster: worker_kind is empty");
    }
    if (config.workers == 0) {
      throw std::invalid_argument("cluster: zero workers");
    }
    if (config.max_inflight == 0) {
      throw std::invalid_argument("cluster: zero max_inflight");
    }
    if (config.shed_watermark <= 0.0 || config.shed_watermark > 1.0) {
      throw std::invalid_argument("cluster: shed_watermark outside (0,1]");
    }
    if (config.retry.max_attempts == 0) {
      throw std::invalid_argument("cluster: retry.max_attempts must be >= 1");
    }
    shed_mark = static_cast<std::size_t>(
        config.shed_watermark * static_cast<double>(config.max_inflight));

    workers.reserve(config.workers);
    for (std::size_t s = 0; s < config.workers; ++s) {
      workers.push_back(std::make_unique<WorkerSlot>());
    }
    {
      std::unique_lock lock(mu);
      for (std::size_t s = 0; s < config.workers; ++s) spawn(lock, s);
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::microseconds(config.hello_timeout.count());
      const bool all_ready = cv.wait_until(lock, deadline, [&] {
        for (const auto &w : workers) {
          if (!(w->ready && w->live)) return false;
        }
        return true;
      });
      if (!all_ready) {
        lock.unlock();
        force_teardown();
        throw std::runtime_error("cluster: worker hello timeout");
      }
    }
    monitor = std::thread([this] { monitor_loop(); });
  }

  // ---- time & journal ------------------------------------------------------

  [[nodiscard]] std::int64_t now_us() const {
    return config.clock ? config.clock() : wall_now_us();
  }

  /// Deterministic decisions only; callers hold mu.
  void jot(std::string line) {
    if (config.journal) journal_lines.push_back(std::move(line));
  }

  // ---- spawn / restart -----------------------------------------------------

  /// Spawn (or respawn) the shard's process into its slot. Caller holds mu.
  void spawn(std::unique_lock<std::mutex> &lock, std::size_t shard) {
    WorkerSlot &w = *workers[shard];
    SpawnedWorker sw = spawn_worker(config.worker_kind, shard, config.log_dir,
                                    config.worker_obs, config.worker_args);
    w.pid = sw.pid;
    w.fd = sw.fd;
    ++w.gen;
    w.live = true;
    w.ready = false;
    w.draining = false;
    w.drained = false;
    w.reaped = false;
    w.weight_hash.clear();
    w.spawn_us = now_us();
    w.last_ack_us = w.spawn_us;
    w.last_hb_us = w.spawn_us;
    jot("spawn shard=" + std::to_string(shard));
    TREU_OBS_FR_EVENT(ClusterSpawn, 0, shard,
                      static_cast<std::uint64_t>(sw.pid));
    const std::uint64_t gen = w.gen;
    const int fd = w.fd;
    w.reader = std::thread([this, shard, fd, gen] {
      reader_loop(shard, fd, gen);
    });
    (void)lock;
  }

  /// Fence and replace a shard's incarnation. Caller holds mu; unlocks to
  /// join the old reader. False when the replacement misses its Hello.
  bool restart(std::unique_lock<std::mutex> &lock, std::size_t shard) {
    WorkerSlot &w = *workers[shard];
    if (w.live && w.ready) return true;  // nothing to do
    if (w.pid > 0 && !w.reaped) ::kill(w.pid, SIGKILL);
    if (w.fd >= 0) ::shutdown(w.fd, SHUT_RDWR);
    std::thread old_reader = std::move(w.reader);
    const int old_pid = w.pid;
    const int old_fd = w.fd;
    const bool need_reap = old_pid > 0 && !w.reaped;
    w.reaped = true;  // we reap below, outside the lock
    lock.unlock();
    if (old_reader.joinable()) old_reader.join();
    if (need_reap) {
      int status = 0;
      ::waitpid(old_pid, &status, 0);
    }
    lock.lock();
    if (old_fd >= 0) dead_fds.push_back(old_fd);  // closed at teardown
    w.fd = -1;
    if (stopping || shut) return false;  // shutdown won: don't respawn
    ++w.restarts;
    ++stats.worker_restarts;
    TREU_OBS_COUNTER_ADD("cluster.worker_restarts", 1);
    jot("restart shard=" + std::to_string(shard) +
        " n=" + std::to_string(w.restarts));
    TREU_OBS_FR_EVENT(ClusterRestart, 0, shard, w.restarts);
    spawn(lock, shard);
    const std::uint64_t gen = w.gen;
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::microseconds(config.hello_timeout.count());
    return cv.wait_until(lock, deadline, [&] {
      const WorkerSlot &s = *workers[shard];
      return s.gen == gen && s.ready && s.live;
    });
  }

  // ---- death & failover ----------------------------------------------------

  /// Declare a worker dead and schedule failover for everything in flight
  /// on it. Caller holds mu; never unlocks. Idempotent per incarnation.
  void declare_dead(std::size_t shard, const char *reason) {
    WorkerSlot &w = *workers[shard];
    if (!w.live) return;
    w.live = false;
    w.ready = false;
    ++stats.worker_deaths;
    TREU_OBS_COUNTER_ADD("cluster.worker_deaths", 1);
    jot("dead shard=" + std::to_string(shard) + " reason=" + reason);
    TREU_OBS_FR_EVENT(ClusterWorkerDead, 0, shard, stats.worker_deaths);

    const std::int64_t now = now_us();
    std::vector<std::uint64_t> victims;
    for (const auto &kv : inflight) {
      if (kv.second.shard == shard) victims.push_back(kv.first);
    }
    std::sort(victims.begin(), victims.end());
    for (const std::uint64_t seq : victims) schedule_failover(seq, now);
    TREU_OBS_FR_EVENT(ClusterFailover, 0, shard, victims.size());
    cv.notify_all();
    monitor_cv.notify_all();
  }

  /// Re-dispatch (after deterministic backoff) or fail one in-flight
  /// entry whose current dispatch is lost. Caller holds mu.
  void schedule_failover(std::uint64_t seq, std::int64_t now) {
    const auto it = inflight.find(seq);
    if (it == inflight.end()) return;
    Entry &e = it->second;
    if (e.attempts >= config.retry.max_attempts) {
      fail_entry(it, "cluster: dispatch attempts exhausted");
      return;
    }
    ++stats.failovers;
    TREU_OBS_COUNTER_ADD("cluster.failover_total", 1);
    const auto delay =
        serve::backoff_delay(config.retry, e.attempts - 1, seq);
    e.shard = kNone;
    e.resend_at_us = now + delay.count();
    e.deadline_us = -1;
    jot("failover seq=" + std::to_string(seq) +
        " next_attempt=" + std::to_string(e.attempts + 1));
    TREU_OBS_FR_EVENT(ClusterRetry, e.trace.lo, kNone, e.attempts + 1);
  }

  using EntryMap = std::unordered_map<std::uint64_t, Entry>;

  /// Resolve an entry as failed and erase it. Caller holds mu.
  void fail_entry(EntryMap::iterator it, const std::string &why) {
    Entry &e = it->second;
    ++stats.failed;
    ++stats.tenants[e.tenant].failed;
    tenant_inflight[e.tenant]--;
    TREU_OBS_COUNTER_ADD("cluster.failed_total", 1);
    TREU_OBS_GAUGE_ADD("cluster.inflight", -1);
    jot("fail seq=" + std::to_string(it->first) + " why=" + why);
    TREU_OBS_FR_EVENT(ClusterRequestFail, e.trace.lo, e.shard, e.attempts);
    e.promise.set_exception(std::make_exception_ptr(ClusterFailedError(why)));
    inflight.erase(it);
    cv.notify_all();
  }

  // ---- dispatch ------------------------------------------------------------

  [[nodiscard]] bool routable(std::size_t shard) const {
    const WorkerSlot &w = *workers[shard];
    return w.live && w.ready && !w.draining;
  }

  /// A dead/unready shard that could come back (pending Hello, or an
  /// auto-restart with budget left) — reason to defer rather than fail.
  [[nodiscard]] bool recovery_possible() const {
    for (const auto &w : workers) {
      if (w->live && !w->ready) return true;
      if (!w->live && !w->drained && config.auto_restart &&
          w->restarts < config.max_restarts) {
        return true;
      }
    }
    return false;
  }

  /// Dispatch (or re-dispatch) one entry to the first routable shard in
  /// its chain. Caller holds `lock` on mu; the socket write happens with
  /// mu released, so entry state must be re-derived afterwards.
  void dispatch(std::unique_lock<std::mutex> &lock, std::uint64_t seq) {
    auto it = inflight.find(seq);
    if (it == inflight.end()) return;  // resolved while we weren't looking
    Entry &e = it->second;

    std::size_t target = kNone;
    for (const std::size_t s : e.chain) {
      if (routable(s)) {
        target = s;
        break;
      }
    }
    if (target == kNone) {
      if (recovery_possible()) {
        // Don't burn an attempt on an empty fleet mid-restart; check back.
        e.resend_at_us = now_us() + 2000;
        return;
      }
      fail_entry(it, "cluster: no live workers");
      return;
    }

    ++e.attempts;
    e.shard = target;
    e.resend_at_us = -1;
    e.deadline_us = config.request_timeout.count() > 0
                        ? now_us() + config.request_timeout.count()
                        : -1;
    if (e.attempts > 1) {
      ++stats.retries;
      TREU_OBS_COUNTER_ADD("cluster.retry_total", 1);
    }
    jot("dispatch seq=" + std::to_string(seq) +
        " shard=" + std::to_string(target) +
        " attempt=" + std::to_string(e.attempts));
    TREU_OBS_FR_EVENT(ClusterDispatch, e.trace.lo, target, e.attempts);

    if (config.injector != nullptr) {
      const fault::FaultDecision d = config.injector->decide(target, 1);
      ++fault_events;
      if (d.kind == fault::FaultKind::WorkerKill) {
        ++stats.kills_injected;
        TREU_OBS_COUNTER_ADD("cluster.kills_injected", 1);
        jot("kill shard=" + std::to_string(target) + " injected");
        TREU_OBS_FR_EVENT(ClusterKillInjected, e.trace.lo, target,
                          fault_events);
        WorkerSlot &w = *workers[target];
        if (w.pid > 0 && !w.reaped) ::kill(w.pid, SIGKILL);
        // Synchronous failover keeps the schedule a pure function of the
        // plan: this very entry (shard == target, no resend pending) is
        // rescheduled by declare_dead, not by a racy EOF.
        declare_dead(target, "killed");
        return;
      }
      if (d.kind == fault::FaultKind::LinkDrop) {
        ++stats.link_drops_injected;
        TREU_OBS_COUNTER_ADD("cluster.link_drops_injected", 1);
        jot("drop seq=" + std::to_string(seq) +
            " shard=" + std::to_string(target) + " injected");
        TREU_OBS_FR_EVENT(ClusterLinkDrop, e.trace.lo, target, fault_events);
        // The frame vanishes on the wire: never written. request_timeout
        // (or this worker later dying) recovers the entry.
        return;
      }
      if (d.kind == fault::FaultKind::WorkerStall) {
        ++stats.stalls_injected;
        TREU_OBS_COUNTER_ADD("cluster.stalls_injected", 1);
        const auto us = static_cast<std::uint64_t>(d.stall.count());
        jot("stall shard=" + std::to_string(target) +
            " us=" + std::to_string(us) + " injected");
        TREU_OBS_FR_EVENT(ClusterStallInjected, e.trace.lo, target, us);
        Frame stall;
        stall.type = FrameType::Stall;
        stall.seq = next_ctrl_seq++;
        put_u64(stall.payload, us);
        if (!send_frame(lock, target, stall)) {
          // Refetch: the failed send declared the target dead, which
          // already rescheduled this entry.
          return;
        }
        it = inflight.find(seq);
        if (it == inflight.end() || it->second.shard != target) return;
      }
      // In-process kinds (Throw/Stall-as-model-fault/Corrupt/Blackout)
      // belong to the worker's own injector; at this level they are None.
    }

    Frame f;
    f.type = FrameType::Request;
    f.flags = static_cast<std::uint8_t>(it->second.priority);
    f.seq = seq;
    f.trace_hi = it->second.trace.hi;
    f.trace_lo = it->second.trace.lo;
    f.tenant = it->second.tenant;
    f.payload = it->second.payload;
    (void)send_frame(lock, target, f);
    // On failure send_frame declared the worker dead and this entry is
    // already rescheduled (or failed); nothing more to do either way.
  }

  /// Encode and write one frame to a shard, releasing mu around the socket
  /// write. Declares the shard dead on write failure. Returns success.
  bool send_frame(std::unique_lock<std::mutex> &lock, std::size_t shard,
                  const Frame &frame) {
    WorkerSlot &w = *workers[shard];
    const int fd = w.fd;
    const std::uint64_t gen = w.gen;
    std::mutex *wmu = w.write_mu.get();
    if (fd < 0 || !w.live) return false;
    const std::vector<std::uint8_t> bytes = encode_frame(frame);
    lock.unlock();
    const bool ok = send_all(fd, *wmu, bytes);
    lock.lock();
    if (!ok) {
      WorkerSlot &now_w = *workers[shard];
      if (now_w.gen == gen && now_w.live) declare_dead(shard, "send-error");
    }
    return ok;
  }

  // ---- reader --------------------------------------------------------------

  void reader_loop(std::size_t shard, int fd, std::uint64_t gen) {
    FrameDecoder decoder(config.max_payload);
    std::uint8_t buf[4096];
    for (;;) {
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {
        std::lock_guard lock(mu);
        if (workers[shard]->gen == gen) declare_dead(shard, "eof");
        return;
      }
      decoder.feed({buf, static_cast<std::size_t>(n)});
      for (;;) {
        WireDecodeResult r = decoder.next();
        if (r.failure == WireFailure::NeedMore) break;
        if (!r.ok()) {
          std::lock_guard lock(mu);
          const bool torn = r.failure == WireFailure::Torn;
          if (torn) {
            ++stats.frames_torn;
            TREU_OBS_COUNTER_ADD("cluster.frames_torn", 1);
          } else {
            ++stats.frames_corrupt;
            TREU_OBS_COUNTER_ADD("cluster.frames_corrupt", 1);
          }
          TREU_OBS_FR_EVENT(ClusterFrameError, 0, shard, torn ? 0 : 1);
          if (workers[shard]->gen == gen) {
            declare_dead(shard, torn ? "torn-stream" : "corrupt-stream");
          }
          ::shutdown(fd, SHUT_RDWR);
          return;
        }
        handle_frame(shard, gen, r.frame);
      }
    }
  }

  void handle_frame(std::size_t shard, std::uint64_t gen, const Frame &f) {
    std::unique_lock lock(mu);
    WorkerSlot &w = *workers[shard];
    if (w.gen != gen) return;  // a previous incarnation's stream
    switch (f.type) {
      case FrameType::Hello: {
        PayloadReader r({f.payload.data(), f.payload.size()});
        std::uint64_t pid = 0;
        std::uint32_t hello_shard = 0;
        std::string hash;
        if (r.u64(pid) && r.u32(hello_shard) && r.str(hash)) {
          w.weight_hash = std::move(hash);
        }
        w.ready = true;
        const std::int64_t now = now_us();
        w.last_ack_us = now;
        w.last_hb_us = now;
        TREU_OBS_FR_EVENT(ClusterHello, 0, shard,
                          static_cast<std::uint64_t>(w.pid));
        cv.notify_all();
        break;
      }
      case FrameType::HeartbeatAck:
        w.last_ack_us = now_us();
        break;
      case FrameType::Response: {
        const auto it = inflight.find(f.seq);
        if (it == inflight.end()) {
          ++stats.duplicate_responses;
          TREU_OBS_COUNTER_ADD("cluster.duplicate_responses", 1);
          break;
        }
        Entry &e = it->second;
        ClusterResponse resp;
        resp.payload = f.payload;
        resp.shard = shard;
        resp.attempts = e.attempts;
        resp.trace = e.trace;
        ++stats.fulfilled;
        ++stats.tenants[e.tenant].fulfilled;
        tenant_inflight[e.tenant]--;
        TREU_OBS_COUNTER_ADD("cluster.fulfilled_total", 1);
        TREU_OBS_GAUGE_ADD("cluster.inflight", -1);
        jot("fulfill seq=" + std::to_string(f.seq) +
            " shard=" + std::to_string(shard) +
            " attempts=" + std::to_string(e.attempts));
        TREU_OBS_FR_EVENT(ClusterFulfill, e.trace.lo, shard, e.attempts);
        e.promise.set_value(std::move(resp));
        inflight.erase(it);
        cv.notify_all();
        break;
      }
      case FrameType::Error: {
        const auto it = inflight.find(f.seq);
        if (it == inflight.end()) {
          ++stats.duplicate_responses;
          TREU_OBS_COUNTER_ADD("cluster.duplicate_responses", 1);
          break;
        }
        PayloadReader r({f.payload.data(), f.payload.size()});
        std::string why;
        if (!r.str(why)) why = "worker error (payload undecodable)";
        jot("workerfail seq=" + std::to_string(f.seq) +
            " shard=" + std::to_string(shard));
        // A worker-side failure is terminal, not retried: the worker's own
        // BatchServer already applied its retry budget, so the outcome is
        // the request's one deterministic resolution.
        fail_entry(it, "cluster: worker failed request: " + why);
        break;
      }
      case FrameType::DrainAck: {
        PayloadReader r({f.payload.data(), f.payload.size()});
        std::uint64_t served = 0;
        (void)r.u64(served);
        w.drain_served = served;
        w.drained = true;
        w.live = false;
        jot("drain shard=" + std::to_string(shard) +
            " served=" + std::to_string(served));
        TREU_OBS_FR_EVENT(ClusterDrain, 0, shard, served);
        cv.notify_all();
        break;
      }
      case FrameType::ReloadAck: {
        const auto it = pending_reloads.find(f.seq);
        if (it == pending_reloads.end()) break;
        PayloadReader r({f.payload.data(), f.payload.size()});
        ReloadOutcome out;
        out.ok = (f.flags & 1) != 0;
        (void)r.str(out.error);
        (void)r.str(out.weight_hash);
        if (out.ok && !out.weight_hash.empty()) {
          w.weight_hash = out.weight_hash;
        }
        jot("reload shard=" + std::to_string(shard) +
            " ok=" + std::to_string(out.ok ? 1 : 0));
        TREU_OBS_FR_EVENT(ClusterReload, 0, shard, out.ok ? 1 : 0);
        it->second.set_value(std::move(out));
        pending_reloads.erase(it);
        break;
      }
      default:
        break;  // worker-bound frame types arriving here: ignore
    }
  }

  // ---- monitor -------------------------------------------------------------

  void monitor_loop() {
    std::unique_lock lock(mu);
    while (!stopping) {
      monitor_cv.wait_for(lock, std::chrono::milliseconds(1));
      if (stopping) return;
      tick(lock);
    }
  }

  void tick(std::unique_lock<std::mutex> &lock) {
    const std::int64_t now = now_us();

    // Failure detection + heartbeat cadence.
    for (std::size_t s = 0; s < workers.size(); ++s) {
      WorkerSlot &w = *workers[s];
      if (!w.live) continue;
      if (!w.ready) {
        if (now - w.spawn_us > config.hello_timeout.count()) {
          declare_dead(s, "hello-timeout");
        }
        continue;
      }
      if (w.draining) continue;
      // Silence only means death while heartbeats are actually being sent.
      if (config.heartbeat_interval.count() > 0 &&
          config.heartbeat_timeout.count() > 0 &&
          now - w.last_ack_us > config.heartbeat_timeout.count()) {
        ++stats.heartbeat_misses;
        TREU_OBS_COUNTER_ADD("cluster.heartbeat_miss", 1);
        TREU_OBS_FR_EVENT(ClusterHeartbeatMiss, 0, s,
                          static_cast<std::uint64_t>(now - w.last_ack_us));
        declare_dead(s, "heartbeat");
        continue;
      }
      if (config.heartbeat_interval.count() > 0 &&
          now - w.last_hb_us >= config.heartbeat_interval.count()) {
        w.last_hb_us = now;
        Frame hb;
        hb.type = FrameType::Heartbeat;
        hb.seq = next_ctrl_seq++;
        (void)send_frame(lock, s, hb);
        // send_frame unlocked: the worker set is index-stable, but slot
        // state may have moved on; the loop re-reads every field it needs.
      }
    }

    // Per-dispatch deadlines (LinkDrop / silent-worker recovery).
    std::vector<std::uint64_t> expired;
    for (const auto &kv : inflight) {
      const Entry &e = kv.second;
      if (e.deadline_us >= 0 && e.resend_at_us < 0 && now > e.deadline_us) {
        expired.push_back(kv.first);
      }
    }
    std::sort(expired.begin(), expired.end());
    for (const std::uint64_t seq : expired) {
      const auto it = inflight.find(seq);
      if (it == inflight.end()) continue;
      ++stats.timeouts;
      TREU_OBS_COUNTER_ADD("cluster.timeouts", 1);
      jot("timeout seq=" + std::to_string(seq) +
          " shard=" + std::to_string(it->second.shard));
      schedule_failover(seq, now);
    }

    // Due resends.
    std::vector<std::uint64_t> due;
    for (const auto &kv : inflight) {
      if (kv.second.resend_at_us >= 0 && now >= kv.second.resend_at_us) {
        due.push_back(kv.first);
      }
    }
    std::sort(due.begin(), due.end());
    for (const std::uint64_t seq : due) dispatch(lock, seq);

    // Auto-restart of dead shards.
    if (config.auto_restart && !stopping) {
      for (std::size_t s = 0; s < workers.size(); ++s) {
        WorkerSlot &w = *workers[s];
        if (!w.live && !w.drained && w.restarts < config.max_restarts) {
          (void)restart(lock, s);
        }
      }
    }
  }

  // ---- teardown ------------------------------------------------------------

  /// Constructor-failure path: no monitor running, nothing in flight.
  void force_teardown() {
    {
      std::lock_guard lock(mu);
      for (auto &w : workers) {
        if (w->pid > 0 && !w->reaped) ::kill(w->pid, SIGKILL);
        if (w->fd >= 0) ::shutdown(w->fd, SHUT_RDWR);
      }
    }
    for (auto &w : workers) {
      if (w->reader.joinable()) w->reader.join();
    }
    for (auto &w : workers) {
      if (w->pid > 0 && !w->reaped) {
        int status = 0;
        ::waitpid(w->pid, &status, 0);
        w->reaped = true;
      }
      if (w->fd >= 0) {
        ::close(w->fd);
        w->fd = -1;
      }
    }
  }

  ClusterConfig config;
  HashRing ring;
  std::size_t shed_mark = 0;

  mutable std::mutex mu;
  std::condition_variable cv;          // hellos, drains, inflight resolution
  std::condition_variable monitor_cv;  // monitor wakeups
  std::vector<std::unique_ptr<WorkerSlot>> workers;
  std::vector<int> dead_fds;  // replaced incarnations; closed at teardown
  EntryMap inflight;
  std::unordered_map<std::uint32_t, std::size_t> tenant_inflight;
  std::unordered_map<std::uint64_t, std::promise<ReloadOutcome>>
      pending_reloads;
  std::uint64_t next_seq = 0;
  std::uint64_t next_ctrl_seq = 1;
  std::uint64_t fault_events = 0;  // injector consults so far
  bool accepting = true;
  bool stopping = false;
  bool shut = false;
  ClusterStats stats;
  std::vector<std::string> journal_lines;

  std::thread monitor;
};

// ---- public surface --------------------------------------------------------

ClusterController::ClusterController(const ClusterConfig &config)
    : impl_(std::make_unique<Impl>(config)) {}

ClusterController::~ClusterController() { shutdown(); }

std::future<ClusterResponse> ClusterController::submit(
    std::uint32_t tenant, serve::Priority priority,
    std::vector<std::uint8_t> payload) {
  Impl &im = *impl_;
  std::promise<ClusterResponse> rejected_promise;
  std::unique_lock lock(im.mu);
  const std::uint64_t seq = im.next_seq++;
  const obs::TraceId trace = obs::derive_trace_id(im.config.trace_seed, seq);
  ++im.stats.submitted;
  ++im.stats.tenants[tenant].submitted;
  TREU_OBS_COUNTER_ADD("cluster.submitted_total", 1);

  if (!im.accepting || im.inflight.size() >= im.config.max_inflight) {
    ++im.stats.rejected;
    ++im.stats.tenants[tenant].rejected;
    TREU_OBS_COUNTER_ADD("cluster.rejected_total", 1);
    im.jot("reject seq=" + std::to_string(seq));
    TREU_OBS_FR_EVENT(ClusterReject, trace.lo, tenant, im.inflight.size());
    rejected_promise.set_exception(std::make_exception_ptr(
        ClusterRejectedError(im.accepting ? "cluster: max_inflight reached"
                                          : "cluster: shut down")));
    return rejected_promise.get_future();
  }

  if (priority != serve::Priority::High && im.config.shed_watermark < 1.0 &&
      im.inflight.size() >= im.shed_mark) {
    // Fair share of the watermark across currently-active tenants: a
    // tenant already holding its share is shed so the others keep moving
    // through a failover storm.
    std::size_t active = 0;
    for (const auto &kv : im.tenant_inflight) {
      if (kv.second > 0) ++active;
    }
    const std::size_t mine = im.tenant_inflight[tenant];
    if (mine == 0) ++active;
    const std::size_t fair = std::max<std::size_t>(
        1, im.shed_mark / std::max<std::size_t>(1, active));
    if (mine >= fair) {
      ++im.stats.shed;
      ++im.stats.tenants[tenant].shed;
      TREU_OBS_COUNTER_ADD("cluster.shed_total", 1);
      im.jot("shed seq=" + std::to_string(seq) +
             " tenant=" + std::to_string(tenant));
      TREU_OBS_FR_EVENT(ClusterShed, trace.lo, tenant, mine);
      rejected_promise.set_exception(std::make_exception_ptr(
          ClusterShedError("cluster: tenant over fair share")));
      return rejected_promise.get_future();
    }
  }

  ++im.stats.admitted;
  im.tenant_inflight[tenant]++;
  TREU_OBS_GAUGE_ADD("cluster.inflight", 1);
  Impl::Entry e;
  std::future<ClusterResponse> fut = e.promise.get_future();
  e.tenant = tenant;
  e.priority = priority;
  e.payload = std::move(payload);
  e.chain = im.ring.chain(seq);
  e.trace = trace;
  im.inflight.emplace(seq, std::move(e));
  im.jot("submit seq=" + std::to_string(seq) +
         " tenant=" + std::to_string(tenant));
  im.dispatch(lock, seq);
  return fut;
}

void ClusterController::shutdown() {
  Impl &im = *impl_;
  {
    std::unique_lock lock(im.mu);
    if (im.shut) return;
    im.accepting = false;

    // Resolve everything in flight; the monitor keeps recovering workers
    // meanwhile. After drain_timeout the stragglers fail deterministically
    // rather than hanging shutdown forever.
    const auto wall_deadline =
        std::chrono::steady_clock::now() +
        std::chrono::microseconds(im.config.drain_timeout.count());
    while (!im.inflight.empty() &&
           std::chrono::steady_clock::now() < wall_deadline) {
      im.cv.wait_for(lock, std::chrono::milliseconds(1));
    }
    if (!im.inflight.empty()) {
      std::vector<std::uint64_t> seqs;
      for (const auto &kv : im.inflight) seqs.push_back(kv.first);
      std::sort(seqs.begin(), seqs.end());
      for (const std::uint64_t seq : seqs) {
        const auto it = im.inflight.find(seq);
        if (it != im.inflight.end()) {
          im.fail_entry(it, "cluster: shut down before fulfillment");
        }
      }
    }
    im.stopping = true;
    im.monitor_cv.notify_all();
  }
  if (im.monitor.joinable()) im.monitor.join();

  {
    std::unique_lock lock(im.mu);
    // Graceful drain of live workers; declared-dead-but-running workers
    // (stalled ones) and non-ackers get the SIGKILL fence below.
    std::vector<std::size_t> draining;
    for (std::size_t s = 0; s < im.workers.size(); ++s) {
      Impl::WorkerSlot &w = *im.workers[s];
      if (w.live && w.ready && !w.drained) {
        w.draining = true;
        Frame f;
        f.type = FrameType::Drain;
        f.seq = im.next_ctrl_seq++;
        if (im.send_frame(lock, s, f)) draining.push_back(s);
      }
    }
    const auto wall_deadline =
        std::chrono::steady_clock::now() +
        std::chrono::microseconds(im.config.drain_timeout.count());
    im.cv.wait_until(lock, wall_deadline, [&] {
      for (const std::size_t s : draining) {
        // A worker that died instead of acking (-> !live) is done waiting.
        if (!im.workers[s]->drained && im.workers[s]->live) return false;
      }
      return true;
    });
    for (auto &w : im.workers) {
      if (w->pid > 0 && !w->reaped && !w->drained) ::kill(w->pid, SIGKILL);
      if (w->fd >= 0) ::shutdown(w->fd, SHUT_RDWR);
    }
  }
  for (auto &w : im.workers) {
    if (w->reader.joinable()) w->reader.join();
  }
  {
    std::lock_guard lock(im.mu);
    for (auto &w : im.workers) {
      if (w->pid > 0 && !w->reaped) {
        int status = 0;
        ::waitpid(w->pid, &status, 0);
        w->reaped = true;
      }
      if (w->fd >= 0) {
        ::close(w->fd);
        w->fd = -1;
      }
    }
    for (const int fd : im.dead_fds) ::close(fd);
    im.dead_fds.clear();
    im.shut = true;
  }
}

bool ClusterController::drain_worker(std::size_t shard) {
  Impl &im = *impl_;
  std::unique_lock lock(im.mu);
  if (shard >= im.workers.size()) {
    throw std::out_of_range("cluster: shard out of range");
  }
  Impl::WorkerSlot &w = *im.workers[shard];
  if (!w.live || !w.ready) return false;
  w.draining = true;
  im.jot("drainreq shard=" + std::to_string(shard));

  // Let its in-flight work finish (responses resolve entries) before the
  // Drain control frame, so the worker's stop() has nothing queued that
  // the controller still needs.
  const auto wall_deadline =
      std::chrono::steady_clock::now() +
      std::chrono::microseconds(im.config.drain_timeout.count());
  im.cv.wait_until(lock, wall_deadline, [&] {
    for (const auto &kv : im.inflight) {
      if (kv.second.shard == shard) return false;
    }
    return true;
  });

  Frame f;
  f.type = FrameType::Drain;
  f.seq = im.next_ctrl_seq++;
  if (!im.send_frame(lock, shard, f)) return false;
  const std::uint64_t gen = w.gen;
  im.cv.wait_until(lock, wall_deadline, [&] {
    const Impl::WorkerSlot &s = *im.workers[shard];
    return s.gen != gen || s.drained || !s.live;
  });
  return im.workers[shard]->gen == gen && im.workers[shard]->drained;
}

bool ClusterController::restart_worker(std::size_t shard) {
  Impl &im = *impl_;
  std::unique_lock lock(im.mu);
  if (shard >= im.workers.size()) {
    throw std::out_of_range("cluster: shard out of range");
  }
  return im.restart(lock, shard);
}

ReloadOutcome ClusterController::reload_worker(std::size_t shard,
                                               const std::string &path,
                                               const std::string &digest) {
  Impl &im = *impl_;
  std::future<ReloadOutcome> fut;
  {
    std::unique_lock lock(im.mu);
    if (shard >= im.workers.size()) {
      throw std::out_of_range("cluster: shard out of range");
    }
    Impl::WorkerSlot &w = *im.workers[shard];
    if (!w.live || !w.ready) {
      return {false, "cluster: worker not live", w.weight_hash};
    }
    const std::uint64_t seq = im.next_ctrl_seq++;
    fut = im.pending_reloads[seq].get_future();
    Frame f;
    f.type = FrameType::Reload;
    f.seq = seq;
    put_str(f.payload, path);
    put_str(f.payload, digest);
    if (!im.send_frame(lock, shard, f)) {
      im.pending_reloads.erase(seq);
      return {false, "cluster: reload send failed", w.weight_hash};
    }
  }
  const auto status = fut.wait_for(
      std::chrono::microseconds(im.config.drain_timeout.count()));
  if (status != std::future_status::ready) {
    return {false, "cluster: reload ack timeout", ""};
  }
  return fut.get();
}

void ClusterController::kill_worker(std::size_t shard) {
  Impl &im = *impl_;
  std::lock_guard lock(im.mu);
  if (shard >= im.workers.size()) {
    throw std::out_of_range("cluster: shard out of range");
  }
  Impl::WorkerSlot &w = *im.workers[shard];
  im.jot("kill shard=" + std::to_string(shard) + " manual");
  if (w.pid > 0 && !w.reaped) ::kill(w.pid, SIGKILL);
  // Detection runs through the normal machinery: the reader's EOF (or a
  // heartbeat miss) declares the death and fails over in-flight work.
}

void ClusterController::pump() {
  Impl &im = *impl_;
  std::unique_lock lock(im.mu);
  im.tick(lock);
}

ClusterStats ClusterController::stats() const {
  const Impl &im = *impl_;
  std::lock_guard lock(im.mu);
  ClusterStats s = im.stats;
  s.inflight = im.inflight.size();
  return s;
}

WorkerInfo ClusterController::worker(std::size_t shard) const {
  const Impl &im = *impl_;
  std::lock_guard lock(im.mu);
  if (shard >= im.workers.size()) {
    throw std::out_of_range("cluster: shard out of range");
  }
  const Impl::WorkerSlot &w = *im.workers[shard];
  WorkerInfo info;
  info.pid = w.pid;
  info.live = w.live;
  info.ready = w.ready;
  info.draining = w.draining;
  info.drained = w.drained;
  info.restarts = w.restarts;
  info.weight_hash = w.weight_hash;
  return info;
}

std::vector<std::string> ClusterController::journal() const {
  const Impl &im = *impl_;
  std::lock_guard lock(im.mu);
  return im.journal_lines;
}

const ClusterConfig &ClusterController::config() const noexcept {
  return impl_->config;
}

}  // namespace treu::cluster
