#include "treu/cluster/worker.hpp"

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "treu/obs/obs.hpp"

namespace treu::cluster {

namespace {

std::map<std::string, WorkerFactory> &registry() {
  static std::map<std::string, WorkerFactory> r;
  return r;
}

/// The worker's half of the socket: one mutex serializes the reader's
/// control acks with the service's reply thread. Failed writes are dropped
/// silently — a vanished controller has already accounted for us.
class Channel {
 public:
  explicit Channel(int fd) : fd_(fd) {}

  void send_frame(const Frame &frame) {
    const std::vector<std::uint8_t> bytes = encode_frame(frame);
    std::lock_guard lock(mu_);
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                               MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return;
      }
      off += static_cast<std::size_t>(n);
    }
  }

 private:
  int fd_;
  std::mutex mu_;
};

struct WorkerArgs {
  std::string kind;
  int fd = -1;
  std::size_t shard = 0;
  std::string log_dir;
  bool obs = false;
  std::vector<std::string> extra;
  bool is_worker = false;
  bool valid = true;
};

WorkerArgs parse_worker_args(int argc, char **argv) {
  WorkerArgs a;
  int i = 1;
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--treu-cluster-worker") {
      a.is_worker = true;
      if (++i >= argc) { a.valid = false; return a; }
      a.kind = argv[i];
    } else if (arg == "--treu-cluster-fd") {
      if (++i >= argc) { a.valid = false; return a; }
      a.fd = std::atoi(argv[i]);
    } else if (arg == "--treu-cluster-shard") {
      if (++i >= argc) { a.valid = false; return a; }
      a.shard = static_cast<std::size_t>(std::atoll(argv[i]));
    } else if (arg == "--treu-cluster-log-dir") {
      if (++i >= argc) { a.valid = false; return a; }
      a.log_dir = argv[i];
    } else if (arg == "--treu-cluster-obs") {
      a.obs = true;
    } else if (arg == "--treu-cluster-extra") {
      for (++i; i < argc; ++i) a.extra.emplace_back(argv[i]);
      break;
    } else if (a.is_worker) {
      a.valid = false;  // unknown flag in a worker invocation
      return a;
    }
  }
  if (a.is_worker && a.fd < 0) a.valid = false;
  return a;
}

int run_worker(const WorkerArgs &args) {
  const auto it = registry().find(args.kind);
  if (it == registry().end()) {
    std::fprintf(stderr, "treu-cluster-worker: unknown kind '%s'\n",
                 args.kind.c_str());
    return 3;
  }

  WorkerStartup startup;
  startup.shard = args.shard;
  startup.log_dir = args.log_dir;
  startup.extra_args = args.extra;

  std::unique_ptr<WorkerService> service;
  try {
    service = it->second(startup);
  } catch (const std::exception &e) {
    std::fprintf(stderr, "treu-cluster-worker[%zu]: factory threw: %s\n",
                 args.shard, e.what());
    return 4;
  }
  if (!service) {
    std::fprintf(stderr, "treu-cluster-worker[%zu]: factory returned null\n",
                 args.shard);
    return 4;
  }

  Channel channel(args.fd);
  const std::size_t shard = args.shard;
  service->start([&channel, shard](const WorkerReply &reply) {
    Frame f;
    f.type = reply.ok ? FrameType::Response : FrameType::Error;
    f.flags = reply.ok ? 1 : 0;
    f.seq = reply.seq;
    f.trace_hi = reply.trace_hi;
    f.trace_lo = reply.trace_lo;
    f.tenant = reply.tenant;
    if (reply.ok) {
      f.payload = reply.payload;
    } else {
      put_str(f.payload, reply.error);
    }
    TREU_OBS_FR_EVENT(ClusterWorkerReply, reply.trace_lo, shard,
                      reply.ok ? 1 : 0);
    channel.send_frame(f);
  });

  {
    Frame hello;
    hello.type = FrameType::Hello;
    put_u64(hello.payload, static_cast<std::uint64_t>(::getpid()));
    put_u32(hello.payload, static_cast<std::uint32_t>(shard));
    put_str(hello.payload, service->weight_hash());
    channel.send_frame(hello);
  }

  FrameDecoder decoder;
  std::uint8_t buf[4096];
  int exit_code = 0;
  bool running = true;
  while (running) {
    const ssize_t n = ::recv(args.fd, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // controller side torn down
    }
    if (n == 0) break;  // EOF: controller gone — drain and leave
    decoder.feed({buf, static_cast<std::size_t>(n)});
    for (;;) {
      WireDecodeResult r = decoder.next();
      if (r.failure == WireFailure::NeedMore) break;
      if (!r.ok()) {
        // A controller that corrupts its own stream is unrecoverable.
        std::fprintf(stderr, "treu-cluster-worker[%zu]: %s\n", shard,
                     r.error.c_str());
        exit_code = 2;
        running = false;
        break;
      }
      const Frame &f = r.frame;
      switch (f.type) {
        case FrameType::Request: {
          TREU_OBS_FR_EVENT(ClusterWorkerRecv, f.trace_lo, shard, f.tenant);
          service->handle_request(f);
          break;
        }
        case FrameType::Heartbeat: {
          Frame ack;
          ack.type = FrameType::HeartbeatAck;
          ack.seq = f.seq;
          channel.send_frame(ack);
          break;
        }
        case FrameType::Stall: {
          // Injected: freeze this event loop. Heartbeats queue up unacked,
          // which is exactly how the controller notices.
          PayloadReader pr({f.payload.data(), f.payload.size()});
          std::uint64_t us = 0;
          (void)pr.u64(us);
          std::this_thread::sleep_for(std::chrono::microseconds(us));
          break;
        }
        case FrameType::Reload: {
          PayloadReader pr({f.payload.data(), f.payload.size()});
          std::string path;
          std::string digest;
          std::string error;
          bool ok = pr.str(path) && pr.str(digest);
          if (!ok) {
            error = "reload payload malformed";
          } else {
            ok = service->reload(path, digest, error);
          }
          Frame ack;
          ack.type = FrameType::ReloadAck;
          ack.flags = ok ? 1 : 0;
          ack.seq = f.seq;
          put_str(ack.payload, error);
          put_str(ack.payload, service->weight_hash());
          channel.send_frame(ack);
          break;
        }
        case FrameType::Drain: {
          service->stop();  // finish everything in flight first
          Frame ack;
          ack.type = FrameType::DrainAck;
          ack.seq = f.seq;
          put_u64(ack.payload, service->served());
          channel.send_frame(ack);
          running = false;
          break;
        }
        case FrameType::Shutdown:
          // Exit now, no drain: abandoned work was already failed over on
          // the controller side, so unwinding would only slow the reaper.
          std::_Exit(0);
        default:
          break;  // controller-bound frame types: ignore
      }
      if (!running) break;
    }
  }
  service->stop();
  if (args.obs && !args.log_dir.empty()) {
    obs::FlightRecorder::global().dump(
        args.log_dir + "/worker-" + std::to_string(shard) + ".flight.json",
        "cluster-worker-" + std::to_string(shard));
  }
  return exit_code;
}

}  // namespace

void register_worker(const std::string &kind, WorkerFactory factory) {
  registry()[kind] = std::move(factory);
}

int maybe_run_worker(int argc, char **argv) {
  WorkerArgs args = parse_worker_args(argc, argv);
  if (!args.is_worker) return -1;
  if (!args.valid) {
    std::fprintf(stderr, "treu-cluster-worker: malformed worker argv\n");
    return 5;
  }
  if (!args.log_dir.empty()) {
    const std::string path =
        args.log_dir + "/worker-" + std::to_string(args.shard) + ".log";
    // Capture the worker's stdout/stderr for post-mortem (soak preserves
    // these on failure). Best effort: a bad dir leaves output on the
    // inherited descriptors.
    if (std::freopen(path.c_str(), "a", stdout) != nullptr) {
      ::dup2(::fileno(stdout), 2);
    }
    std::setvbuf(stdout, nullptr, _IOLBF, 0);
  }
#if TREU_OBS_ENABLED
  if (args.obs) obs::FlightRecorder::global().set_enabled(true);
#endif
  return run_worker(args);
}

SpawnedWorker spawn_worker(const std::string &kind, std::size_t shard,
                           const std::string &log_dir, bool worker_obs,
                           const std::vector<std::string> &extra_args) {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, fds) != 0) {
    throw std::runtime_error("spawn_worker: socketpair failed");
  }
  const int parent_fd = fds[0];
  const int child_fd = fds[1];

  // Everything the child needs is materialized BEFORE fork: between fork
  // and exec only async-signal-safe calls are allowed in a process that
  // runs threads (this one does — thread pools, reader threads).
  std::vector<std::string> args;
  args.emplace_back("treu-cluster-worker");
  args.emplace_back("--treu-cluster-worker");
  args.push_back(kind);
  args.emplace_back("--treu-cluster-fd");
  args.push_back(std::to_string(child_fd));
  args.emplace_back("--treu-cluster-shard");
  args.push_back(std::to_string(shard));
  if (!log_dir.empty()) {
    args.emplace_back("--treu-cluster-log-dir");
    args.push_back(log_dir);
  }
  if (worker_obs) args.emplace_back("--treu-cluster-obs");
  if (!extra_args.empty()) {
    args.emplace_back("--treu-cluster-extra");
    for (const std::string &e : extra_args) args.push_back(e);
  }
  std::vector<char *> argv;
  argv.reserve(args.size() + 1);
  for (std::string &a : args) argv.push_back(a.data());
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(parent_fd);
    ::close(child_fd);
    throw std::runtime_error("spawn_worker: fork failed");
  }
  if (pid == 0) {
    // Child. The socketpair was created CLOEXEC on both ends so no other
    // concurrently-spawned worker can inherit a stray copy; re-arm just
    // this child's end to survive the exec.
    ::fcntl(child_fd, F_SETFD, 0);
    ::close(parent_fd);
    ::execv("/proc/self/exe", argv.data());
    ::_exit(127);
  }
  ::close(child_fd);
  return SpawnedWorker{static_cast<int>(pid), parent_fd};
}

}  // namespace treu::cluster
