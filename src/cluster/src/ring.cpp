#include "treu/cluster/ring.hpp"

#include <algorithm>
#include <stdexcept>

#include "treu/core/rng.hpp"

namespace treu::cluster {

HashRing::HashRing(std::size_t workers, std::size_t vnodes,
                   std::uint64_t seed)
    : workers_(workers) {
  if (workers == 0 || vnodes == 0) {
    throw std::invalid_argument("HashRing: zero workers or vnodes");
  }
  points_.reserve(workers * vnodes);
  for (std::size_t w = 0; w < workers; ++w) {
    core::Rng rng(seed, w);
    for (std::size_t v = 0; v < vnodes; ++v) {
      points_.push_back({rng.next_u64(), w});
    }
  }
  std::sort(points_.begin(), points_.end(), [](const Point &a,
                                               const Point &b) {
    // Tie-break on worker index so equal points (vanishingly rare but
    // possible) still order identically everywhere.
    return a.at != b.at ? a.at < b.at : a.worker < b.worker;
  });
}

std::size_t HashRing::route(std::uint64_t key,
                            const std::vector<bool> &live) const {
  const std::uint64_t h = mix_key(key);
  const auto start = std::lower_bound(
      points_.begin(), points_.end(), h,
      [](const Point &p, std::uint64_t value) { return p.at < value; });
  const std::size_t begin =
      static_cast<std::size_t>(start - points_.begin());
  for (std::size_t i = 0; i < points_.size(); ++i) {
    const Point &p = points_[(begin + i) % points_.size()];
    if (p.worker < live.size() && live[p.worker]) return p.worker;
  }
  return kNoWorker;
}

std::vector<std::size_t> HashRing::chain(std::uint64_t key) const {
  const std::uint64_t h = mix_key(key);
  const auto start = std::lower_bound(
      points_.begin(), points_.end(), h,
      [](const Point &p, std::uint64_t value) { return p.at < value; });
  const std::size_t begin =
      static_cast<std::size_t>(start - points_.begin());
  std::vector<std::size_t> order;
  std::vector<bool> seen(workers_, false);
  order.reserve(workers_);
  for (std::size_t i = 0; i < points_.size() && order.size() < workers_;
       ++i) {
    const Point &p = points_[(begin + i) % points_.size()];
    if (!seen[p.worker]) {
      seen[p.worker] = true;
      order.push_back(p.worker);
    }
  }
  return order;
}

}  // namespace treu::cluster
