#pragma once

// ClusterController — the controller half of treu::cluster.
//
// Owns a fleet of worker processes (spawned via worker.hpp's fork+exec
// path), routes submitted requests to shards over the wire protocol, and
// keeps one invariant above all others: EVERY admitted request resolves
// exactly once — fulfilled with a worker's response, or failed with a
// specific cluster error. Workers being SIGKILLed mid-load must not break
// that accounting; that is the zero-loss contract the soak tier asserts.
//
// How the pieces compose:
//  - Routing: a consistent-hash ring (ring.hpp) built from (workers,
//    vnodes, ring_seed). A request's preference chain over shards is a pure
//    function of its sequence number, so failover targets are deterministic:
//    when a worker dies, its in-flight requests move to the next live shard
//    in their chain.
//  - Failure detection: per-worker reader threads notice EOF and poisoned
//    streams immediately; a monitor thread sends heartbeats and declares a
//    worker dead after `heartbeat_timeout` of silence (frozen workers answer
//    no acks). The monitor's clock is injectable, so tests drive detection
//    in virtual time.
//  - Recovery: declared-dead workers' in-flight entries are re-dispatched
//    with bounded attempts and the exact deterministic backoff the serving
//    layer already uses (serve::backoff_delay). Delivery is at-least-once
//    with controller-side dedup — a late response from a worker that was
//    wrongly declared dead is counted (duplicate_responses) and dropped,
//    never double-fulfilled.
//  - Admission: a hard in-flight bound (reject) plus per-tenant fair-share
//    shedding above a watermark, so one hot tenant cannot starve the rest
//    during a failover storm. High-priority work is only ever refused by
//    the hard bound.
//  - Fault injection: an optional fault::Injector is consulted once per
//    dispatch. WorkerKill SIGKILLs the target and fails over synchronously
//    (deterministic), WorkerStall freezes the target's event loop (failure
//    detection path), LinkDrop discards the frame (request_timeout path).
//    In-process kinds (Throw/Stall/...) are ignored here — they belong to
//    the worker's own BatchServer injector.
//  - Replay: with `journal` on, every deterministic decision (submit,
//    dispatch, injected kill, death, failover, fulfillment) appends one
//    line; two runs of the same seeded closed-loop workload produce
//    byte-identical journals. Heartbeat traffic is deliberately not
//    journaled — its timing is wall-clock.
//
// The single-process serving path does not route through any of this:
// failover, timeouts and shedding default off, and a BatchServer used
// directly never touches the cluster layer, so pre-cluster behavior stays
// bit-exact.

#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "treu/cluster/wire.hpp"
#include "treu/fault/injector.hpp"
#include "treu/obs/causal.hpp"
#include "treu/serve/resilience.hpp"

namespace treu::cluster {

struct ClusterConfig {
  /// register_worker() kind every shard runs. Required.
  std::string worker_kind;
  /// Worker process count (= shard count). Required >= 1.
  std::size_t workers = 2;
  /// Extra argv passed verbatim to every worker (the factory's extra_args).
  std::vector<std::string> worker_args;
  /// Directory for per-worker logs / flight dumps; empty = none.
  std::string log_dir;
  /// Enable the flight recorder inside workers (dumped to log_dir on exit).
  bool worker_obs = false;

  /// Consistent-hash ring shape. Routing is a pure function of these.
  std::size_t vnodes = 64;
  std::uint64_t ring_seed = 0;

  /// Admission: hard bound on cluster-wide in-flight requests.
  std::size_t max_inflight = 1024;
  /// Fair-share shedding watermark as a fraction of max_inflight in
  /// (0, 1]. Above it, Normal/Low requests from tenants holding more than
  /// their fair share of the watermark are shed. 1.0 (default) disables.
  double shed_watermark = 1.0;

  /// Heartbeat cadence; 0 disables heartbeats (death via EOF only).
  std::chrono::microseconds heartbeat_interval{20000};
  /// Silence after which a ready worker is declared dead; 0 disables.
  std::chrono::microseconds heartbeat_timeout{200000};
  /// Per-dispatch response deadline; expiry re-dispatches (at-least-once).
  /// 0 (default) disables — required > 0 for LinkDrop recovery.
  std::chrono::microseconds request_timeout{0};
  /// How long a spawned worker may take to report Hello.
  std::chrono::microseconds hello_timeout{5000000};
  /// Failsafe bound on shutdown's drain and on drain/reload waits.
  std::chrono::microseconds drain_timeout{5000000};

  /// Cross-worker failover budget: a request is dispatched at most
  /// max_attempts times, with backoff_delay(retry, attempt-1, seq) between
  /// dispatches. max_attempts 1 (default) = no failover.
  serve::RetryPolicy retry;

  /// Respawn declared-dead workers (up to max_restarts each).
  bool auto_restart = false;
  std::size_t max_restarts = 4;

  /// Consulted once per dispatch for WorkerKill/WorkerStall/LinkDrop.
  /// Not owned; must outlive the controller. Other kinds are ignored.
  fault::Injector *injector = nullptr;

  /// Microsecond clock for heartbeat/timeout/backoff decisions. Empty =
  /// steady_clock; tests inject a counter and drive pump() themselves.
  std::function<std::int64_t()> clock;

  /// Deterministic trace ids: request seq k gets derive_trace_id(
  /// trace_seed, k), carried to the worker in the frame header.
  std::uint64_t trace_seed = 0;
  /// Decode bound applied to worker->controller frames.
  std::size_t max_payload = kDefaultMaxPayload;
  /// Record the deterministic decision journal (see journal()).
  bool journal = false;
};

/// Admission refused outright: cluster shut down or max_inflight reached.
class ClusterRejectedError final : public std::runtime_error {
 public:
  explicit ClusterRejectedError(const std::string &what)
      : std::runtime_error(what) {}
};

/// Shed by per-tenant fair-share policy above the watermark.
class ClusterShedError final : public std::runtime_error {
 public:
  explicit ClusterShedError(const std::string &what)
      : std::runtime_error(what) {}
};

/// An admitted request that could not be fulfilled: failover attempts
/// exhausted, no live workers, worker-side failure, or shutdown failsafe.
class ClusterFailedError final : public std::runtime_error {
 public:
  explicit ClusterFailedError(const std::string &what)
      : std::runtime_error(what) {}
};

struct TenantStats {
  std::uint64_t submitted = 0;
  std::uint64_t fulfilled = 0;
  std::uint64_t rejected = 0;
  std::uint64_t shed = 0;
  std::uint64_t failed = 0;
};

/// Exact counters, mutex-guarded and independent of TREU_OBS_ENABLED.
/// The zero-loss invariant in these terms:
///   admitted == fulfilled + failed     (once quiescent / after shutdown)
///   submitted == admitted + rejected + shed
struct ClusterStats {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t shed = 0;
  std::uint64_t fulfilled = 0;
  std::uint64_t failed = 0;
  std::uint64_t retries = 0;    // dispatches beyond each request's first
  std::uint64_t failovers = 0;  // re-dispatches scheduled by worker death
  std::uint64_t timeouts = 0;   // request_timeout expiries
  std::uint64_t worker_deaths = 0;
  std::uint64_t worker_restarts = 0;
  std::uint64_t heartbeat_misses = 0;
  std::uint64_t duplicate_responses = 0;  // at-least-once dedup drops
  std::uint64_t kills_injected = 0;
  std::uint64_t stalls_injected = 0;
  std::uint64_t link_drops_injected = 0;
  std::uint64_t frames_torn = 0;
  std::uint64_t frames_corrupt = 0;
  std::size_t inflight = 0;
  std::map<std::uint32_t, TenantStats> tenants;
};

/// One fulfilled request.
struct ClusterResponse {
  std::vector<std::uint8_t> payload;
  std::size_t shard = 0;     // shard whose response won
  std::size_t attempts = 1;  // dispatches it took
  obs::TraceId trace;
};

/// Snapshot of one worker slot.
struct WorkerInfo {
  int pid = -1;
  bool live = false;
  bool ready = false;     // Hello received
  bool draining = false;
  bool drained = false;
  std::size_t restarts = 0;
  std::string weight_hash;
};

struct ReloadOutcome {
  bool ok = false;
  std::string error;
  std::string weight_hash;  // worker's hash after the attempt
};

class ClusterController {
 public:
  /// Spawns the fleet and blocks until every worker reports Hello (or
  /// throws after hello_timeout, tearing the fleet down).
  explicit ClusterController(const ClusterConfig &config);
  ClusterController(const ClusterController &) = delete;
  ClusterController &operator=(const ClusterController &) = delete;
  ~ClusterController();

  /// Route one request. The future resolves to a ClusterResponse or to
  /// ClusterRejectedError / ClusterShedError / ClusterFailedError —
  /// exactly one of the four, always.
  [[nodiscard]] std::future<ClusterResponse> submit(
      std::uint32_t tenant, serve::Priority priority,
      std::vector<std::uint8_t> payload);

  /// Stop admitting, resolve every in-flight request (recovery machinery
  /// keeps running; after drain_timeout stragglers fail with
  /// ClusterFailedError), drain and reap every worker. Idempotent; the
  /// destructor calls it.
  void shutdown();

  /// Gracefully retire one worker: stop routing to it, wait for its
  /// in-flight work, exchange Drain/DrainAck, let it exit. False if the
  /// ack never came inside drain_timeout.
  bool drain_worker(std::size_t shard);

  /// Spawn a replacement for a dead (or drained) shard. Any still-running
  /// previous incarnation is fenced with SIGKILL first. Blocks until the
  /// replacement's Hello (false on timeout).
  bool restart_worker(std::size_t shard);

  /// Hot-reload one worker's weights from a checkpoint file (blocking;
  /// bounded by drain_timeout). The worker keeps serving throughout.
  ReloadOutcome reload_worker(std::size_t shard, const std::string &path,
                              const std::string &digest);

  /// Murder hook for tests/soaks: SIGKILL the shard's process. Detection
  /// and failover run through the normal machinery (EOF / heartbeats).
  void kill_worker(std::size_t shard);

  /// Run one monitor pass synchronously (virtual-clock tests drive
  /// heartbeats, timeouts, resends and auto-restarts through this).
  void pump();

  [[nodiscard]] ClusterStats stats() const;
  [[nodiscard]] WorkerInfo worker(std::size_t shard) const;
  /// The deterministic decision journal (empty unless config.journal).
  [[nodiscard]] std::vector<std::string> journal() const;
  [[nodiscard]] const ClusterConfig &config() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace treu::cluster
