#pragma once

// ModelWorker: the standard WorkerService — one shard of replicated models
// behind a serve::BatchServer, bridged onto the cluster wire.
//
// The bridge is deliberately thin: handle_request decodes the payload and
// submits to the server (non-blocking, as the worker-loop contract
// requires), and a single reply thread drains the returned futures in FIFO
// order, encoding each outcome as a Response or Error frame through the
// loop's emit callback. Everything the single-process server already does —
// batching, deadlines, retries, breakers, in-process fault injection, hot
// reload — happens unchanged inside the shard; the cluster layer adds only
// transport and failover on top. FIFO future draining cannot deadlock:
// BatchServer resolves every accepted future (that exact-accounting
// contract is what the zero-loss cluster invariant stands on).

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "treu/cluster/worker.hpp"
#include "treu/serve/batch_server.hpp"

namespace treu::cluster {

template <typename In, typename Out>
class ModelWorker final : public WorkerService {
 public:
  using Model = nn::Predictor<In, Out>;
  using Server = serve::BatchServer<In, Out>;
  using DecodeIn =
      std::function<bool(std::span<const std::uint8_t>, In &)>;
  using EncodeOut = std::function<std::vector<std::uint8_t>(const Out &)>;
  /// Hot-reload hook: apply new weights (normally via
  /// Server::reload_weights + ckpt restore) and report the outcome. Absent
  /// hook -> Reload frames fail with "no reload handler".
  using ReloadFn = std::function<bool(Server &, const std::string &path,
                                      const std::string &digest,
                                      std::string &error)>;

  ModelWorker(std::vector<std::unique_ptr<Model>> models,
              const serve::ServeConfig &config, DecodeIn decode,
              EncodeOut encode, ReloadFn reload = nullptr)
      : models_(std::move(models)),
        decode_(std::move(decode)),
        encode_(std::move(encode)),
        reload_(std::move(reload)) {
    std::vector<Model *> replicas;
    replicas.reserve(models_.size());
    for (const auto &m : models_) replicas.push_back(m.get());
    server_ = std::make_unique<Server>(std::move(replicas), config);
    hash_ = models_.front()->weight_hash();
  }

  ~ModelWorker() override { stop(); }

  void start(std::function<void(const WorkerReply &)> emit) override {
    emit_ = std::move(emit);
    replier_ = std::thread([this] { reply_loop(); });
  }

  void handle_request(const Frame &frame) override {
    Pending p;
    p.seq = frame.seq;
    p.trace_hi = frame.trace_hi;
    p.trace_lo = frame.trace_lo;
    p.tenant = frame.tenant;
    In input{};
    if (!decode_({frame.payload.data(), frame.payload.size()}, input)) {
      // Undecodable payload: answer, don't die. Counts as served — the
      // request got its one deterministic resolution.
      WorkerReply r;
      r.seq = p.seq;
      r.trace_hi = p.trace_hi;
      r.trace_lo = p.trace_lo;
      r.tenant = p.tenant;
      r.ok = false;
      r.error = "worker: request payload undecodable";
      served_.fetch_add(1, std::memory_order_relaxed);
      emit_(r);
      return;
    }
    const auto pri_bits = static_cast<std::uint8_t>(frame.flags & 0x3);
    const auto priority = pri_bits <= 2 ? static_cast<serve::Priority>(pri_bits)
                                        : serve::Priority::Normal;
    p.fut = server_->submit(std::move(input), priority);
    {
      std::lock_guard lock(mu_);
      queue_.push_back(std::move(p));
    }
    cv_.notify_all();
  }

  std::uint64_t served() const override {
    return served_.load(std::memory_order_relaxed);
  }

  std::string weight_hash() const override {
    std::lock_guard lock(hash_mu_);
    return hash_;
  }

  bool reload(const std::string &path, const std::string &digest,
              std::string &error) override {
    if (!reload_) {
      error = "worker: no reload handler";
      return false;
    }
    const bool ok = reload_(*server_, path, digest, error);
    if (ok) {
      std::lock_guard lock(hash_mu_);
      hash_ = models_.front()->weight_hash();
    }
    return ok;
  }

  void stop() override {
    {
      std::lock_guard lock(mu_);
      if (stopping_) {
        if (replier_.joinable()) replier_.join();
        return;
      }
      stopping_ = true;
    }
    // Resolve every accepted future before asking the replier to finish;
    // its queue then drains without ever blocking on an unserved request.
    server_->shutdown();
    cv_.notify_all();
    if (replier_.joinable()) replier_.join();
  }

 private:
  struct Pending {
    std::uint64_t seq = 0;
    std::uint64_t trace_hi = 0;
    std::uint64_t trace_lo = 0;
    std::uint32_t tenant = 0;
    std::future<typename Server::Response> fut;
  };

  void reply_loop() {
    for (;;) {
      Pending p;
      {
        std::unique_lock lock(mu_);
        cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopping_ and drained
        p = std::move(queue_.front());
        queue_.pop_front();
      }
      WorkerReply r;
      r.seq = p.seq;
      r.trace_hi = p.trace_hi;
      r.trace_lo = p.trace_lo;
      r.tenant = p.tenant;
      try {
        typename Server::Response resp = p.fut.get();
        r.ok = true;
        r.payload = encode_(resp.output);
      } catch (const std::exception &e) {
        r.ok = false;
        r.error = e.what();
      }
      served_.fetch_add(1, std::memory_order_relaxed);
      emit_(r);
    }
  }

  std::vector<std::unique_ptr<Model>> models_;
  DecodeIn decode_;
  EncodeOut encode_;
  ReloadFn reload_;
  std::unique_ptr<Server> server_;

  std::function<void(const WorkerReply &)> emit_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  bool stopping_ = false;
  std::atomic<std::uint64_t> served_{0};

  mutable std::mutex hash_mu_;
  std::string hash_;

  std::thread replier_;
};

}  // namespace treu::cluster
