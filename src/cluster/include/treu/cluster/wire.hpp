#pragma once

// The cluster wire protocol: compact length-prefixed binary frames over
// local stream sockets, one controller <-> worker socketpair per worker.
//
// Layout (all integers little-endian, written byte-by-byte so the encoding
// is identical on every platform — same discipline as the ckpt container):
//
//   u32 magic      "TRWF"
//   u8  version    (currently 1)
//   u8  type       FrameType
//   u8  flags      Request: low 2 bits = serve::Priority; acks: bit 0 = ok
//   u8  reserved   (0)
//   u64 seq        correlation id (controller-assigned request sequence)
//   u64 trace_hi   128-bit deterministic trace id, carried across the wire
//   u64 trace_lo
//   u32 tenant
//   u32 payload_len
//   u64 checksum   FNV-1a 64 of the 40 header bytes above + payload
//   payload bytes
//
// decode() NEVER throws. Damage is classified, mirroring ckpt::DecodeResult:
// NeedMore is an incomplete prefix of a valid frame (keep reading), Torn is
// structural damage (bad magic/version/type, or a length prefix past the
// size bound — what a crashed or hostile peer produces), Corrupt is a
// checksum mismatch on a structurally intact frame (bit rot / torn write on
// the wire). Consumers count both and treat the stream as poisoned: framing
// cannot be trusted to resynchronize after arbitrary damage.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace treu::cluster {

inline constexpr std::uint32_t kWireMagic = 0x46575254;  // "TRWF" little-endian
inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::size_t kWireHeaderSize = 48;
/// Hard bound a decoder enforces on payload_len before trusting it; a torn
/// or hostile length prefix must never drive a multi-gigabyte allocation.
inline constexpr std::size_t kDefaultMaxPayload = std::size_t{1} << 20;

/// Frame kinds. Values are wire-stable; append only.
enum class FrameType : std::uint8_t {
  None = 0,
  Hello = 1,         // worker -> controller: shard, pid, weight hash
  Request = 2,       // controller -> worker: opaque app payload
  Response = 3,      // worker -> controller: opaque app payload (flags ok)
  Error = 4,         // worker -> controller: request failed, payload = reason
  Heartbeat = 5,     // controller -> worker: are you alive?
  HeartbeatAck = 6,  // worker -> controller: yes (echoes seq)
  Drain = 7,         // controller -> worker: stop accepting, finish, exit
  DrainAck = 8,      // worker -> controller: drained (payload = served count)
  Reload = 9,        // controller -> worker: hot-reload weights (path+digest)
  ReloadAck = 10,    // worker -> controller: reload outcome (flags ok)
  Stall = 11,        // controller -> worker: freeze event loop (injected)
  Shutdown = 12,     // controller -> worker: exit now (no drain)
};

[[nodiscard]] const char *to_string(FrameType type) noexcept;

/// One decoded frame. `payload` owns its bytes (copied out of the stream
/// buffer, so the buffer can compact underneath it).
struct Frame {
  FrameType type = FrameType::None;
  std::uint8_t flags = 0;
  std::uint64_t seq = 0;
  std::uint64_t trace_hi = 0;
  std::uint64_t trace_lo = 0;
  std::uint32_t tenant = 0;
  std::vector<std::uint8_t> payload;
};

/// Why a decode did not produce a frame. NeedMore is not damage.
enum class WireFailure : std::uint8_t { None = 0, NeedMore, Torn, Corrupt };

[[nodiscard]] const char *to_string(WireFailure failure) noexcept;

struct WireDecodeResult {
  Frame frame;
  std::size_t consumed = 0;  // bytes to drop from the stream buffer
  WireFailure failure = WireFailure::None;
  std::string error;  // empty on success / NeedMore

  [[nodiscard]] bool ok() const noexcept {
    return failure == WireFailure::None;
  }
};

/// FNV-1a 64 over a byte span (the frame checksum).
[[nodiscard]] std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes,
                                    std::uint64_t seed = 0xCBF29CE484222325ULL)
    noexcept;

/// Serialize one frame.
[[nodiscard]] std::vector<std::uint8_t> encode_frame(const Frame &frame);

/// Parse the first frame out of `bytes`. Never throws; see WireFailure for
/// the classification contract. `consumed` is set only on success (a
/// damaged stream cannot be resynchronized, so the caller drops it whole).
[[nodiscard]] WireDecodeResult decode_frame(
    std::span<const std::uint8_t> bytes,
    std::size_t max_payload = kDefaultMaxPayload);

/// Incremental stream decoder: feed() appends raw socket bytes, next()
/// yields frames until NeedMore (or damage). One per connection.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_payload = kDefaultMaxPayload)
      : max_payload_(max_payload) {}

  void feed(std::span<const std::uint8_t> bytes) {
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }

  /// Decode the next buffered frame. NeedMore when the buffer holds only a
  /// frame prefix; Torn/Corrupt poison the decoder (every later call
  /// returns the same verdict — stream framing is gone for good).
  [[nodiscard]] WireDecodeResult next();

  [[nodiscard]] std::size_t buffered() const noexcept { return buf_.size(); }
  [[nodiscard]] bool poisoned() const noexcept {
    return poisoned_ != WireFailure::None;
  }

 private:
  std::size_t max_payload_;
  std::vector<std::uint8_t> buf_;
  WireFailure poisoned_ = WireFailure::None;
  std::string poison_error_;
};

// -- Payload helpers ---------------------------------------------------------
// Tiny little-endian writer/reader for frame payload internals (Hello,
// Reload, ...). Deliberately local: the ckpt ByteWriter serves the container
// format; the wire payloads carry their own, equally explicit, encoding.

void put_u32(std::vector<std::uint8_t> &out, std::uint32_t v);
void put_u64(std::vector<std::uint8_t> &out, std::uint64_t v);
void put_f64(std::vector<std::uint8_t> &out, double v);
void put_str(std::vector<std::uint8_t> &out, std::string_view s);

/// Cursor-based reader; getters return false past the end (never throw).
class PayloadReader {
 public:
  explicit PayloadReader(std::span<const std::uint8_t> data) noexcept
      : data_(data) {}
  [[nodiscard]] bool u32(std::uint32_t &out) noexcept;
  [[nodiscard]] bool u64(std::uint64_t &out) noexcept;
  [[nodiscard]] bool f64(double &out) noexcept;
  [[nodiscard]] bool str(std::string &out) noexcept;
  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace treu::cluster
