#pragma once

// Consistent-hash routing over a fixed worker fleet with a live mask.
//
// The ring is built once, from (worker count, vnodes, seed): each worker
// owns `vnodes` points drawn from its own Philox stream, so the point set —
// and therefore every routing decision — is a pure function of the config
// on every platform. Liveness is the only runtime input: route(key, live)
// walks the ring from the key's position and returns the first *live*
// worker, which is exactly the deterministic failover rule the acceptance
// tests replay ("worker 2 died, its keys move to its ring successor").
// Restoring a worker restores the original assignment, because the points
// never move.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace treu::core {}  // (ring depends only on core::Rng via ring.cpp)

namespace treu::cluster {

inline constexpr std::size_t kNoWorker = static_cast<std::size_t>(-1);

/// splitmix64 finalizer — the routing key hash. Pure and platform-stable.
[[nodiscard]] constexpr std::uint64_t mix_key(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

class HashRing {
 public:
  /// `workers` > 0, `vnodes` > 0. Points for worker w come from
  /// core::Rng(seed, w), so adding vnodes never moves another worker's
  /// points.
  HashRing(std::size_t workers, std::size_t vnodes, std::uint64_t seed);

  /// First live worker at or clockwise of hash(key). kNoWorker when no
  /// worker is live. `live` is indexed by worker; workers beyond its size
  /// count as dead.
  [[nodiscard]] std::size_t route(std::uint64_t key,
                                  const std::vector<bool> &live) const;

  /// Full deterministic preference order for a key: distinct workers in
  /// ring order starting at hash(key), ignoring liveness. route() equals
  /// the first live entry of this chain.
  [[nodiscard]] std::vector<std::size_t> chain(std::uint64_t key) const;

  [[nodiscard]] std::size_t workers() const noexcept { return workers_; }

 private:
  struct Point {
    std::uint64_t at;
    std::size_t worker;
  };
  std::size_t workers_;
  std::vector<Point> points_;  // sorted by `at`
};

}  // namespace treu::cluster
