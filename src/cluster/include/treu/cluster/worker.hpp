#pragma once

// Worker-process harness for treu::cluster.
//
// A worker is this same executable re-exec'd with `--treu-cluster-worker
// <kind> --treu-cluster-fd N --treu-cluster-shard K ...`. The controller
// creates a socketpair, forks, and execs /proc/self/exe — fork WITHOUT exec
// is off the table in a process that already runs threads (gtest binaries
// run a global ThreadPool; a forked child would inherit locked mutexes and
// trip TSan's after-fork checks), so between fork() and execv() the child
// performs only async-signal-safe calls on pre-built argument strings.
//
// Binaries that host workers (cluster_test, bench_cluster_failover) install
// their worker kinds with register_worker() and call maybe_run_worker()
// FIRST in main(): it returns -1 in the controller process and otherwise
// runs the worker loop to completion and returns its exit code. That keeps
// the worker path out of gtest entirely — a worker process never
// initializes the test framework.
//
// The worker loop speaks the wire protocol on its inherited fd: Requests
// are handed to the registered WorkerService (non-blocking), replies come
// back through a thread-safe emit callback, Heartbeats are acked inline by
// the reader, and Drain/Shutdown/Reload/Stall are handled as control
// frames. EOF on the socket means the controller is gone: drain and exit.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "treu/cluster/wire.hpp"

namespace treu::cluster {

/// One finished request, handed back by a WorkerService through emit().
struct WorkerReply {
  std::uint64_t seq = 0;
  std::uint64_t trace_hi = 0;
  std::uint64_t trace_lo = 0;
  std::uint32_t tenant = 0;
  bool ok = false;
  std::vector<std::uint8_t> payload;  // response payload when ok
  std::string error;                  // reason when !ok
};

/// What a worker process knows about itself when its service is built.
struct WorkerStartup {
  std::size_t shard = 0;
  std::string log_dir;                  // empty = no per-worker log file
  std::vector<std::string> extra_args;  // controller worker_args, verbatim
};

/// The application side of a worker process. One instance per process;
/// calls arrive from the worker loop's reader thread.
class WorkerService {
 public:
  virtual ~WorkerService() = default;

  /// Called once before any request. `emit` is thread-safe and may be
  /// called from any thread the service owns; it writes one Response or
  /// Error frame to the controller.
  virtual void start(std::function<void(const WorkerReply &)> emit) = 0;

  /// One Request frame. Must not block: decode, enqueue, return. A payload
  /// that fails to decode must surface as an emitted !ok reply (never an
  /// exception — the loop treats a throwing service as fatal).
  virtual void handle_request(const Frame &frame) = 0;

  /// Requests answered so far (ok or not) — reported in DrainAck.
  virtual std::uint64_t served() const = 0;

  /// Current weight hash, reported in Hello and ReloadAck.
  virtual std::string weight_hash() const = 0;

  /// Hot weight reload. Returns false and fills `error` on failure; the
  /// worker keeps serving its previous weights either way.
  virtual bool reload(const std::string &path, const std::string &digest,
                      std::string &error) = 0;

  /// Stop accepting, finish everything in flight, join internal threads.
  virtual void stop() = 0;
};

using WorkerFactory =
    std::function<std::unique_ptr<WorkerService>(const WorkerStartup &)>;

/// Install a worker kind. Call before maybe_run_worker(); last install of a
/// kind wins. Worker kinds are process-local — each hosting binary
/// registers exactly the kinds its tests/benches spawn.
void register_worker(const std::string &kind, WorkerFactory factory);

/// If argv selects a worker (`--treu-cluster-worker <kind>`), run it to
/// completion and return its exit code (0 = clean drain). Returns -1 when
/// argv is a normal controller/test invocation. Hosting binaries call this
/// first in main() and `return` its result when >= 0.
int maybe_run_worker(int argc, char **argv);

/// Controller-side spawn record.
struct SpawnedWorker {
  int pid = -1;
  int fd = -1;  // controller end of the socketpair (CLOEXEC)
};

/// fork+exec one worker of `kind` for `shard`. `extra_args` is appended to
/// the child's argv verbatim (the service factory sees it as extra_args).
/// Throws std::runtime_error when the socketpair/fork/exec plumbing fails.
SpawnedWorker spawn_worker(const std::string &kind, std::size_t shard,
                           const std::string &log_dir, bool worker_obs,
                           const std::vector<std::string> &extra_args);

}  // namespace treu::cluster
