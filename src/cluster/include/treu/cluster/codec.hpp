#pragma once

// Request/response payload codecs for the model types the repo serves.
//
// The wire protocol carries opaque payload bytes; these helpers fix the
// encoding for the two shapes cluster tests and benches ship across it —
// dense feature vectors in, nn::ClassScores out. Same byte-by-byte
// little-endian discipline as the frame header, and decoders return false
// instead of throwing: a worker fed garbage answers with an Error frame,
// it never dies.

#include <cstdint>
#include <span>
#include <vector>

#include "treu/cluster/wire.hpp"
#include "treu/nn/predictor.hpp"

namespace treu::cluster {

[[nodiscard]] inline std::vector<std::uint8_t> encode_features(
    const std::vector<double> &features) {
  std::vector<std::uint8_t> out;
  out.reserve(4 + 8 * features.size());
  put_u32(out, static_cast<std::uint32_t>(features.size()));
  for (const double v : features) put_f64(out, v);
  return out;
}

[[nodiscard]] inline bool decode_features(std::span<const std::uint8_t> bytes,
                                          std::vector<double> &out) {
  PayloadReader r(bytes);
  std::uint32_t n = 0;
  if (!r.u32(n)) return false;
  if (r.remaining() != static_cast<std::size_t>(n) * 8) return false;
  out.clear();
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    double v = 0.0;
    if (!r.f64(v)) return false;
    out.push_back(v);
  }
  return true;
}

[[nodiscard]] inline std::vector<std::uint8_t> encode_scores(
    const nn::ClassScores &scores) {
  std::vector<std::uint8_t> out;
  out.reserve(12 + 8 * scores.logits.size());
  put_u64(out, static_cast<std::uint64_t>(scores.label));
  put_u32(out, static_cast<std::uint32_t>(scores.logits.size()));
  for (const double v : scores.logits) put_f64(out, v);
  return out;
}

[[nodiscard]] inline bool decode_scores(std::span<const std::uint8_t> bytes,
                                        nn::ClassScores &out) {
  PayloadReader r(bytes);
  std::uint64_t label = 0;
  std::uint32_t n = 0;
  if (!r.u64(label) || !r.u32(n)) return false;
  if (r.remaining() != static_cast<std::size_t>(n) * 8) return false;
  out.label = static_cast<std::size_t>(label);
  out.logits.clear();
  out.logits.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    double v = 0.0;
    if (!r.f64(v)) return false;
    out.logits.push_back(v);
  }
  return true;
}

}  // namespace treu::cluster
