#include "treu/shape/atlas.hpp"

#include <array>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "treu/tensor/kernels.hpp"
#include "treu/tensor/linalg.hpp"

namespace treu::shape {
namespace {

Vec3 centroid(const std::vector<Vec3> &shape) {
  Vec3 c;
  for (const Vec3 &p : shape) c = c + p;
  const double inv = shape.empty() ? 0.0 : 1.0 / static_cast<double>(shape.size());
  return c * inv;
}

double rms_radius(const std::vector<Vec3> &shape) {
  double s = 0.0;
  for (const Vec3 &p : shape) s += dot(p, p);
  return std::sqrt(s / static_cast<double>(shape.size()));
}

// Kabsch: optimal rotation taking `from` onto `to` (both centered).
// Returns a row-major 3x3 rotation matrix.
std::array<double, 9> kabsch(const std::vector<Vec3> &from,
                             const std::vector<Vec3> &to) {
  // Cross-covariance H = sum from_i to_i^T.
  tensor::Matrix h(3, 3, 0.0);
  for (std::size_t i = 0; i < from.size(); ++i) {
    const double f[3] = {from[i].x, from[i].y, from[i].z};
    const double t[3] = {to[i].x, to[i].y, to[i].z};
    for (int r = 0; r < 3; ++r) {
      for (int c = 0; c < 3; ++c) h(r, c) += f[r] * t[c];
    }
  }
  const tensor::SvdResult s = tensor::svd(h);
  // R = V diag(1,1,d) U^T with d = sign(det(V U^T)).
  tensor::Matrix vut = tensor::matmul_transposed(s.v, s.u);
  const double det =
      vut(0, 0) * (vut(1, 1) * vut(2, 2) - vut(1, 2) * vut(2, 1)) -
      vut(0, 1) * (vut(1, 0) * vut(2, 2) - vut(1, 2) * vut(2, 0)) +
      vut(0, 2) * (vut(1, 0) * vut(2, 1) - vut(1, 1) * vut(2, 0));
  tensor::Matrix d3 = tensor::Matrix::identity(3);
  if (det < 0.0) d3(2, 2) = -1.0;
  const tensor::Matrix r =
      tensor::matmul(tensor::matmul(s.v, d3), s.u.transposed());
  return {r(0, 0), r(0, 1), r(0, 2), r(1, 0), r(1, 1),
          r(1, 2), r(2, 0), r(2, 1), r(2, 2)};
}

Vec3 rotate(const std::array<double, 9> &r, const Vec3 &p) {
  return {r[0] * p.x + r[1] * p.y + r[2] * p.z,
          r[3] * p.x + r[4] * p.y + r[5] * p.z,
          r[6] * p.x + r[7] * p.y + r[8] * p.z};
}

std::vector<Vec3> mean_of(const std::vector<std::vector<Vec3>> &shapes) {
  std::vector<Vec3> mean(shapes.front().size());
  for (const auto &s : shapes) {
    for (std::size_t i = 0; i < s.size(); ++i) mean[i] = mean[i] + s[i];
  }
  const double inv = 1.0 / static_cast<double>(shapes.size());
  for (auto &p : mean) p = p * inv;
  return mean;
}

}  // namespace

std::vector<double> flatten(const std::vector<Vec3> &shape) {
  std::vector<double> out;
  out.reserve(shape.size() * 3);
  for (const Vec3 &p : shape) {
    out.push_back(p.x);
    out.push_back(p.y);
    out.push_back(p.z);
  }
  return out;
}

std::vector<Vec3> unflatten(std::span<const double> row) {
  if (row.size() % 3 != 0) {
    throw std::invalid_argument("unflatten: length not a multiple of 3");
  }
  std::vector<Vec3> out(row.size() / 3);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = {row[3 * i], row[3 * i + 1], row[3 * i + 2]};
  }
  return out;
}

tensor::Matrix procrustes_align(const std::vector<std::vector<Vec3>> &shapes,
                                const ProcrustesOptions &options) {
  if (shapes.empty()) {
    throw std::invalid_argument("procrustes_align: no shapes");
  }
  const std::size_t n_particles = shapes.front().size();
  for (const auto &s : shapes) {
    if (s.size() != n_particles) {
      throw std::invalid_argument("procrustes_align: particle count differs");
    }
  }
  std::vector<std::vector<Vec3>> work = shapes;
  for (auto &s : work) {
    if (options.with_translation) {
      const Vec3 c = centroid(s);
      for (auto &p : s) p = p - c;
    }
    if (options.with_scale) {
      const double r = rms_radius(s);
      if (r > 0.0) {
        for (auto &p : s) p = p * (1.0 / r);
      }
    }
  }
  if (options.with_rotation) {
    for (std::size_t round = 0; round < options.iterations; ++round) {
      const std::vector<Vec3> mean = mean_of(work);
      for (auto &s : work) {
        const auto r = kabsch(s, mean);
        for (auto &p : s) p = rotate(r, p);
      }
    }
  }
  tensor::Matrix out(work.size(), n_particles * 3);
  for (std::size_t i = 0; i < work.size(); ++i) {
    const std::vector<double> row = flatten(work[i]);
    for (std::size_t j = 0; j < row.size(); ++j) out(i, j) = row[j];
  }
  return out;
}

ShapeAtlas ShapeAtlas::build(const Population &population,
                             const ProcrustesOptions &options,
                             double variance_keep, std::size_t max_modes) {
  ShapeAtlas atlas;
  atlas.aligned_ = procrustes_align(population.shapes, options);
  tensor::Pca full = tensor::Pca::fit(atlas.aligned_, max_modes);
  const std::size_t keep =
      std::max<std::size_t>(1, full.modes_for_variance(variance_keep));
  atlas.pca_ = tensor::Pca::fit(atlas.aligned_, std::min(keep, max_modes));
  return atlas;
}

std::vector<Vec3> ShapeAtlas::mean_shape() const {
  return unflatten(pca_.mean());
}

std::vector<Vec3> ShapeAtlas::mode_shape(std::size_t k, double stddevs) const {
  return unflatten(pca_.mode_sample(k, stddevs));
}

double ShapeAtlas::shape_distance(const std::vector<Vec3> &a,
                                  const std::vector<Vec3> &b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("shape_distance: particle count differs");
  }
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Vec3 d = a[i] - b[i];
    s += dot(d, d);
  }
  return std::sqrt(s / static_cast<double>(a.size()));
}

double generalization_error(const Population &population, std::size_t modes,
                            const ProcrustesOptions &options) {
  const tensor::Matrix aligned = procrustes_align(population.shapes, options);
  const std::size_t n = aligned.rows();
  if (n < 3) return 0.0;
  double total = 0.0;
  for (std::size_t held = 0; held < n; ++held) {
    tensor::Matrix train(n - 1, aligned.cols());
    std::size_t r = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (i == held) continue;
      for (std::size_t j = 0; j < aligned.cols(); ++j) {
        train(r, j) = aligned(i, j);
      }
      ++r;
    }
    const tensor::Pca pca = tensor::Pca::fit(train, modes);
    const auto scores = pca.transform(aligned.row(held));
    const auto recon = pca.inverse_transform(scores);
    double s = 0.0;
    for (std::size_t j = 0; j < recon.size(); ++j) {
      s += (recon[j] - aligned(held, j)) * (recon[j] - aligned(held, j));
    }
    total += std::sqrt(s / static_cast<double>(recon.size() / 3));
  }
  return total / static_cast<double>(n);
}

double specificity(const ShapeAtlas &atlas, const Population &population,
                   std::size_t samples, core::Rng &rng) {
  (void)population;
  const tensor::Matrix &aligned = atlas.aligned();
  double total = 0.0;
  for (std::size_t s = 0; s < samples; ++s) {
    std::vector<double> scores(atlas.pca().n_components());
    for (std::size_t k = 0; k < scores.size(); ++k) {
      scores[k] = rng.normal() * std::sqrt(atlas.pca().eigenvalues()[k]);
    }
    const auto sampled = atlas.pca().inverse_transform(scores);
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < aligned.rows(); ++i) {
      double d = 0.0;
      const auto row = aligned.row(i);
      for (std::size_t j = 0; j < row.size(); ++j) {
        d += (sampled[j] - row[j]) * (sampled[j] - row[j]);
      }
      best = std::min(best, std::sqrt(d / static_cast<double>(row.size() / 3)));
    }
    total += best;
  }
  return samples > 0 ? total / static_cast<double>(samples) : 0.0;
}

std::vector<AblationRow> particle_count_ablation(
    const ShapeFamily &family, std::size_t n_shapes,
    const std::vector<std::size_t> &particle_counts, core::Rng &rng) {
  std::vector<AblationRow> rows;
  rows.reserve(particle_counts.size());
  for (std::size_t count : particle_counts) {
    core::Rng local = rng.split(count);  // same population law per count
    const Population pop = sample_population(family, n_shapes, count, local);
    const ShapeAtlas atlas = ShapeAtlas::build(pop);
    AblationRow row;
    row.particles = count;
    row.modes_for_95 = atlas.compact_modes(0.95);
    const auto &eig = atlas.pca().eigenvalues();
    double total = 0.0;
    for (double e : eig) total += e;
    row.top_mode_ratio = total > 0.0 ? eig[0] / total : 0.0;
    row.generalization = generalization_error(pop, family.n_modes());
    rows.push_back(row);
  }
  return rows;
}

}  // namespace treu::shape
