#include "treu/shape/families.hpp"

#include <cmath>

namespace treu::shape {

std::vector<Vec3> ShapeFamily::particles(const std::vector<Vec3> &directions,
                                         std::span<const double> params) const {
  std::vector<Vec3> out(directions.size());
  for (std::size_t i = 0; i < directions.size(); ++i) {
    out[i] = directions[i] * radius(directions[i], params);
  }
  return out;
}

std::vector<double> SphereFamily::sample_params(core::Rng &rng) const {
  return {rng.normal()};
}

double SphereFamily::radius(const Vec3 &, std::span<const double> p) const {
  return base_ * (1.0 + amp_ * p[0]);
}

std::vector<double> EllipsoidFamily::sample_params(core::Rng &rng) const {
  return {rng.normal(), rng.normal(), rng.normal()};
}

double EllipsoidFamily::radius(const Vec3 &d, std::span<const double> p) const {
  const double ax = base_ * (1.0 + amp_ * p[0]);
  const double ay = base_ * (1.0 + amp_ * p[1]);
  const double az = base_ * (1.0 + amp_ * p[2]);
  // Radial function of an ellipsoid along unit direction d.
  const double inv =
      d.x * d.x / (ax * ax) + d.y * d.y / (ay * ay) + d.z * d.z / (az * az);
  return 1.0 / std::sqrt(inv);
}

std::vector<double> TwoLobeFamily::sample_params(core::Rng &rng) const {
  return {rng.normal(), rng.normal()};
}

double TwoLobeFamily::radius(const Vec3 &d, std::span<const double> p) const {
  // Body: near-sphere with radius mode p0. Appendage: Gaussian bump around
  // a fixed axis whose amplitude is mode p1 (amplitude kept positive).
  const double body = base_ * (1.0 + body_amp_ * p[0]);
  const Vec3 lobe_axis = normalized(Vec3{1.0, 0.6, 0.3});
  const double cosang = dot(normalized(d), lobe_axis);
  const double bump = std::exp(-(1.0 - cosang) * 8.0);
  const double lobe = base_ * lobe_amp_ * (1.0 + 0.5 * p[1]) * bump;
  return body + std::max(lobe, 0.0);
}

Population sample_population(const ShapeFamily &family, std::size_t n_shapes,
                             std::size_t n_particles, core::Rng &rng,
                             std::size_t relax_iterations,
                             double particle_noise) {
  Population pop;
  pop.particles_per_shape = n_particles;
  std::vector<Vec3> dirs = fibonacci_sphere(n_particles);
  if (relax_iterations > 0) repulsion_relax(dirs, relax_iterations);
  pop.shapes.reserve(n_shapes);
  pop.params.reserve(n_shapes);
  for (std::size_t i = 0; i < n_shapes; ++i) {
    std::vector<double> p = family.sample_params(rng);
    std::vector<Vec3> particles = family.particles(dirs, p);
    if (particle_noise > 0.0) {
      for (auto &pt : particles) {
        pt.x += rng.normal(0.0, particle_noise);
        pt.y += rng.normal(0.0, particle_noise);
        pt.z += rng.normal(0.0, particle_noise);
      }
    }
    pop.shapes.push_back(std::move(particles));
    pop.params.push_back(std::move(p));
  }
  return pop;
}

}  // namespace treu::shape
