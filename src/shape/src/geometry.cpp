#include "treu/shape/geometry.hpp"

#include <cmath>

namespace treu::shape {

double dot(const Vec3 &a, const Vec3 &b) noexcept {
  return a.x * b.x + a.y * b.y + a.z * b.z;
}

double norm(const Vec3 &v) noexcept { return std::sqrt(dot(v, v)); }

Vec3 normalized(const Vec3 &v) noexcept {
  const double n = norm(v);
  return n > 0.0 ? v * (1.0 / n) : Vec3{1.0, 0.0, 0.0};
}

std::vector<Vec3> fibonacci_sphere(std::size_t n) {
  std::vector<Vec3> dirs(n);
  const double golden = (1.0 + std::sqrt(5.0)) / 2.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = (static_cast<double>(i) + 0.5) / static_cast<double>(n);
    const double z = 1.0 - 2.0 * t;
    const double r = std::sqrt(std::max(0.0, 1.0 - z * z));
    const double phi = 2.0 * 3.14159265358979323846 * static_cast<double>(i) /
                       golden;
    dirs[i] = {r * std::cos(phi), r * std::sin(phi), z};
  }
  return dirs;
}

double repulsion_energy(const std::vector<Vec3> &dirs) {
  double e = 0.0;
  for (std::size_t i = 0; i < dirs.size(); ++i) {
    for (std::size_t j = i + 1; j < dirs.size(); ++j) {
      e += 1.0 / std::max(norm(dirs[i] - dirs[j]), 1e-9);
    }
  }
  return e;
}

std::vector<double> repulsion_relax(std::vector<Vec3> &dirs,
                                    std::size_t iterations, double step) {
  std::vector<double> energies;
  energies.reserve(iterations);
  double current = repulsion_energy(dirs);
  for (std::size_t it = 0; it < iterations; ++it) {
    // Gradient of sum 1/|d_ij| w.r.t. p_i is sum_j -(p_i - p_j)/|d_ij|^3.
    std::vector<Vec3> grad(dirs.size());
    for (std::size_t i = 0; i < dirs.size(); ++i) {
      for (std::size_t j = 0; j < dirs.size(); ++j) {
        if (i == j) continue;
        const Vec3 d = dirs[i] - dirs[j];
        const double len = std::max(norm(d), 1e-9);
        grad[i] = grad[i] + d * (-1.0 / (len * len * len));
      }
    }
    // Backtracking line search on the projected step.
    double s = step;
    for (int attempt = 0; attempt < 8; ++attempt) {
      std::vector<Vec3> trial(dirs.size());
      for (std::size_t i = 0; i < dirs.size(); ++i) {
        trial[i] = normalized(dirs[i] - grad[i] * s);
      }
      const double e = repulsion_energy(trial);
      if (e <= current) {
        dirs = std::move(trial);
        current = e;
        break;
      }
      s *= 0.5;
    }
    energies.push_back(current);
  }
  return energies;
}

}  // namespace treu::shape
