#pragma once

// Statistical shape atlas: Procrustes alignment + PCA modes (§2.11).
//
// Mirrors the ShapeWorks analysis the student ran: align the corresponding
// particle sets (translation, optional scale, rotation via Kabsch against
// the evolving mean), run PCA on the flattened coordinates, then report the
// standard shape-model quality metrics — compactness (variance captured per
// mode), generalization (leave-one-out reconstruction error) and
// specificity (distance of model-sampled shapes to the training set).

#include <cstddef>
#include <vector>

#include "treu/core/rng.hpp"
#include "treu/shape/families.hpp"
#include "treu/tensor/matrix.hpp"
#include "treu/tensor/pca.hpp"

namespace treu::shape {

struct ProcrustesOptions {
  bool with_translation = true;
  bool with_scale = true;
  bool with_rotation = true;
  std::size_t iterations = 3;  // generalized Procrustes rounds
};

/// Flatten a particle set to (x0,y0,z0,x1,...) row form.
[[nodiscard]] std::vector<double> flatten(const std::vector<Vec3> &shape);
[[nodiscard]] std::vector<Vec3> unflatten(std::span<const double> row);

/// Generalized Procrustes alignment of a population; returns the aligned
/// observation matrix (one shape per row).
[[nodiscard]] tensor::Matrix procrustes_align(
    const std::vector<std::vector<Vec3>> &shapes,
    const ProcrustesOptions &options = {});

/// The fitted atlas.
class ShapeAtlas {
 public:
  /// Build from a population (aligns, then fits PCA keeping modes that
  /// explain up to `variance_keep` of the variance, at most max_modes).
  static ShapeAtlas build(const Population &population,
                          const ProcrustesOptions &options = {},
                          double variance_keep = 0.99,
                          std::size_t max_modes = 16);

  [[nodiscard]] const tensor::Pca &pca() const noexcept { return pca_; }
  [[nodiscard]] std::size_t n_modes() const noexcept { return pca_.n_components(); }

  /// Modes needed to reach `fraction` of variance (compactness).
  [[nodiscard]] std::size_t compact_modes(double fraction) const {
    return pca_.modes_for_variance(fraction);
  }

  /// Mean shape as particles.
  [[nodiscard]] std::vector<Vec3> mean_shape() const;

  /// Walk along mode k by `stddevs` standard deviations.
  [[nodiscard]] std::vector<Vec3> mode_shape(std::size_t k, double stddevs) const;

  /// RMS particle distance between two corresponding shapes.
  [[nodiscard]] static double shape_distance(const std::vector<Vec3> &a,
                                             const std::vector<Vec3> &b);

  [[nodiscard]] const tensor::Matrix &aligned() const noexcept { return aligned_; }

 private:
  tensor::Pca pca_;
  tensor::Matrix aligned_;
};

/// Leave-one-out generalization error with `modes` retained: mean RMS
/// reconstruction error over held-out shapes.
[[nodiscard]] double generalization_error(const Population &population,
                                          std::size_t modes,
                                          const ProcrustesOptions &options = {});

/// Specificity: mean distance from `samples` random atlas-sampled shapes to
/// their nearest training shape.
[[nodiscard]] double specificity(const ShapeAtlas &atlas,
                                 const Population &population,
                                 std::size_t samples, core::Rng &rng);

/// Particle-count ablation (the student's final study): rebuild the atlas
/// of the same family at several particle counts and report the variance
/// profile stability.
struct AblationRow {
  std::size_t particles = 0;
  std::size_t modes_for_95 = 0;
  double top_mode_ratio = 0.0;  // eigenvalue_0 / total
  double generalization = 0.0;  // LOO error at n_modes(true)
};

[[nodiscard]] std::vector<AblationRow> particle_count_ablation(
    const ShapeFamily &family, std::size_t n_shapes,
    const std::vector<std::size_t> &particle_counts, core::Rng &rng);

}  // namespace treu::shape
