#pragma once

// Synthetic anatomies with known modes of variation (§2.11).
//
// Each family is a star-shaped surface given by a radial function
// r(direction; params). The student pipeline first validated on a sphere
// family with exactly one mode of variation (radius), then computed a model
// for a more anatomical family; we provide a two-lobe "left-atrium-like"
// family (body size + appendage size => two modes) and a three-axis
// ellipsoid family. Because the true generative modes are known, tests can
// assert that PCA recovers the right mode count and energies.

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "treu/core/rng.hpp"
#include "treu/shape/geometry.hpp"

namespace treu::shape {

class ShapeFamily {
 public:
  virtual ~ShapeFamily() = default;

  /// Number of generative parameters ("true" modes of variation).
  [[nodiscard]] virtual std::size_t n_modes() const = 0;

  /// Draw one shape's parameters (iid across modes, standardized).
  [[nodiscard]] virtual std::vector<double> sample_params(core::Rng &rng) const = 0;

  /// Radial function for one parameter vector.
  [[nodiscard]] virtual double radius(const Vec3 &direction,
                                      std::span<const double> params) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Particle positions for a parameter vector along shared directions —
  /// this is where correspondence comes from: particle k of every shape
  /// lies along direction k.
  [[nodiscard]] std::vector<Vec3> particles(
      const std::vector<Vec3> &directions,
      std::span<const double> params) const;
};

/// Sphere with a single radius mode: r = base * (1 + amp * p0).
class SphereFamily final : public ShapeFamily {
 public:
  SphereFamily(double base_radius = 10.0, double amplitude = 0.15)
      : base_(base_radius), amp_(amplitude) {}
  [[nodiscard]] std::size_t n_modes() const override { return 1; }
  [[nodiscard]] std::vector<double> sample_params(core::Rng &rng) const override;
  [[nodiscard]] double radius(const Vec3 &d,
                              std::span<const double> p) const override;
  [[nodiscard]] std::string name() const override { return "sphere"; }

 private:
  double base_, amp_;
};

/// Ellipsoid with three independent axis modes.
class EllipsoidFamily final : public ShapeFamily {
 public:
  explicit EllipsoidFamily(double base_radius = 10.0, double amplitude = 0.12)
      : base_(base_radius), amp_(amplitude) {}
  [[nodiscard]] std::size_t n_modes() const override { return 3; }
  [[nodiscard]] std::vector<double> sample_params(core::Rng &rng) const override;
  [[nodiscard]] double radius(const Vec3 &d,
                              std::span<const double> p) const override;
  [[nodiscard]] std::string name() const override { return "ellipsoid"; }

 private:
  double base_, amp_;
};

/// Two-lobe "left atrium": body radius mode + appendage bump amplitude mode.
class TwoLobeFamily final : public ShapeFamily {
 public:
  TwoLobeFamily(double base_radius = 10.0, double body_amp = 0.12,
                double lobe_amp = 0.35)
      : base_(base_radius), body_amp_(body_amp), lobe_amp_(lobe_amp) {}
  [[nodiscard]] std::size_t n_modes() const override { return 2; }
  [[nodiscard]] std::vector<double> sample_params(core::Rng &rng) const override;
  [[nodiscard]] double radius(const Vec3 &d,
                              std::span<const double> p) const override;
  [[nodiscard]] std::string name() const override { return "two_lobe_atrium"; }

 private:
  double base_, body_amp_, lobe_amp_;
};

/// A population of corresponding particle sets, flattened one shape per row
/// (x0,y0,z0, x1,y1,z1, ...), plus the generating parameters for ground
/// truth checks.
struct Population {
  std::vector<std::vector<Vec3>> shapes;
  std::vector<std::vector<double>> params;
  std::size_t particles_per_shape = 0;
};

/// Sample a population of corresponding particle sets.
///
/// `particle_noise` adds iid isotropic jitter to every particle — the
/// segmentation/correspondence error real pipelines carry. With zero noise
/// the families are analytically low-rank (generalization error collapses
/// to ~0); a realistic atlas study sets 0.05-0.2.
[[nodiscard]] Population sample_population(const ShapeFamily &family,
                                           std::size_t n_shapes,
                                           std::size_t n_particles,
                                           core::Rng &rng,
                                           std::size_t relax_iterations = 0,
                                           double particle_noise = 0.0);

}  // namespace treu::shape
