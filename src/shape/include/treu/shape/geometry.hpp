#pragma once

// 3D geometry primitives for statistical shape modeling (§2.11).

#include <cstddef>
#include <vector>

namespace treu::shape {

struct Vec3 {
  double x = 0.0, y = 0.0, z = 0.0;

  Vec3 operator+(const Vec3 &o) const noexcept { return {x + o.x, y + o.y, z + o.z}; }
  Vec3 operator-(const Vec3 &o) const noexcept { return {x - o.x, y - o.y, z - o.z}; }
  Vec3 operator*(double s) const noexcept { return {x * s, y * s, z * s}; }
  friend bool operator==(const Vec3 &, const Vec3 &) = default;
};

[[nodiscard]] double dot(const Vec3 &a, const Vec3 &b) noexcept;
[[nodiscard]] double norm(const Vec3 &v) noexcept;
[[nodiscard]] Vec3 normalized(const Vec3 &v) noexcept;

/// n nearly uniform unit directions via the Fibonacci sphere lattice — the
/// deterministic initialization for particle systems.
[[nodiscard]] std::vector<Vec3> fibonacci_sphere(std::size_t n);

/// Coulomb-style repulsion energy sum_{i<j} 1/|p_i - p_j| of unit vectors.
[[nodiscard]] double repulsion_energy(const std::vector<Vec3> &dirs);

/// Relax unit directions by projected gradient descent on the repulsion
/// energy (the ShapeWorks-style particle spread optimization). Returns the
/// energy after each iteration (monotonically non-increasing thanks to
/// backtracking).
std::vector<double> repulsion_relax(std::vector<Vec3> &dirs,
                                    std::size_t iterations,
                                    double step = 1e-2);

}  // namespace treu::shape
