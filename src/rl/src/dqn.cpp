#include "treu/rl/dqn.hpp"

#include <algorithm>
#include <stdexcept>

#include "treu/core/stats.hpp"
#include "treu/core/timer.hpp"

namespace treu::rl {

ReplayBuffer::ReplayBuffer(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {
  storage_.resize(capacity_);
}

void ReplayBuffer::push(Transition t) {
  storage_[next_] = std::move(t);
  next_ = (next_ + 1) % capacity_;
  size_ = std::min(size_ + 1, capacity_);
}

const Transition &ReplayBuffer::sample(core::Rng &rng) const {
  if (size_ == 0) throw std::logic_error("ReplayBuffer::sample: empty");
  return storage_[static_cast<std::size_t>(rng.uniform_index(size_))];
}

double evaluate_policy(Environment &env, QNetwork &net, std::size_t episodes,
                       core::Rng &rng, double epsilon) {
  double total = 0.0;
  core::Rng explore = rng.split(0xE5);
  for (std::size_t e = 0; e < episodes; ++e) {
    core::Rng episode_rng = rng.split(e);
    std::vector<double> state = env.reset(episode_rng);
    for (;;) {
      const std::size_t action =
          epsilon > 0.0 && explore.bernoulli(epsilon)
              ? static_cast<std::size_t>(explore.uniform_index(env.n_actions()))
              : net.argmax_action(state);
      const StepResult r = env.step(action);
      total += r.reward;
      if (r.done) break;
      state = r.state;
    }
  }
  return episodes > 0 ? total / static_cast<double>(episodes) : 0.0;
}

TrainOutcome train_dqn(Environment &env, const std::string &family,
                       const DqnConfig &config, std::uint64_t seed) {
  TrainOutcome outcome;
  core::WallTimer timer;
  core::Rng rng(seed, 0xD09);
  core::Rng init_rng = rng.split(1);
  core::Rng target_init = rng.split(1);  // same lane => identical init
  std::unique_ptr<QNetwork> online = make_qnet(
      family, env.state_dim(), env.n_actions(), init_rng, config.lr);
  std::unique_ptr<QNetwork> target = make_qnet(
      family, env.state_dim(), env.n_actions(), target_init, config.lr);
  target->sync_from(*online);

  ReplayBuffer buffer(config.replay_capacity);
  core::Rng explore_rng = rng.split(2);
  core::Rng sample_rng = rng.split(3);
  std::size_t global_step = 0;
  std::uint64_t update_step = 0;

  const auto observer_view = [&](std::uint64_t completed,
                                 std::uint64_t episode,
                                 std::vector<nn::Param *> &list) {
    nn::TrainView view;
    view.params = std::span<nn::Param *const>(list.data(), list.size());
    view.opt = nullptr;  // QNetwork::update owns its optimizer
    view.step = completed;
    view.epoch = episode;
    return view;
  };
  std::vector<nn::Param *> observed_params;
  if (config.observer) {
    observed_params = online->params();
    config.observer->on_train_start(
        observer_view(0, 0, observed_params));
  }

  for (std::size_t episode = 0; episode < config.episodes; ++episode) {
    core::Rng episode_rng = rng.split(100 + episode);
    std::vector<double> state = env.reset(episode_rng);
    double episode_return = 0.0;
    for (;;) {
      const double epsilon =
          config.epsilon_end +
          (config.epsilon_start - config.epsilon_end) *
              std::max(0.0, 1.0 - static_cast<double>(global_step) /
                                      config.epsilon_decay_steps);
      std::size_t action;
      if (explore_rng.bernoulli(epsilon)) {
        action = static_cast<std::size_t>(
            explore_rng.uniform_index(env.n_actions()));
      } else {
        action = online->argmax_action(state);
      }
      const StepResult r = env.step(action);
      episode_return += r.reward;
      buffer.push({state, action, r.reward, r.state, r.done});
      ++global_step;

      if (buffer.size() >= config.warmup) {
        for (std::size_t u = 0; u < config.batch_size; ++u) {
          const Transition &t = buffer.sample(sample_rng);
          if (config.observer) {
            // The replay draw above already happened, so a skipped update
            // leaves the RNG stream aligned with an unhooked run.
            const nn::BatchDecision dec =
                config.observer->on_batch_start({update_step, episode, {}});
            if (dec.directive == nn::BatchDirective::Skip) {
              ++update_step;
              continue;
            }
          }
          double target_q = t.reward;
          if (!t.done) {
            const auto next_q = target->q_values(t.next_state);
            if (config.double_dqn) {
              const std::size_t best = online->argmax_action(t.next_state);
              target_q += config.gamma * next_q[best];
            } else {
              target_q += config.gamma *
                          *std::max_element(next_q.begin(), next_q.end());
            }
          }
          const double td_loss = online->update(t.state, t.action, target_q);
          ++update_step;
          if (config.observer) {
            nn::StepEvent ev;
            ev.step = update_step - 1;
            ev.epoch = episode;
            ev.loss = td_loss;
            observed_params = online->params();
            const nn::StepAction act = config.observer->on_step_end(
                ev, observer_view(update_step, episode, observed_params));
            if (act != nn::StepAction::Continue) {
              // Rollback degenerates to Stop: there is no optimizer state
              // the observer could restore (see DqnConfig::observer).
              outcome.aborted = true;
              outcome.aborted_at_update = update_step - 1;
            }
          }
          if (outcome.aborted) break;
        }
      }
      if (outcome.aborted) break;
      if (global_step % config.target_sync_interval == 0) {
        target->sync_from(*online);
      }
      if (r.done) break;
      state = r.state;
    }
    outcome.episode_returns.push_back(episode_return);
    if (outcome.aborted) break;
  }
  if (config.observer) {
    observed_params = online->params();
    config.observer->on_train_end(
        observer_view(update_step, config.episodes, observed_params));
  }

  core::Rng eval_rng = rng.split(4);
  outcome.final_eval_return = evaluate_policy(env, *online, 10, eval_rng);
  outcome.seconds = timer.elapsed_seconds();
  return outcome;
}

ReliabilityRow reliability_study(const std::string &env_name,
                                 const std::string &family,
                                 std::size_t n_seeds,
                                 const DqnConfig &config) {
  ReliabilityRow row;
  row.environment = env_name;
  row.family = family;
  row.seeds = n_seeds;
  std::vector<double> finals;
  finals.reserve(n_seeds);
  for (std::size_t s = 0; s < n_seeds; ++s) {
    const auto env = make_environment(env_name);
    const TrainOutcome out = train_dqn(*env, family, config, 1000 + s);
    finals.push_back(out.final_eval_return);
  }
  row.mean_return = core::mean(finals);
  row.stddev_return = core::stddev(finals);
  row.cvar25 = core::cvar_lower(finals, 0.25);
  row.min_return = core::min_of(finals);
  return row;
}

}  // namespace treu::rl
