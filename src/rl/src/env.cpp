#include "treu/rl/env.hpp"

#include <cmath>
#include <stdexcept>

namespace treu::rl {

GridWorld::GridWorld(double slip_probability) : slip_(slip_probability) {}

std::vector<double> GridWorld::reset(core::Rng &rng) {
  rng_ = rng.split(0x6D);
  x_ = 0;
  y_ = 0;
  steps_ = 0;
  return observe();
}

std::vector<double> GridWorld::observe() const {
  return {static_cast<double>(x_) / 4.0, static_cast<double>(y_) / 4.0};
}

StepResult GridWorld::step(std::size_t action) {
  ++steps_;
  std::size_t effective = action;
  if (rng_.bernoulli(slip_)) {
    effective = static_cast<std::size_t>(rng_.uniform_index(4));
  }
  switch (effective) {
    case 0: y_ = std::min(y_ + 1, 4); break;  // up
    case 1: y_ = std::max(y_ - 1, 0); break;  // down
    case 2: x_ = std::max(x_ - 1, 0); break;  // left
    case 3: x_ = std::min(x_ + 1, 4); break;  // right
    default: throw std::invalid_argument("GridWorld::step: bad action");
  }
  StepResult r;
  r.state = observe();
  r.reward = -0.05;
  // Goal at (4,4); pit at (2,2).
  if (x_ == 4 && y_ == 4) {
    r.reward = 10.0;
    r.done = true;
  } else if (x_ == 2 && y_ == 2) {
    r.reward = -5.0;
    r.done = true;
  } else if (steps_ >= max_steps()) {
    r.done = true;
  }
  return r;
}

std::vector<double> CartPole::reset(core::Rng &rng) {
  core::Rng local = rng.split(0xC9);
  x_ = local.uniform(-0.05, 0.05);
  x_dot_ = local.uniform(-0.05, 0.05);
  theta_ = local.uniform(-0.05, 0.05);
  theta_dot_ = local.uniform(-0.05, 0.05);
  steps_ = 0;
  return {x_, x_dot_, theta_, theta_dot_};
}

StepResult CartPole::step(std::size_t action) {
  if (action > 1) throw std::invalid_argument("CartPole::step: bad action");
  ++steps_;
  constexpr double gravity = 9.8;
  constexpr double mass_cart = 1.0;
  constexpr double mass_pole = 0.1;
  constexpr double total_mass = mass_cart + mass_pole;
  constexpr double length = 0.5;  // half pole length
  constexpr double pole_mass_length = mass_pole * length;
  constexpr double force_mag = 10.0;
  constexpr double tau = 0.02;

  const double force = action == 1 ? force_mag : -force_mag;
  const double cos_t = std::cos(theta_);
  const double sin_t = std::sin(theta_);
  const double temp =
      (force + pole_mass_length * theta_dot_ * theta_dot_ * sin_t) / total_mass;
  const double theta_acc =
      (gravity * sin_t - cos_t * temp) /
      (length * (4.0 / 3.0 - mass_pole * cos_t * cos_t / total_mass));
  const double x_acc = temp - pole_mass_length * theta_acc * cos_t / total_mass;

  x_ += tau * x_dot_;
  x_dot_ += tau * x_acc;
  theta_ += tau * theta_dot_;
  theta_dot_ += tau * theta_acc;

  StepResult r;
  r.state = {x_, x_dot_, theta_, theta_dot_};
  const bool failed =
      std::fabs(x_) > 2.4 || std::fabs(theta_) > 12.0 * 3.14159265 / 180.0;
  r.done = failed || steps_ >= max_steps();
  r.reward = failed ? 0.0 : 1.0;
  return r;
}

Frogger::Frogger(std::size_t lanes, std::size_t width)
    : lanes_(lanes), width_(width) {
  if (lanes_ == 0 || width_ < 2) {
    throw std::invalid_argument("Frogger: degenerate configuration");
  }
}

std::size_t Frogger::state_dim() const {
  // Frog progress + per lane: relative car position and speed.
  return 1 + 2 * lanes_;
}

std::vector<double> Frogger::reset(core::Rng &rng) {
  core::Rng local = rng.split(0xF6);
  frog_lane_ = 0;
  steps_ = 0;
  car_pos_.assign(lanes_, 0.0);
  car_speed_.assign(lanes_, 0.0);
  for (std::size_t l = 0; l < lanes_; ++l) {
    car_pos_[l] = local.uniform(0.0, static_cast<double>(width_));
    const double speed = local.uniform(0.4, 1.2);
    car_speed_[l] = (l % 2 == 0) ? speed : -speed;
  }
  return observe();
}

std::vector<double> Frogger::observe() const {
  std::vector<double> s;
  s.reserve(state_dim());
  s.push_back(static_cast<double>(frog_lane_) /
              static_cast<double>(lanes_ + 1));
  for (std::size_t l = 0; l < lanes_; ++l) {
    // Signed distance from the crossing column (width/2), normalized.
    const double rel =
        (car_pos_[l] - static_cast<double>(width_) / 2.0) /
        static_cast<double>(width_);
    s.push_back(rel);
    s.push_back(car_speed_[l]);
  }
  return s;
}

bool Frogger::collided() const {
  if (frog_lane_ == 0 || frog_lane_ > lanes_) return false;  // on a bank
  const std::size_t lane = frog_lane_ - 1;
  const double crossing = static_cast<double>(width_) / 2.0;
  return std::fabs(car_pos_[lane] - crossing) < 0.75;
}

StepResult Frogger::step(std::size_t action) {
  if (action > 2) throw std::invalid_argument("Frogger::step: bad action");
  ++steps_;
  // Cars move (wrap around the lane).
  for (std::size_t l = 0; l < lanes_; ++l) {
    car_pos_[l] += car_speed_[l];
    const double w = static_cast<double>(width_);
    while (car_pos_[l] < 0.0) car_pos_[l] += w;
    while (car_pos_[l] >= w) car_pos_[l] -= w;
  }
  if (action == 1 && frog_lane_ <= lanes_) ++frog_lane_;
  if (action == 2 && frog_lane_ > 0) --frog_lane_;

  StepResult r;
  r.reward = -0.05;
  if (collided()) {
    r.reward = -5.0;
    r.done = true;
  } else if (frog_lane_ == lanes_ + 1) {
    r.reward = 10.0;
    r.done = true;
  } else if (steps_ >= max_steps()) {
    r.done = true;
  }
  r.state = observe();
  return r;
}

std::unique_ptr<Environment> make_environment(const std::string &name) {
  if (name == "gridworld") return std::make_unique<GridWorld>();
  if (name == "cartpole") return std::make_unique<CartPole>();
  if (name == "frogger") return std::make_unique<Frogger>();
  throw std::invalid_argument("make_environment: unknown environment " + name);
}

}  // namespace treu::rl
