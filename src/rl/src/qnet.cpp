#include "treu/rl/qnet.hpp"

#include <algorithm>
#include <stdexcept>

#include "treu/nn/param.hpp"

namespace treu::rl {
namespace {

tensor::Matrix row_from(std::span<const double> state) {
  tensor::Matrix m(1, state.size());
  for (std::size_t i = 0; i < state.size(); ++i) m(0, i) = state[i];
  return m;
}

}  // namespace

std::vector<std::vector<double>> QNetwork::predict_batch(
    std::span<const std::vector<double>> states) {
  std::vector<std::vector<double>> out;
  out.reserve(states.size());
  for (const auto &state : states) out.push_back(q_values(state));
  return out;
}

std::string QNetwork::weight_hash() {
  const auto p = params();
  return nn::weight_hash_hex(std::span<nn::Param *const>(p.data(), p.size()));
}

void QNetwork::sync_from(QNetwork &other) {
  const auto src = other.params();
  const auto dst = params();
  const std::vector<double> flat =
      nn::save_weights(std::span<nn::Param *const>(src.data(), src.size()));
  nn::load_weights(std::span<nn::Param *const>(dst.data(), dst.size()), flat);
}

std::size_t QNetwork::argmax_action(std::span<const double> state) {
  const auto q = q_values(state);
  return static_cast<std::size_t>(
      std::max_element(q.begin(), q.end()) - q.begin());
}

MlpQNet::MlpQNet(std::size_t state_dim, std::size_t hidden,
                 std::size_t actions, core::Rng &rng, double lr)
    : actions_(actions), opt_(lr) {
  net_.emplace<nn::Dense>(state_dim, hidden, rng);
  net_.emplace<nn::ReLU>();
  net_.emplace<nn::Dense>(hidden, hidden, rng);
  net_.emplace<nn::ReLU>();
  net_.emplace<nn::Dense>(hidden, actions, rng);
}

std::vector<double> MlpQNet::q_values(std::span<const double> state) {
  const tensor::Matrix out = net_.forward(row_from(state));
  return {out.flat().begin(), out.flat().end()};
}

std::vector<std::vector<double>> MlpQNet::predict_batch(
    std::span<const std::vector<double>> states) {
  std::vector<std::vector<double>> out;
  if (states.empty()) return out;
  const std::size_t dim = states.front().size();
  tensor::Matrix x(states.size(), dim);
  for (std::size_t r = 0; r < states.size(); ++r) {
    if (states[r].size() != dim) {
      throw std::invalid_argument("MlpQNet::predict_batch: ragged batch");
    }
    auto row = x.row(r);
    for (std::size_t c = 0; c < dim; ++c) row[c] = states[r][c];
  }
  const tensor::Matrix q = net_.forward(x);
  out.reserve(states.size());
  for (std::size_t r = 0; r < q.rows(); ++r) {
    const auto row = q.row(r);
    out.emplace_back(row.begin(), row.end());
  }
  return out;
}

double MlpQNet::update(std::span<const double> state, std::size_t action,
                       double target) {
  const tensor::Matrix out = net_.forward(row_from(state));
  if (action >= actions_) throw std::out_of_range("MlpQNet::update: action");
  const double td = out(0, action) - target;
  tensor::Matrix grad(1, actions_, 0.0);
  grad(0, action) = 2.0 * td;
  net_.backward(grad);
  const auto p = net_.params();
  nn::clip_grad_norm(std::span<nn::Param *const>(p.data(), p.size()), 10.0);
  opt_.step(p);
  return td * td;
}

AttentionQNet::AttentionQNet(std::size_t state_dim, std::size_t token_size,
                             std::size_t model_dim, std::size_t heads,
                             std::size_t actions, core::Rng &rng, double lr)
    : token_size_(token_size),
      n_tokens_((state_dim + token_size - 1) / token_size),
      actions_(actions),
      proj_(token_size, model_dim, rng),
      posenc_(n_tokens_, model_dim),
      block_(model_dim, heads, model_dim * 2, rng),
      head_(model_dim, actions, rng),
      opt_(lr) {
  if (token_size == 0) {
    throw std::invalid_argument("AttentionQNet: token size 0");
  }
}

tensor::Matrix AttentionQNet::tokenize(std::span<const double> state) const {
  tensor::Matrix tokens(n_tokens_, token_size_, 0.0);
  for (std::size_t i = 0; i < state.size(); ++i) {
    tokens(i / token_size_, i % token_size_) = state[i];
  }
  return tokens;
}

tensor::Matrix AttentionQNet::forward_internal(std::span<const double> state) {
  const tensor::Matrix projected = proj_.forward(tokenize(state));
  const tensor::Matrix mixed = block_.forward(posenc_.forward(projected));
  return head_.forward(pool_.forward(mixed));
}

std::vector<double> AttentionQNet::q_values(std::span<const double> state) {
  const tensor::Matrix out = forward_internal(state);
  return {out.flat().begin(), out.flat().end()};
}

double AttentionQNet::update(std::span<const double> state, std::size_t action,
                             double target) {
  const tensor::Matrix out = forward_internal(state);
  if (action >= actions_) {
    throw std::out_of_range("AttentionQNet::update: action");
  }
  const double td = out(0, action) - target;
  tensor::Matrix grad(1, actions_, 0.0);
  grad(0, action) = 2.0 * td;
  proj_.backward(posenc_.backward(
      block_.backward(pool_.backward(head_.backward(grad)))));
  const auto p = params();
  nn::clip_grad_norm(std::span<nn::Param *const>(p.data(), p.size()), 10.0);
  opt_.step(p);
  return td * td;
}

std::vector<nn::Param *> AttentionQNet::params() {
  std::vector<nn::Param *> out;
  for (nn::Param *p : proj_.params()) out.push_back(p);
  for (nn::Param *p : block_.params()) out.push_back(p);
  for (nn::Param *p : head_.params()) out.push_back(p);
  return out;
}

std::unique_ptr<QNetwork> make_qnet(const std::string &family,
                                    std::size_t state_dim, std::size_t actions,
                                    core::Rng &rng, double lr) {
  if (family == "mlp") {
    return std::make_unique<MlpQNet>(state_dim, 32, actions, rng, lr);
  }
  if (family == "attention") {
    return std::make_unique<AttentionQNet>(state_dim, 3, 16, 2, actions, rng,
                                           lr);
  }
  throw std::invalid_argument("make_qnet: unknown family " + family);
}

}  // namespace treu::rl
