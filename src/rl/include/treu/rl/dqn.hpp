#pragma once

// Deep Q-learning (Mnih et al.) with replay buffer, epsilon-greedy
// exploration, and a periodically synced target network — the §2.8 training
// harness shared by both Q-estimator families, plus the reliability
// analysis across seeds the project was designed around.

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "treu/core/rng.hpp"
#include "treu/nn/train_driver.hpp"
#include "treu/rl/env.hpp"
#include "treu/rl/qnet.hpp"

namespace treu::rl {

struct Transition {
  std::vector<double> state;
  std::size_t action = 0;
  double reward = 0.0;
  std::vector<double> next_state;
  bool done = false;
};

/// Fixed-capacity ring buffer with uniform sampling.
class ReplayBuffer {
 public:
  explicit ReplayBuffer(std::size_t capacity);

  void push(Transition t);
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] const Transition &sample(core::Rng &rng) const;

 private:
  std::vector<Transition> storage_;
  std::size_t capacity_;
  std::size_t next_ = 0;
  std::size_t size_ = 0;
};

struct DqnConfig {
  std::size_t episodes = 80;
  std::size_t replay_capacity = 4096;
  std::size_t batch_size = 16;        // updates per environment step
  std::size_t warmup = 64;            // transitions before learning starts
  std::size_t target_sync_interval = 100;  // env steps between target syncs
  double gamma = 0.98;
  double epsilon_start = 1.0;
  double epsilon_end = 0.1;
  double epsilon_decay_steps = 1000;
  double lr = 1e-3;
  /// Double DQN (van Hasselt et al.): the online net picks the next action,
  /// the target net scores it. Curbs the max-operator overestimation that
  /// otherwise traps greedy policies in self-consistent loops.
  bool double_dqn = true;
  /// Optional per-update hooks (not owned). Semantics are narrower than the
  /// nn step driver's: QNetwork::update owns its backward + optimizer step,
  /// so events report the TD loss with no gradient norm, Skip drops the
  /// update (the replay draw still happens, keeping the RNG stream aligned
  /// with an unhooked run), and Rollback degenerates to Stop — there is no
  /// optimizer to restore. A guard::Supervisor therefore acts as a NaN/spike
  /// tripwire that halts a poisoned run instead of healing it.
  nn::TrainObserver *observer = nullptr;
};

struct TrainOutcome {
  std::vector<double> episode_returns;
  double final_eval_return = 0.0;   // greedy policy, mean over eval episodes
  double seconds = 0.0;
  bool aborted = false;             // an observer stopped the run
  std::uint64_t aborted_at_update = 0;
};

/// Train a fresh Q network of `family` on `env`; deterministic per seed.
[[nodiscard]] TrainOutcome train_dqn(Environment &env,
                                     const std::string &family,
                                     const DqnConfig &config,
                                     std::uint64_t seed);

/// Policy evaluation over `episodes`. `epsilon` adds the small exploration
/// noise standard in DQN evaluation (Mnih et al. use 0.05): it breaks the
/// action-tie loops a purely greedy policy can fall into.
[[nodiscard]] double evaluate_policy(Environment &env, QNetwork &net,
                                     std::size_t episodes, core::Rng &rng,
                                     double epsilon = 0.05);

/// Reliability summary across seeds (the §2.8 deliverable): mean, stddev,
/// and lower-tail CVaR of final evaluation returns.
struct ReliabilityRow {
  std::string environment;
  std::string family;
  double mean_return = 0.0;
  double stddev_return = 0.0;
  double cvar25 = 0.0;       // mean of the worst 25% of seeds
  double min_return = 0.0;
  std::size_t seeds = 0;
};

[[nodiscard]] ReliabilityRow reliability_study(const std::string &env_name,
                                               const std::string &family,
                                               std::size_t n_seeds,
                                               const DqnConfig &config);

}  // namespace treu::rl
