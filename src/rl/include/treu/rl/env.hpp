#pragma once

// Reinforcement-learning environments (§2.8).
//
// Stand-ins for the Gymnasium Atari suite the students used, chosen so the
// reliability question transfers: episodic tasks with dense-enough reward,
// controllable stochasticity, and a seedable reset. `Frogger` is named
// after the environment where the paper observed "a slightly better sum of
// average rewards ... than in other environments".

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "treu/core/rng.hpp"

namespace treu::rl {

struct StepResult {
  std::vector<double> state;
  double reward = 0.0;
  bool done = false;
};

class Environment {
 public:
  virtual ~Environment() = default;

  [[nodiscard]] virtual std::size_t state_dim() const = 0;
  [[nodiscard]] virtual std::size_t n_actions() const = 0;
  [[nodiscard]] virtual std::string name() const = 0;

  /// Reset to a (seeded) start state.
  virtual std::vector<double> reset(core::Rng &rng) = 0;

  /// Apply an action.
  virtual StepResult step(std::size_t action) = 0;

  /// Hard cap on episode length (environments self-terminate at this).
  [[nodiscard]] virtual std::size_t max_steps() const { return 200; }
};

/// 5x5 grid with a goal, a pit, and slip noise. Actions: up/down/left/right.
class GridWorld final : public Environment {
 public:
  explicit GridWorld(double slip_probability = 0.1);

  [[nodiscard]] std::size_t state_dim() const override { return 2; }
  [[nodiscard]] std::size_t n_actions() const override { return 4; }
  [[nodiscard]] std::string name() const override { return "gridworld"; }
  std::vector<double> reset(core::Rng &rng) override;
  StepResult step(std::size_t action) override;
  [[nodiscard]] std::size_t max_steps() const override { return 60; }

 private:
  [[nodiscard]] std::vector<double> observe() const;
  int x_ = 0, y_ = 0;
  std::size_t steps_ = 0;
  double slip_;
  core::Rng rng_{0};
};

/// Classic cart-pole balancing (Barto/Sutton physics, Euler integration).
/// Actions: push left / push right. Reward +1 per step upright.
class CartPole final : public Environment {
 public:
  [[nodiscard]] std::size_t state_dim() const override { return 4; }
  [[nodiscard]] std::size_t n_actions() const override { return 2; }
  [[nodiscard]] std::string name() const override { return "cartpole"; }
  std::vector<double> reset(core::Rng &rng) override;
  StepResult step(std::size_t action) override;
  [[nodiscard]] std::size_t max_steps() const override { return 200; }

 private:
  double x_ = 0, x_dot_ = 0, theta_ = 0, theta_dot_ = 0;
  std::size_t steps_ = 0;
};

/// Lane-crossing game: the frog advances through `lanes` lanes of moving
/// cars. Actions: wait / advance / retreat. Reaching the far side pays +10,
/// collision pays -5 and ends the episode, each step costs -0.05.
class Frogger final : public Environment {
 public:
  explicit Frogger(std::size_t lanes = 3, std::size_t width = 10);

  [[nodiscard]] std::size_t state_dim() const override;
  [[nodiscard]] std::size_t n_actions() const override { return 3; }
  [[nodiscard]] std::string name() const override { return "frogger"; }
  std::vector<double> reset(core::Rng &rng) override;
  StepResult step(std::size_t action) override;
  [[nodiscard]] std::size_t max_steps() const override { return 120; }

 private:
  [[nodiscard]] std::vector<double> observe() const;
  [[nodiscard]] bool collided() const;
  std::size_t lanes_, width_;
  std::size_t frog_lane_ = 0;        // 0 = start bank, lanes_+1 = far bank
  std::vector<double> car_pos_;      // one car per lane, fractional position
  std::vector<double> car_speed_;    // signed lanes/step
  std::size_t steps_ = 0;
};

/// Factory by name ("gridworld" | "cartpole" | "frogger").
[[nodiscard]] std::unique_ptr<Environment> make_environment(const std::string &name);

}  // namespace treu::rl
