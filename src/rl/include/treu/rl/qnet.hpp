#pragma once

// Q-value estimators (§2.8): the experiment swaps the network family that
// estimates Q values inside an otherwise identical DQN. `MlpQNet` stands in
// for the CNN families (EfficientNetV2) and `AttentionQNet` for the vision
// transformers (Swin) — on vector states the architectural contrast that
// matters is feed-forward versus attention-based token mixing.

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "treu/core/rng.hpp"
#include "treu/nn/attention.hpp"
#include "treu/nn/layer.hpp"
#include "treu/nn/layers.hpp"
#include "treu/nn/optimizer.hpp"
#include "treu/nn/predictor.hpp"

namespace treu::rl {

/// Q estimators implement the unified Predictor API: a batch of state
/// vectors in, one Q-value vector per state out. The base class provides a
/// per-sample loop; MlpQNet overrides it with a true stacked-matrix forward
/// (row-independent layers keep it bitwise-identical to the loop).
class QNetwork
    : public nn::Predictor<std::vector<double>, std::vector<double>> {
 public:
  /// Q values for one state.
  [[nodiscard]] virtual std::vector<double> q_values(
      std::span<const double> state) = 0;

  /// Predictor: one Q vector per state row.
  [[nodiscard]] std::vector<std::vector<double>> predict_batch(
      std::span<const std::vector<double>> states) override;
  [[nodiscard]] std::string weight_hash() override;

  /// One SGD step pulling Q(state, action) toward target; returns TD error^2.
  virtual double update(std::span<const double> state, std::size_t action,
                        double target) = 0;

  [[nodiscard]] virtual std::vector<nn::Param *> params() = 0;
  [[nodiscard]] virtual std::string family() const = 0;

  /// Copy another network's weights into this one (target-network sync).
  void sync_from(QNetwork &other);

  [[nodiscard]] std::size_t argmax_action(std::span<const double> state);
};

/// Feed-forward Q estimator.
class MlpQNet final : public QNetwork {
 public:
  MlpQNet(std::size_t state_dim, std::size_t hidden, std::size_t actions,
          core::Rng &rng, double lr);

  std::vector<double> q_values(std::span<const double> state) override;
  /// Batched override: all states stacked into one matrix, one forward.
  std::vector<std::vector<double>> predict_batch(
      std::span<const std::vector<double>> states) override;
  double update(std::span<const double> state, std::size_t action,
                double target) override;
  std::vector<nn::Param *> params() override { return net_.params(); }
  [[nodiscard]] std::string family() const override { return "mlp"; }

 private:
  nn::Sequential net_;
  std::size_t actions_;
  nn::Adam opt_;
};

/// Attention-based Q estimator: the state vector is chunked into tokens,
/// projected, mixed by a transformer block, mean-pooled, and decoded.
class AttentionQNet final : public QNetwork {
 public:
  AttentionQNet(std::size_t state_dim, std::size_t token_size,
                std::size_t model_dim, std::size_t heads, std::size_t actions,
                core::Rng &rng, double lr);

  std::vector<double> q_values(std::span<const double> state) override;
  double update(std::span<const double> state, std::size_t action,
                double target) override;
  std::vector<nn::Param *> params() override;
  [[nodiscard]] std::string family() const override { return "attention"; }

 private:
  [[nodiscard]] tensor::Matrix tokenize(std::span<const double> state) const;
  tensor::Matrix forward_internal(std::span<const double> state);

  std::size_t token_size_;
  std::size_t n_tokens_;
  std::size_t actions_;
  nn::Dense proj_;
  nn::PositionalEncoding posenc_;
  nn::TransformerBlock block_;
  nn::MeanPool pool_;
  nn::Dense head_;
  nn::Adam opt_;
};

/// Factory: family is "mlp" or "attention".
[[nodiscard]] std::unique_ptr<QNetwork> make_qnet(const std::string &family,
                                                  std::size_t state_dim,
                                                  std::size_t actions,
                                                  core::Rng &rng, double lr);

}  // namespace treu::rl
