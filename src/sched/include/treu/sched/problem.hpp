#pragma once

// Workload instances and the measurement harness for schedule tuning.
//
// A `Problem` owns concrete random inputs for one kernel at one size; it can
// execute any schedule on them and report wall time, GFLOP/s, and a digest
// of the output (so the tuner can assert that every candidate it timed
// computed the same function — measurement without trust is how silent
// mis-schedules survive).

#include <cstddef>
#include <vector>

#include "treu/core/rng.hpp"
#include "treu/core/sha256.hpp"
#include "treu/parallel/thread_pool.hpp"
#include "treu/sched/schedule.hpp"
#include "treu/tensor/matrix.hpp"

namespace treu::sched {

/// Timing result of running one schedule on one problem.
struct Measurement {
  double seconds = 0.0;       // best (min) over repeats
  double gflops = 0.0;        // flops / seconds / 1e9
  core::Digest output_digest; // fingerprint of the produced values
  bool output_matches_reference = false;
};

class Problem {
 public:
  /// Create a problem with iid U(-1,1) inputs drawn from `rng`.
  Problem(KernelKind kind, ProblemSize size, core::Rng &rng);

  [[nodiscard]] KernelKind kind() const noexcept { return kind_; }
  [[nodiscard]] const ProblemSize &size() const noexcept { return size_; }

  /// Total floating point operations of one kernel execution.
  [[nodiscard]] double flops() const noexcept;

  /// Compulsory memory traffic in bytes (for arithmetic intensity).
  [[nodiscard]] double bytes() const noexcept;

  /// Arithmetic intensity: flops / bytes.
  [[nodiscard]] double intensity() const noexcept;

  /// Execute `schedule` once and return the raw output values (flattened).
  /// Throws std::invalid_argument when the schedule targets another kernel.
  [[nodiscard]] std::vector<double> execute(const Schedule &schedule,
                                            parallel::ThreadPool &pool) const;

  /// Time `schedule` (min over `repeats` executions) and compare the output
  /// against the naive-kernel reference.
  [[nodiscard]] Measurement measure(const Schedule &schedule,
                                    parallel::ThreadPool &pool,
                                    std::size_t repeats = 3) const;

  /// The reference output (naive kernel), computed once lazily.
  [[nodiscard]] const std::vector<double> &reference() const;

 private:
  KernelKind kind_;
  ProblemSize size_;
  tensor::Matrix a_;                 // matrix operand (or conv2d input)
  tensor::Matrix b_;                 // second matrix operand (or conv2d kernel)
  std::vector<double> x_;            // vector operand (matvec / conv1d)
  std::vector<double> w_;            // conv1d taps
  mutable std::vector<double> reference_;
  mutable bool reference_ready_ = false;
};

/// Standard evaluation sizes used by the §2.5 benchmark (one per kernel,
/// sized to run in milliseconds on a laptop core).
[[nodiscard]] ProblemSize default_size(KernelKind kind) noexcept;

}  // namespace treu::sched
