#pragma once

// Roofline performance model (§2.5 lesson).
//
// The model needs two machine numbers: peak floating-point throughput and
// peak memory bandwidth. We *measure* both with micro-kernels rather than
// trusting spec sheets (the whole point of the REU lesson was measuring).
// Given a kernel's arithmetic intensity I (flops/byte), the attainable
// performance is min(peak_flops, I * bandwidth); the ridge point
// peak_flops / bandwidth separates memory-bound from compute-bound kernels.

#include <cstddef>
#include <string>

namespace treu::sched {

struct RooflineModel {
  double peak_gflops = 0.0;       // measured compute ceiling
  double peak_bandwidth_gbs = 0.0;  // measured memory ceiling (GB/s)

  /// Attainable GFLOP/s at arithmetic intensity `flops_per_byte`.
  [[nodiscard]] double attainable_gflops(double flops_per_byte) const noexcept;

  /// Intensity at which the two ceilings cross.
  [[nodiscard]] double ridge_intensity() const noexcept;

  [[nodiscard]] bool memory_bound(double flops_per_byte) const noexcept;

  /// Fraction of the attainable roof achieved by a measured rate.
  [[nodiscard]] double efficiency(double flops_per_byte,
                                  double measured_gflops) const noexcept;

  [[nodiscard]] std::string describe() const;
};

/// Measure the compute ceiling with an unrolled independent-FMA loop
/// (`work_flops` total flops; repeats pick the best trial).
[[nodiscard]] double measure_peak_gflops(std::size_t work_flops = std::size_t{1} << 27,
                                         std::size_t repeats = 3);

/// Measure the streaming-bandwidth ceiling with a STREAM-triad style loop
/// over `bytes` of working set.
[[nodiscard]] double measure_peak_bandwidth_gbs(std::size_t bytes = std::size_t{1} << 26,
                                                std::size_t repeats = 3);

/// Measure both ceilings.
[[nodiscard]] RooflineModel measure_roofline();

}  // namespace treu::sched
