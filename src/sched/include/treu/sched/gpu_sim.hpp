#pragma once

// Discrete-event simulator of shared-GPU contention (§3 "Resource issues").
//
// The paper's assessment notes that many student projects finished at the
// same time, every group launched long training jobs at once, and "others
// who were even slightly late to launch were stuck". Its discussion proposes
// "staging GPU result collection across non-overlapping batches". This
// module makes that observation quantitative: a small event-driven cluster
// model compares an uncoordinated deadline rush against staged batches and
// reports per-job wait statistics and cluster utilization.

#include <cstddef>
#include <string>
#include <vector>

#include "treu/core/rng.hpp"

namespace treu::sched {

struct GpuJob {
  std::size_t id = 0;
  double submit_time = 0.0;  // hours
  double duration = 0.0;     // hours of GPU time once started
  std::size_t gpus = 1;      // GPUs held for the whole duration
};

struct JobOutcome {
  std::size_t id = 0;
  double start_time = 0.0;
  double finish_time = 0.0;
  double wait = 0.0;            // start - original submit (total delay)
  double queueing_wait = 0.0;   // start - effective submit (unplanned part:
                                // under staging, the deferral to the batch
                                // window is planned; this is what remains)
};

struct SimResult {
  std::vector<JobOutcome> outcomes;
  double makespan = 0.0;          // last finish time
  double mean_wait = 0.0;
  double max_wait = 0.0;
  double p90_wait = 0.0;
  double mean_queueing_wait = 0.0;  // the unpredictable "stuck" component
  double max_queueing_wait = 0.0;
  double utilization = 0.0;       // busy GPU-hours / (gpus * makespan)

  [[nodiscard]] std::string summary() const;
};

/// FIFO backfill-free scheduler: jobs start in submit order as soon as
/// enough GPUs are free. Jobs needing more GPUs than the cluster has are
/// rejected (throw std::invalid_argument).
[[nodiscard]] SimResult simulate_fifo(std::vector<GpuJob> jobs,
                                      std::size_t cluster_gpus);

/// Assign jobs round-robin to `batches` non-overlapping windows: batch b's
/// jobs are resubmitted at the makespan of batch b-1 (the "proactive
/// staging" mitigation from the paper's conclusion). Returns the combined
/// simulation.
[[nodiscard]] SimResult simulate_staged(std::vector<GpuJob> jobs,
                                        std::size_t cluster_gpus,
                                        std::size_t batches);

/// Workload generator: `n_jobs` training runs whose submissions cluster in
/// the final `rush_window` hours before a shared deadline (the REU poster
/// deadline effect). Durations are log-normal-ish around `mean_duration`.
[[nodiscard]] std::vector<GpuJob> deadline_rush_workload(
    std::size_t n_jobs, double rush_window, double mean_duration,
    std::size_t max_gpus_per_job, core::Rng &rng);

}  // namespace treu::sched
