#pragma once

// Schedule autotuners.
//
// `genetic_autotune` is the Ansor stand-in: a (mu + lambda)-style genetic
// algorithm over the schedule space with elitism, knob mutation, and uniform
// crossover. `random_search` is the budget-matched baseline the ablation
// bench compares against. Both are fully deterministic given the seed, and
// both *verify* every candidate's output against the naive reference —
// candidates that miscompute are discarded with infinite cost rather than
// silently winning on speed.

#include <cstddef>
#include <functional>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "treu/parallel/thread_pool.hpp"
#include "treu/sched/problem.hpp"
#include "treu/sched/schedule.hpp"

namespace treu::sched {

struct TuneConfig {
  std::size_t population = 16;
  std::size_t generations = 8;
  std::size_t elites = 2;
  double mutation_rate = 0.5;   // probability a child is mutated after crossover
  std::size_t repeats = 3;      // timing repeats per candidate
  std::uint64_t seed = 0;
  ScheduleSpace space;
  /// Optional cost oracle replacing wall-clock measurement. Candidates are
  /// still the same deterministic sequence; only how they are scored
  /// changes. A pure evaluator makes the whole tune run replayable
  /// byte-for-byte (same seed + same detected ISA => identical winner),
  /// which timing noise cannot promise — that is what the determinism
  /// tests pin down.
  std::function<Measurement(const Problem &, const Schedule &,
                            parallel::ThreadPool &, std::size_t)>
      evaluator;
};

/// One evaluated candidate.
struct Evaluated {
  Schedule schedule;
  Measurement measurement;
  [[nodiscard]] double cost() const noexcept {
    return measurement.output_matches_reference
               ? measurement.seconds
               : std::numeric_limits<double>::infinity();
  }
};

struct TuneResult {
  Evaluated best;
  std::vector<double> best_cost_per_generation;  // for convergence plots
  std::size_t evaluations = 0;
  std::size_t rejected_incorrect = 0;            // candidates that miscomputed
};

/// Genetic-algorithm tuner (Ansor stand-in).
[[nodiscard]] TuneResult genetic_autotune(const Problem &problem,
                                          const TuneConfig &config,
                                          parallel::ThreadPool &pool);

/// Pure random search with the same evaluation budget
/// (population * generations candidates).
[[nodiscard]] TuneResult random_search(const Problem &problem,
                                       const TuneConfig &config,
                                       parallel::ThreadPool &pool);

/// Replay: measure a specific schedule (e.g. one exported from the GA run
/// into "another compiler" — our loop-interchange-only path) on a problem.
/// This is the §2.5 cross-framework experiment in miniature.
[[nodiscard]] Evaluated replay(const Problem &problem, const Schedule &schedule,
                               parallel::ThreadPool &pool,
                               std::size_t repeats = 3);

}  // namespace treu::sched
