#pragma once

// A miniature scheduling language over the five §2.5 kernels.
//
// In TVM or MLIR's transform dialect, a *schedule* is data that describes
// how to rewrite a kernel's loop nest without changing its semantics. We
// model the same idea: `Schedule` carries the transformation knobs (loop
// order, tiling, unrolling, parallelization, vector ISA, register-tile
// shape), `validate` is the legality check, and applying a schedule means
// one `tensor::Kernel::run` dispatch with those knobs. The semantic
// contract — any valid schedule computes the same function as the naive
// kernel — is enforced by property tests across the whole space.
//
// The isa/rtile knobs select among *compiled backends* rather than loop
// rewrites: `.isa(avx2)` requests the AVX2+FMA microkernels and
// `.rtile(4x8)` sets their register-tile shape. A schedule that names an
// ISA the running host cannot execute still runs — dispatch falls back to
// Scalar and records the `sched.isa_fallback` metric — so schedules tuned
// on one machine remain portable data.

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "treu/core/rng.hpp"
#include "treu/tensor/kernels.hpp"

namespace treu::sched {

/// The schedulable kernels are exactly the dispatchable ops: one enum,
/// owned by tensor so sched and the dispatcher cannot disagree.
using KernelKind = tensor::KernelOp;

/// Problem shape. Interpretation by kernel:
///  MatVec: (m x n) * n          Conv1D: input n, taps k
///  Conv2D: (m x n) image, (k x k) kernel
///  MatMul / MatMulTransposed: (m x k) * (k x n)
struct ProblemSize {
  std::size_t m = 0;
  std::size_t n = 0;
  std::size_t k = 0;
};

/// Register-tile shape candidate: m rows by n columns of accumulators.
/// {0, 0} means "no register tiling" (the legacy scalar loop nest).
struct RTile {
  std::size_t m = 0;
  std::size_t n = 0;
  friend bool operator==(const RTile &, const RTile &) = default;
};

/// One point in the schedule space.
struct Schedule {
  KernelKind kernel = KernelKind::MatMul;
  tensor::KernelParams params;

  /// TVM-style textual form, e.g.
  /// "matmul: order(ikj).tile(i=64,j=64,k=32).unroll(4).isa(avx2).rtile(4x8).parallel".
  /// isa/rtile render only when set off their defaults, so pre-SIMD
  /// schedule strings are still the canonical form of what they named.
  [[nodiscard]] std::string to_string() const;

  /// Parse the textual form back into a schedule — "schedules as code",
  /// the property the students used to port Ansor schedules into MLIR's
  /// transform dialect. Round-trips with to_string(). Returns nullopt on
  /// malformed input.
  [[nodiscard]] static std::optional<Schedule> parse(std::string_view text);

  /// Legality: unroll in {1,2,4,8}; register-tile rows at most 8;
  /// order/tile_k only meaningful for matmul-family kernels.
  [[nodiscard]] bool valid() const noexcept;

  friend bool operator==(const Schedule &, const Schedule &) = default;
};

/// The discrete candidate sets the tuners search over (what Ansor calls the
/// sketch + annotation space).
struct ScheduleSpace {
  std::vector<std::size_t> tile_candidates = {0, 8, 16, 32, 64, 128, 256};
  std::vector<std::size_t> unroll_candidates = {1, 2, 4, 8};
  std::vector<tensor::LoopOrder> order_candidates = {
      tensor::LoopOrder::IJK, tensor::LoopOrder::IKJ, tensor::LoopOrder::JIK,
      tensor::LoopOrder::JKI, tensor::LoopOrder::KIJ, tensor::LoopOrder::KJI};
  /// Backends to search over; requests for an ISA the host lacks are
  /// normalized to Scalar at evaluation time, never selected as winners.
  std::vector<tensor::Isa> isa_candidates = {tensor::Isa::Scalar,
                                             tensor::Isa::Avx2};
  /// Register-tile shapes (matmul only; {0,0} keeps the legacy nest).
  std::vector<RTile> rtile_candidates = {
      {0, 0}, {2, 8}, {4, 8}, {6, 8}, {4, 16}, {6, 16}};
  bool allow_parallel = true;

  /// Number of distinct schedules for `kind` (used in coverage reporting).
  [[nodiscard]] std::size_t cardinality(KernelKind kind) const noexcept;

  /// Uniform random schedule for `kind`.
  [[nodiscard]] Schedule random_schedule(KernelKind kind, core::Rng &rng) const;

  /// Mutate one knob of `s` (resampling it from the candidate set).
  [[nodiscard]] Schedule mutate(const Schedule &s, core::Rng &rng) const;

  /// Uniform knob-wise crossover.
  [[nodiscard]] Schedule crossover(const Schedule &a, const Schedule &b,
                                   core::Rng &rng) const;

  /// Default naive-equivalent schedule (no tiling, no unroll, serial,
  /// scalar ISA, no register tile).
  [[nodiscard]] static Schedule baseline(KernelKind kind) noexcept;
};

}  // namespace treu::sched
