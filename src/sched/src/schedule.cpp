#include "treu/sched/schedule.hpp"

#include <algorithm>
#include <sstream>

namespace treu::sched {
namespace {

bool is_matmul_family(KernelKind kind) noexcept {
  return kind == KernelKind::MatMul || kind == KernelKind::MatMulTransposed;
}

// Grammar spelling of each kernel. Kept distinct from tensor::to_string so
// existing schedule strings ("matmul_t: ...") stay parseable and canonical.
const char *kernel_name(KernelKind kind) noexcept {
  switch (kind) {
    case KernelKind::MatVec: return "matvec";
    case KernelKind::Conv1D: return "conv1d";
    case KernelKind::Conv2D: return "conv2d";
    case KernelKind::MatMul: return "matmul";
    case KernelKind::MatMulTransposed: return "matmul_t";
  }
  return "?";
}

}  // namespace

std::string Schedule::to_string() const {
  std::ostringstream os;
  os << kernel_name(kernel) << ": ";
  if (is_matmul_family(kernel)) {
    os << "order(" << tensor::to_string(params.order) << ").";
  }
  os << "tile(i=" << params.tile_i << ",j=" << params.tile_j;
  if (is_matmul_family(kernel)) os << ",k=" << params.tile_k;
  os << ").unroll(" << params.unroll << ")";
  if (params.isa != tensor::Isa::Scalar) {
    os << ".isa(" << tensor::to_string(params.isa) << ")";
  }
  if (params.rtile_m != 0 || params.rtile_n != 0) {
    os << ".rtile(" << params.rtile_m << "x" << params.rtile_n << ")";
  }
  if (params.parallel) os << ".parallel";
  return os.str();
}

bool Schedule::valid() const noexcept {
  const std::size_t u = params.unroll;
  if (u != 1 && u != 2 && u != 4 && u != 8) return false;
  if (params.rtile_m > 8) return false;
  return true;
}

std::optional<Schedule> Schedule::parse(std::string_view text) {
  // Grammar: "<kernel>: [order(<o>).]tile(i=N,j=N[,k=N]).unroll(N)
  //           [.isa(<isa>)][.rtile(MxN)][.parallel]"
  const auto colon = text.find(':');
  if (colon == std::string_view::npos) return std::nullopt;
  const std::string_view kernel_str = text.substr(0, colon);

  Schedule s;
  if (kernel_str == "matvec") {
    s.kernel = KernelKind::MatVec;
  } else if (kernel_str == "conv1d") {
    s.kernel = KernelKind::Conv1D;
  } else if (kernel_str == "conv2d") {
    s.kernel = KernelKind::Conv2D;
  } else if (kernel_str == "matmul") {
    s.kernel = KernelKind::MatMul;
  } else if (kernel_str == "matmul_t" || kernel_str == "matmul_transposed") {
    s.kernel = KernelKind::MatMulTransposed;
  } else {
    return std::nullopt;
  }

  std::string_view rest = text.substr(colon + 1);
  const auto skip_spaces = [&] {
    while (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);
  };
  const auto consume = [&](std::string_view token) {
    if (rest.substr(0, token.size()) != token) return false;
    rest.remove_prefix(token.size());
    return true;
  };
  const auto parse_number = [&]() -> std::optional<std::size_t> {
    std::size_t value = 0;
    bool any = false;
    while (!rest.empty() && rest.front() >= '0' && rest.front() <= '9') {
      value = value * 10 + static_cast<std::size_t>(rest.front() - '0');
      rest.remove_prefix(1);
      any = true;
    }
    if (!any) return std::nullopt;
    return value;
  };
  skip_spaces();

  if (consume("order(")) {
    bool found = false;
    for (const auto order :
         {tensor::LoopOrder::IJK, tensor::LoopOrder::IKJ,
          tensor::LoopOrder::JIK, tensor::LoopOrder::JKI,
          tensor::LoopOrder::KIJ, tensor::LoopOrder::KJI}) {
      if (consume(tensor::to_string(order))) {
        s.params.order = order;
        found = true;
        break;
      }
    }
    if (!found || !consume(").")) return std::nullopt;
  }

  if (!consume("tile(i=")) return std::nullopt;
  const auto ti = parse_number();
  if (!ti || !consume(",j=")) return std::nullopt;
  const auto tj = parse_number();
  if (!tj) return std::nullopt;
  s.params.tile_i = *ti;
  s.params.tile_j = *tj;
  if (consume(",k=")) {
    const auto tk = parse_number();
    if (!tk) return std::nullopt;
    s.params.tile_k = *tk;
  }
  if (!consume(").unroll(")) return std::nullopt;
  const auto unroll = parse_number();
  if (!unroll || !consume(")")) return std::nullopt;
  s.params.unroll = *unroll;
  if (consume(".isa(")) {
    const auto paren = rest.find(')');
    if (paren == std::string_view::npos) return std::nullopt;
    const auto isa = tensor::parse_isa(rest.substr(0, paren));
    if (!isa) return std::nullopt;
    s.params.isa = *isa;
    rest.remove_prefix(paren + 1);
  }
  if (consume(".rtile(")) {
    const auto rm = parse_number();
    if (!rm || !consume("x")) return std::nullopt;
    const auto rn = parse_number();
    if (!rn || !consume(")")) return std::nullopt;
    s.params.rtile_m = *rm;
    s.params.rtile_n = *rn;
  }
  if (consume(".parallel")) s.params.parallel = true;
  if (!rest.empty()) return std::nullopt;
  if (!s.valid()) return std::nullopt;
  return s;
}

std::size_t ScheduleSpace::cardinality(KernelKind kind) const noexcept {
  const std::size_t t = tile_candidates.size();
  const std::size_t u = unroll_candidates.size();
  const std::size_t p = allow_parallel ? 2 : 1;
  const std::size_t v = isa_candidates.size();
  switch (kind) {
    case KernelKind::MatVec:
    case KernelKind::Conv1D:
      return t * u * p * v;  // tile_i, unroll, parallel, isa
    case KernelKind::Conv2D:
      return t * t * u * p * v;  // tile_i, tile_j
    case KernelKind::MatMul:
      return order_candidates.size() * t * t * t * u * p * v *
             rtile_candidates.size();
    case KernelKind::MatMulTransposed:
      return t * t * u * p * v;  // tile_i, tile_j
  }
  return 0;
}

Schedule ScheduleSpace::random_schedule(KernelKind kind, core::Rng &rng) const {
  const auto pick_tile = [&] {
    return tile_candidates[rng.uniform_index(tile_candidates.size())];
  };
  Schedule s;
  s.kernel = kind;
  s.params.unroll = unroll_candidates[rng.uniform_index(unroll_candidates.size())];
  s.params.parallel = allow_parallel ? rng.bernoulli(0.5) : false;
  s.params.tile_i = pick_tile();
  if (!isa_candidates.empty()) {
    s.params.isa = isa_candidates[rng.uniform_index(isa_candidates.size())];
  }
  switch (kind) {
    case KernelKind::MatVec:
    case KernelKind::Conv1D:
      break;
    case KernelKind::Conv2D:
    case KernelKind::MatMulTransposed:
      s.params.tile_j = pick_tile();
      break;
    case KernelKind::MatMul:
      s.params.tile_j = pick_tile();
      s.params.tile_k = pick_tile();
      s.params.order =
          order_candidates[rng.uniform_index(order_candidates.size())];
      if (!rtile_candidates.empty()) {
        const RTile rt =
            rtile_candidates[rng.uniform_index(rtile_candidates.size())];
        s.params.rtile_m = rt.m;
        s.params.rtile_n = rt.n;
      }
      break;
  }
  return s;
}

Schedule ScheduleSpace::mutate(const Schedule &s, core::Rng &rng) const {
  Schedule out = s;
  const auto pick_tile = [&] {
    return tile_candidates[rng.uniform_index(tile_candidates.size())];
  };
  // Knob indices: 0 tile_i, 1 tile_j, 2 tile_k, 3 unroll, 4 parallel,
  // 5 order, 6 isa, 7 rtile — restricted to knobs meaningful for the kernel.
  std::vector<int> knobs = {0, 3};
  if (allow_parallel) knobs.push_back(4);
  if (!isa_candidates.empty()) knobs.push_back(6);
  if (s.kernel == KernelKind::Conv2D ||
      s.kernel == KernelKind::MatMulTransposed) {
    knobs.push_back(1);
  }
  if (s.kernel == KernelKind::MatMul) {
    knobs.push_back(1);
    knobs.push_back(2);
    knobs.push_back(5);
    if (!rtile_candidates.empty()) knobs.push_back(7);
  }
  switch (knobs[rng.uniform_index(knobs.size())]) {
    case 0: out.params.tile_i = pick_tile(); break;
    case 1: out.params.tile_j = pick_tile(); break;
    case 2: out.params.tile_k = pick_tile(); break;
    case 3:
      out.params.unroll =
          unroll_candidates[rng.uniform_index(unroll_candidates.size())];
      break;
    case 4: out.params.parallel = !out.params.parallel; break;
    case 5:
      out.params.order =
          order_candidates[rng.uniform_index(order_candidates.size())];
      break;
    case 6:
      out.params.isa = isa_candidates[rng.uniform_index(isa_candidates.size())];
      break;
    case 7: {
      const RTile rt =
          rtile_candidates[rng.uniform_index(rtile_candidates.size())];
      out.params.rtile_m = rt.m;
      out.params.rtile_n = rt.n;
      break;
    }
    default: break;
  }
  return out;
}

Schedule ScheduleSpace::crossover(const Schedule &a, const Schedule &b,
                                  core::Rng &rng) const {
  Schedule out = a;
  if (rng.bernoulli(0.5)) out.params.tile_i = b.params.tile_i;
  if (rng.bernoulli(0.5)) out.params.tile_j = b.params.tile_j;
  if (rng.bernoulli(0.5)) out.params.tile_k = b.params.tile_k;
  if (rng.bernoulli(0.5)) out.params.unroll = b.params.unroll;
  if (rng.bernoulli(0.5)) out.params.parallel = b.params.parallel;
  if (rng.bernoulli(0.5)) out.params.order = b.params.order;
  if (rng.bernoulli(0.5)) out.params.isa = b.params.isa;
  if (rng.bernoulli(0.5)) {
    // Register-tile shape crosses as one knob: m and n travel together.
    out.params.rtile_m = b.params.rtile_m;
    out.params.rtile_n = b.params.rtile_n;
  }
  return out;
}

Schedule ScheduleSpace::baseline(KernelKind kind) noexcept {
  Schedule s;
  s.kernel = kind;
  s.params.order = tensor::LoopOrder::IJK;
  s.params.tile_i = 0;
  s.params.tile_j = 0;
  s.params.tile_k = 0;
  s.params.unroll = 1;
  s.params.parallel = false;
  s.params.isa = tensor::Isa::Scalar;
  s.params.rtile_m = 0;
  s.params.rtile_n = 0;
  return s;
}

}  // namespace treu::sched
