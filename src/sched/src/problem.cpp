#include "treu/sched/problem.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "treu/core/timer.hpp"

namespace treu::sched {

Problem::Problem(KernelKind kind, ProblemSize size, core::Rng &rng)
    : kind_(kind), size_(size) {
  switch (kind_) {
    case KernelKind::MatVec:
      a_ = tensor::Matrix::random_uniform(size_.m, size_.n, rng, -1.0, 1.0);
      x_.resize(size_.n);
      for (auto &v : x_) v = rng.uniform(-1.0, 1.0);
      break;
    case KernelKind::Conv1D:
      x_.resize(size_.n);
      for (auto &v : x_) v = rng.uniform(-1.0, 1.0);
      w_.resize(size_.k);
      for (auto &v : w_) v = rng.uniform(-1.0, 1.0);
      break;
    case KernelKind::Conv2D:
      a_ = tensor::Matrix::random_uniform(size_.m, size_.n, rng, -1.0, 1.0);
      b_ = tensor::Matrix::random_uniform(size_.k, size_.k, rng, -1.0, 1.0);
      break;
    case KernelKind::MatMul:
      a_ = tensor::Matrix::random_uniform(size_.m, size_.k, rng, -1.0, 1.0);
      b_ = tensor::Matrix::random_uniform(size_.k, size_.n, rng, -1.0, 1.0);
      break;
    case KernelKind::MatMulTransposed:
      a_ = tensor::Matrix::random_uniform(size_.m, size_.k, rng, -1.0, 1.0);
      b_ = tensor::Matrix::random_uniform(size_.n, size_.k, rng, -1.0, 1.0);
      break;
  }
}

double Problem::flops() const noexcept {
  switch (kind_) {
    case KernelKind::MatVec: return tensor::matvec_flops(size_.m, size_.n);
    case KernelKind::Conv1D: return tensor::conv1d_flops(size_.n, size_.k);
    case KernelKind::Conv2D:
      return tensor::conv2d_flops(size_.m, size_.n, size_.k, size_.k);
    case KernelKind::MatMul:
    case KernelKind::MatMulTransposed:
      return tensor::matmul_flops(size_.m, size_.n, size_.k);
  }
  return 0.0;
}

double Problem::bytes() const noexcept {
  switch (kind_) {
    case KernelKind::MatVec: return tensor::matvec_bytes(size_.m, size_.n);
    case KernelKind::Conv1D: return tensor::conv1d_bytes(size_.n, size_.k);
    case KernelKind::Conv2D:
      return tensor::conv2d_bytes(size_.m, size_.n, size_.k, size_.k);
    case KernelKind::MatMul:
    case KernelKind::MatMulTransposed:
      return tensor::matmul_bytes(size_.m, size_.n, size_.k);
  }
  return 0.0;
}

double Problem::intensity() const noexcept {
  const double b = bytes();
  return b > 0.0 ? flops() / b : 0.0;
}

std::vector<double> Problem::execute(const Schedule &schedule,
                                     parallel::ThreadPool &pool) const {
  if (schedule.kernel != kind_) {
    throw std::invalid_argument("Problem::execute: schedule kernel mismatch");
  }
  // One dispatch for every kernel and every backend; Kernel::run preserves
  // the old routing (pure interchange schedules still run matmul_ordered so
  // `order` differences stay observable, tiled scalar schedules run the
  // legacy nest bit-for-bit, isa/rtile schedules run the microkernels).
  tensor::KernelArgs args;
  switch (kind_) {
    case KernelKind::MatVec:
      args.a = &a_;
      args.x = x_;
      break;
    case KernelKind::Conv1D:
      args.x = x_;
      args.w = w_;
      break;
    case KernelKind::Conv2D:
    case KernelKind::MatMul:
    case KernelKind::MatMulTransposed:
      args.a = &a_;
      args.b = &b_;
      break;
  }
  tensor::KernelResult out =
      tensor::Kernel::run(kind_, args, schedule.params, pool);
  if (kind_ == KernelKind::MatVec || kind_ == KernelKind::Conv1D) {
    return std::move(out.vec);
  }
  return {out.matrix.flat().begin(), out.matrix.flat().end()};
}

const std::vector<double> &Problem::reference() const {
  if (!reference_ready_) {
    switch (kind_) {
      case KernelKind::MatVec: reference_ = tensor::matvec(a_, x_); break;
      case KernelKind::Conv1D: reference_ = tensor::conv1d(x_, w_); break;
      case KernelKind::Conv2D: {
        tensor::Matrix out = tensor::conv2d(a_, b_);
        reference_.assign(out.flat().begin(), out.flat().end());
        break;
      }
      case KernelKind::MatMul: {
        tensor::Matrix out = tensor::matmul(a_, b_);
        reference_.assign(out.flat().begin(), out.flat().end());
        break;
      }
      case KernelKind::MatMulTransposed: {
        tensor::Matrix out = tensor::matmul_transposed(a_, b_);
        reference_.assign(out.flat().begin(), out.flat().end());
        break;
      }
    }
    reference_ready_ = true;
  }
  return reference_;
}

Measurement Problem::measure(const Schedule &schedule,
                             parallel::ThreadPool &pool,
                             std::size_t repeats) const {
  Measurement m;
  m.seconds = std::numeric_limits<double>::infinity();
  std::vector<double> out;
  for (std::size_t r = 0; r < std::max<std::size_t>(repeats, 1); ++r) {
    core::WallTimer timer;
    out = execute(schedule, pool);
    m.seconds = std::min(m.seconds, timer.elapsed_seconds());
  }
  m.gflops = m.seconds > 0.0 ? flops() / m.seconds / 1e9 : 0.0;
  m.output_digest = core::sha256_doubles(out);

  const auto &ref = reference();
  m.output_matches_reference = out.size() == ref.size();
  if (m.output_matches_reference) {
    // Different summation orders legitimately change low bits; accept a
    // tolerance proportional to the reduction length.
    const double tol = 1e-9 * static_cast<double>(std::max<std::size_t>(size_.k ? size_.k : size_.n, 1));
    for (std::size_t i = 0; i < out.size(); ++i) {
      if (std::fabs(out[i] - ref[i]) > tol * std::max(1.0, std::fabs(ref[i]))) {
        m.output_matches_reference = false;
        break;
      }
    }
  }
  return m;
}

ProblemSize default_size(KernelKind kind) noexcept {
  switch (kind) {
    case KernelKind::MatVec: return {512, 512, 0};
    case KernelKind::Conv1D: return {0, 1 << 15, 64};
    case KernelKind::Conv2D: return {192, 192, 7};
    case KernelKind::MatMul: return {192, 192, 192};
    case KernelKind::MatMulTransposed: return {192, 192, 192};
  }
  return {};
}

}  // namespace treu::sched
