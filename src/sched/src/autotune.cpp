#include "treu/sched/autotune.hpp"

#include <algorithm>
#include <limits>

#include "treu/obs/obs.hpp"
#include "treu/tensor/kernels.hpp"

namespace treu::sched {
namespace {

Evaluated evaluate(const Problem &problem, const Schedule &schedule,
                   parallel::ThreadPool &pool, const TuneConfig &config,
                   TuneResult &accounting) {
  // Normalize the requested ISA to what this host actually dispatches, so
  // the tuner's population (and therefore its winner) never names a backend
  // the machine cannot run — the fallback happens here, in the data, not
  // silently at execution time.
  Evaluated e;
  e.schedule = schedule;
  e.schedule.params.isa = tensor::Kernel::effective(schedule.params.isa);
  {
    TREU_OBS_SCOPED_LATENCY_US(eval_timer, "autotune.eval_us");
    e.measurement =
        config.evaluator
            ? config.evaluator(problem, e.schedule, pool, config.repeats)
            : problem.measure(e.schedule, pool, config.repeats);
  }
  TREU_OBS_COUNTER_ADD("autotune.candidates_evaluated", 1);
  ++accounting.evaluations;
  if (!e.measurement.output_matches_reference) {
    TREU_OBS_COUNTER_ADD("autotune.candidates_rejected_incorrect", 1);
    ++accounting.rejected_incorrect;
  }
  return e;
}

void sort_by_cost(std::vector<Evaluated> &pop) {
  std::stable_sort(pop.begin(), pop.end(),
                   [](const Evaluated &a, const Evaluated &b) {
                     return a.cost() < b.cost();
                   });
}

}  // namespace

TuneResult genetic_autotune(const Problem &problem, const TuneConfig &config,
                            parallel::ThreadPool &pool) {
  TREU_OBS_SPAN(tune_span, "autotune.genetic");
  TuneResult result;
  core::Rng rng(config.seed, 0x6174756e65ull);  // "atune"
  const std::size_t pop_size = std::max<std::size_t>(config.population, 2);

  std::vector<Evaluated> population;
  population.reserve(pop_size);
  {
    TREU_OBS_SPAN(seed_span, "autotune.generation.seed");
    // Seed the population with the baseline (never start worse than naive)
    // plus random schedules.
    population.push_back(
        evaluate(problem, ScheduleSpace::baseline(problem.kind()), pool,
                 config, result));
    while (population.size() < pop_size) {
      population.push_back(
          evaluate(problem, config.space.random_schedule(problem.kind(), rng),
                   pool, config, result));
    }
  }
  sort_by_cost(population);
  result.best_cost_per_generation.push_back(population.front().cost());
  TREU_OBS_COUNTER_EVENT("autotune.best_cost", population.front().cost());

  for (std::size_t gen = 1; gen < std::max<std::size_t>(config.generations, 1);
       ++gen) {
    TREU_OBS_SPAN(gen_span, "autotune.generation");
    std::vector<Evaluated> next;
    next.reserve(pop_size);
    const std::size_t elites = std::min(config.elites, population.size());
    for (std::size_t e = 0; e < elites; ++e) next.push_back(population[e]);

    while (next.size() < pop_size) {
      // Tournament selection (size 2) among current population.
      const auto pick = [&]() -> const Evaluated & {
        const std::size_t a = rng.uniform_index(population.size());
        const std::size_t b = rng.uniform_index(population.size());
        return population[a].cost() <= population[b].cost() ? population[a]
                                                            : population[b];
      };
      Schedule child = config.space.crossover(pick().schedule, pick().schedule, rng);
      if (rng.bernoulli(config.mutation_rate)) {
        child = config.space.mutate(child, rng);
      }
      next.push_back(evaluate(problem, child, pool, config, result));
    }
    population = std::move(next);
    sort_by_cost(population);
    result.best_cost_per_generation.push_back(population.front().cost());
    TREU_OBS_COUNTER_EVENT("autotune.best_cost", population.front().cost());
  }

  result.best = population.front();
  return result;
}

TuneResult random_search(const Problem &problem, const TuneConfig &config,
                         parallel::ThreadPool &pool) {
  TREU_OBS_SPAN(tune_span, "autotune.random_search");
  TuneResult result;
  core::Rng rng(config.seed, 0x72616e64ull);  // "rand"
  const std::size_t budget =
      std::max<std::size_t>(config.population, 2) *
      std::max<std::size_t>(config.generations, 1);

  Evaluated best = evaluate(problem, ScheduleSpace::baseline(problem.kind()),
                            pool, config, result);
  result.best_cost_per_generation.push_back(best.cost());
  for (std::size_t i = 1; i < budget; ++i) {
    Evaluated cand =
        evaluate(problem, config.space.random_schedule(problem.kind(), rng),
                 pool, config, result);
    if (cand.cost() < best.cost()) best = cand;
    // Record at generation granularity to align with the GA's curve.
    if (i % std::max<std::size_t>(config.population, 2) == 0) {
      result.best_cost_per_generation.push_back(best.cost());
    }
  }
  result.best = std::move(best);
  return result;
}

Evaluated replay(const Problem &problem, const Schedule &schedule,
                 parallel::ThreadPool &pool, std::size_t repeats) {
  Evaluated e;
  e.schedule = schedule;
  e.measurement = problem.measure(schedule, pool, repeats);
  return e;
}

}  // namespace treu::sched
