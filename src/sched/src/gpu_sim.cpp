#include "treu/sched/gpu_sim.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "treu/core/stats.hpp"

namespace treu::sched {
namespace {

SimResult finalize(std::vector<JobOutcome> outcomes, std::size_t cluster_gpus,
                   const std::vector<GpuJob> &jobs) {
  SimResult r;
  r.outcomes = std::move(outcomes);
  std::vector<double> waits;
  std::vector<double> queueing;
  waits.reserve(r.outcomes.size());
  queueing.reserve(r.outcomes.size());
  double busy_gpu_hours = 0.0;
  for (std::size_t i = 0; i < r.outcomes.size(); ++i) {
    const auto &o = r.outcomes[i];
    r.makespan = std::max(r.makespan, o.finish_time);
    waits.push_back(o.wait);
    queueing.push_back(o.queueing_wait);
    busy_gpu_hours += (o.finish_time - o.start_time) *
                      static_cast<double>(jobs[i].gpus);
  }
  if (!waits.empty()) {
    r.mean_wait = core::mean(waits);
    r.max_wait = core::max_of(waits);
    r.p90_wait = core::quantile(waits, 0.9);
    r.mean_queueing_wait = core::mean(queueing);
    r.max_queueing_wait = core::max_of(queueing);
  }
  if (r.makespan > 0.0 && cluster_gpus > 0) {
    r.utilization =
        busy_gpu_hours / (static_cast<double>(cluster_gpus) * r.makespan);
  }
  return r;
}

}  // namespace

std::string SimResult::summary() const {
  std::ostringstream os;
  os << outcomes.size() << " jobs, makespan " << makespan
     << " h, total wait mean/max " << mean_wait << "/" << max_wait
     << " h, unplanned queueing mean/max " << mean_queueing_wait << "/"
     << max_queueing_wait << " h, utilization " << utilization * 100.0 << "%";
  return os.str();
}

SimResult simulate_fifo(std::vector<GpuJob> jobs, std::size_t cluster_gpus) {
  for (const auto &j : jobs) {
    if (j.gpus == 0 || j.gpus > cluster_gpus) {
      throw std::invalid_argument("simulate_fifo: job gpu request infeasible");
    }
  }
  // Strict FIFO by submit time (ties by id) with no backfill: the head job
  // blocks later jobs until it can start — exactly the "slightly late and
  // stuck" failure mode.
  std::stable_sort(jobs.begin(), jobs.end(), [](const GpuJob &a, const GpuJob &b) {
    return a.submit_time < b.submit_time ||
           (a.submit_time == b.submit_time && a.id < b.id);
  });
  // Running jobs as (finish_time, gpus).
  std::vector<std::pair<double, std::size_t>> running;
  std::size_t free_gpus = cluster_gpus;
  double clock = 0.0;
  std::vector<JobOutcome> outcomes(jobs.size());

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const GpuJob &job = jobs[i];
    clock = std::max(clock, job.submit_time);
    // Release finished jobs, advancing the clock until the job fits.
    const auto release_until = [&](double t) {
      for (auto it = running.begin(); it != running.end();) {
        if (it->first <= t) {
          free_gpus += it->second;
          it = running.erase(it);
        } else {
          ++it;
        }
      }
    };
    release_until(clock);
    while (free_gpus < job.gpus) {
      // Advance to the earliest finish.
      double next = std::numeric_limits<double>::infinity();
      for (const auto &[finish, g] : running) next = std::min(next, finish);
      clock = next;
      release_until(clock);
    }
    JobOutcome &o = outcomes[i];
    o.id = job.id;
    o.start_time = clock;
    o.finish_time = clock + job.duration;
    o.wait = o.start_time - job.submit_time;
    o.queueing_wait = o.wait;  // FIFO has no planned deferral
    free_gpus -= job.gpus;
    running.emplace_back(o.finish_time, job.gpus);
  }
  return finalize(std::move(outcomes), cluster_gpus, jobs);
}

SimResult simulate_staged(std::vector<GpuJob> jobs, std::size_t cluster_gpus,
                          std::size_t batches) {
  batches = std::max<std::size_t>(batches, 1);
  std::stable_sort(jobs.begin(), jobs.end(), [](const GpuJob &a, const GpuJob &b) {
    return a.submit_time < b.submit_time ||
           (a.submit_time == b.submit_time && a.id < b.id);
  });
  std::vector<JobOutcome> all;
  all.reserve(jobs.size());
  std::vector<GpuJob> all_jobs;
  all_jobs.reserve(jobs.size());
  double window_start = 0.0;
  for (std::size_t b = 0; b < batches; ++b) {
    std::vector<GpuJob> batch;
    for (std::size_t i = b; i < jobs.size(); i += batches) batch.push_back(jobs[i]);
    if (batch.empty()) continue;
    // The staging policy defers every job in batch b to the previous
    // batch's makespan: non-overlapping result-collection windows. The
    // deferral is *planned* — only the within-window queueing counts as
    // being "stuck".
    for (auto &j : batch) j.submit_time = std::max(j.submit_time, window_start);
    SimResult r = simulate_fifo(batch, cluster_gpus);
    window_start = r.makespan;
    for (std::size_t i = 0; i < r.outcomes.size(); ++i) {
      all.push_back(r.outcomes[i]);  // queueing_wait already vs window submit
      all_jobs.push_back(batch[i]);
    }
  }
  // Recompute waits against the *original* submit times so staging pays for
  // its own deferral.
  std::vector<GpuJob> sorted = jobs;
  for (auto &o : all) {
    for (const auto &j : sorted) {
      if (j.id == o.id) {
        o.wait = o.start_time - j.submit_time;
        break;
      }
    }
  }
  return finalize(std::move(all), cluster_gpus, all_jobs);
}

std::vector<GpuJob> deadline_rush_workload(std::size_t n_jobs,
                                           double rush_window,
                                           double mean_duration,
                                           std::size_t max_gpus_per_job,
                                           core::Rng &rng) {
  std::vector<GpuJob> jobs(n_jobs);
  for (std::size_t i = 0; i < n_jobs; ++i) {
    jobs[i].id = i;
    // Submissions pile up quadratically toward the deadline.
    const double u = rng.uniform();
    jobs[i].submit_time = rush_window * std::sqrt(u);
    // Log-normal-ish durations: exp(N(log mean - 0.125, 0.5)).
    jobs[i].duration =
        std::exp(rng.normal(std::log(std::max(mean_duration, 1e-3)) - 0.125, 0.5));
    jobs[i].gpus =
        1 + static_cast<std::size_t>(rng.uniform_index(std::max<std::size_t>(max_gpus_per_job, 1)));
  }
  return jobs;
}

}  // namespace treu::sched
