#include "treu/sched/roofline.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "treu/core/timer.hpp"

namespace treu::sched {

double RooflineModel::attainable_gflops(double flops_per_byte) const noexcept {
  return std::min(peak_gflops, flops_per_byte * peak_bandwidth_gbs);
}

double RooflineModel::ridge_intensity() const noexcept {
  return peak_bandwidth_gbs > 0.0 ? peak_gflops / peak_bandwidth_gbs : 0.0;
}

bool RooflineModel::memory_bound(double flops_per_byte) const noexcept {
  return flops_per_byte < ridge_intensity();
}

double RooflineModel::efficiency(double flops_per_byte,
                                 double measured_gflops) const noexcept {
  const double roof = attainable_gflops(flops_per_byte);
  return roof > 0.0 ? measured_gflops / roof : 0.0;
}

std::string RooflineModel::describe() const {
  std::ostringstream os;
  os << "roofline: peak " << peak_gflops << " GFLOP/s, bandwidth "
     << peak_bandwidth_gbs << " GB/s, ridge at " << ridge_intensity()
     << " flops/byte";
  return os.str();
}

double measure_peak_gflops(std::size_t work_flops, std::size_t repeats) {
  // A bank of 64 independent multiply-add chains held in a small array.
  // The array form lets the compiler vectorize across chains (the scalar
  // 8-variable version measures only the scalar FMA rate, which makes
  // SIMD-tuned kernels appear to exceed "peak").
  constexpr std::size_t kChains = 64;
  double best = 0.0;
  const std::size_t iters = work_flops / (2 * kChains);
  alignas(64) double acc[kChains];
  for (std::size_t r = 0; r < std::max<std::size_t>(repeats, 1); ++r) {
    for (std::size_t j = 0; j < kChains; ++j) {
      acc[j] = 1.0 + 0.01 * static_cast<double>(j);
    }
    const double m = 1.0000001;
    const double c = 1e-9;
    core::WallTimer timer;
    for (std::size_t i = 0; i < iters; ++i) {
      for (std::size_t j = 0; j < kChains; ++j) {
        acc[j] = acc[j] * m + c;
      }
    }
    const double secs = timer.elapsed_seconds();
    // Defeat dead-code elimination.
    double sum = 0.0;
    for (std::size_t j = 0; j < kChains; ++j) sum += acc[j];
    volatile double sink = sum;
    (void)sink;
    if (secs > 0.0) {
      best = std::max(best, static_cast<double>(iters) * 2.0 * kChains /
                                secs / 1e9);
    }
  }
  return best;
}

double measure_peak_bandwidth_gbs(std::size_t bytes, std::size_t repeats) {
  const std::size_t n = std::max<std::size_t>(bytes / sizeof(double) / 3, 1024);
  std::vector<double> a(n, 1.0), b(n, 2.0), c(n, 3.0);
  double best = 0.0;
  for (std::size_t r = 0; r < std::max<std::size_t>(repeats, 1); ++r) {
    core::WallTimer timer;
    for (std::size_t i = 0; i < n; ++i) a[i] = b[i] + 0.5 * c[i];  // triad
    const double secs = timer.elapsed_seconds();
    volatile double sink = a[n / 2];
    (void)sink;
    if (secs > 0.0) {
      // Triad traffic: read b, read c, write a => 3 * n doubles.
      best = std::max(best, 3.0 * static_cast<double>(n) * sizeof(double) /
                                secs / 1e9);
    }
  }
  return best;
}

RooflineModel measure_roofline() {
  RooflineModel model;
  model.peak_gflops = measure_peak_gflops();
  model.peak_bandwidth_gbs = measure_peak_bandwidth_gbs();
  return model;
}

}  // namespace treu::sched
