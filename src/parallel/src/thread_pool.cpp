#include "treu/parallel/thread_pool.hpp"

#include <cstdlib>
#include <string>

#include "treu/obs/obs.hpp"

namespace treu::parallel {
namespace {

// Shared state for one blocking bulk operation. Executors (workers and the
// caller) pull chunk indices from `cursor` until exhausted.
struct BulkState {
  std::vector<Range> chunks;
  std::atomic<std::size_t> cursor{0};
  std::atomic<std::size_t> done{0};
  std::mutex mu;
  std::condition_variable cv;
  std::exception_ptr error;  // guarded by mu; first exception wins

  void run(const std::function<void(Range)> &body) {
    for (;;) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= chunks.size()) break;
      TREU_OBS_COUNTER_ADD("threadpool.chunks_executed", 1);
      try {
        body(chunks[i]);
      } catch (...) {
        std::lock_guard lock(mu);
        if (!error) error = std::current_exception();
      }
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == chunks.size()) {
        std::lock_guard lock(mu);
        cv.notify_all();
      }
    }
  }
};

}  // namespace

ThreadPool::ThreadPool(std::size_t workers) {
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto &t : threads_) t.join();
}

std::size_t ThreadPool::default_concurrency() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 1 ? hw - 1 : 0;
}

void ThreadPool::enqueue(std::function<void()> task) {
  TREU_OBS_COUNTER_ADD("threadpool.tasks_submitted", 1);
  if (threads_.empty()) {
    // Degenerate pool: run inline so futures are always satisfied.
    {
      TREU_OBS_SCOPED_LATENCY_US(latency, "threadpool.task_us");
      task();
    }
    TREU_OBS_COUNTER_ADD("threadpool.tasks_executed", 1);
    return;
  }
  {
    std::lock_guard lock(mu_);
    queue_.push_back(std::move(task));
  }
  TREU_OBS_GAUGE_ADD("threadpool.queue_depth", 1);
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    TREU_OBS_GAUGE_ADD("threadpool.queue_depth", -1);
    {
      TREU_OBS_SCOPED_LATENCY_US(latency, "threadpool.task_us");
      task();
    }
    TREU_OBS_COUNTER_ADD("threadpool.tasks_executed", 1);
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)> &body,
                              std::size_t chunk) {
  parallel_for_chunks(
      begin, end,
      [&body](Range r) {
        for (std::size_t i = r.begin; i < r.end; ++i) body(i);
      },
      chunk);
}

void ThreadPool::parallel_for_chunks(std::size_t begin, std::size_t end,
                                     const std::function<void(Range)> &body,
                                     std::size_t chunk) {
  if (begin >= end) return;
  TREU_OBS_COUNTER_ADD("threadpool.parallel_for_calls", 1);
  const std::size_t n = end - begin;
  const std::size_t executors = worker_count() + 1;
  if (chunk == 0) chunk = choose_chunk(n, executors * 4);

  auto state = std::make_shared<BulkState>();
  state->chunks = split_fixed(n, chunk);
  for (auto &r : state->chunks) {  // shift from [0,n) to [begin,end)
    r.begin += begin;
    r.end += begin;
  }

  // Wake at most one helper per chunk beyond what the caller will chew
  // through; extra helpers would find the cursor exhausted and return.
  const std::size_t helpers =
      std::min(worker_count(), state->chunks.size() > 0 ? state->chunks.size() - 1 : 0);
  for (std::size_t h = 0; h < helpers; ++h) {
    // Copy `body`: a late-scheduled helper may run after the caller has
    // already returned (it will find the cursor exhausted, but must not
    // touch a dangling reference).
    enqueue([state, body] { state->run(body); });
  }
  state->run(body);

  {
    std::unique_lock lock(state->mu);
    state->cv.wait(lock, [&] {
      return state->done.load(std::memory_order_acquire) == state->chunks.size();
    });
    if (state->error) std::rethrow_exception(state->error);
  }
}

ThreadPool &ThreadPool::global() {
  static ThreadPool pool = [] {
    std::size_t workers = default_concurrency();
    if (const char *env = std::getenv("TREU_THREADS")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v >= 1) workers = static_cast<std::size_t>(v - 1);
    }
    return ThreadPool(workers);
  }();
  return pool;
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)> &body,
                  std::size_t chunk) {
  ThreadPool::global().parallel_for(begin, end, body, chunk);
}

void parallel_for_chunks(std::size_t begin, std::size_t end,
                         const std::function<void(Range)> &body,
                         std::size_t chunk) {
  ThreadPool::global().parallel_for_chunks(begin, end, body, chunk);
}

}  // namespace treu::parallel
