#include "treu/parallel/reduce.hpp"

#include <stdexcept>

namespace treu::parallel {
namespace {

constexpr std::size_t kDefaultChunk = 4096;
constexpr std::size_t kPairwiseBase = 128;

double pairwise_rec(const double *xs, std::size_t n) noexcept {
  if (n <= kPairwiseBase) {
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i) s += xs[i];
    return s;
  }
  const std::size_t half = n / 2;
  return pairwise_rec(xs, half) + pairwise_rec(xs + half, n - half);
}

// Combine partials pairwise in fixed (chunk) order.
double combine_pairwise(std::vector<double> partials) noexcept {
  std::size_t width = partials.size();
  if (width == 0) return 0.0;
  while (width > 1) {
    const std::size_t half = width / 2;
    for (std::size_t i = 0; i < half; ++i) {
      partials[i] = partials[2 * i] + partials[2 * i + 1];
    }
    if (width % 2 == 1) partials[half] = partials[width - 1];
    width = half + width % 2;
  }
  return partials[0];
}

}  // namespace

double sum_naive(std::span<const double> xs) noexcept {
  double s = 0.0;
  for (double x : xs) s += x;
  return s;
}

double sum_kahan(std::span<const double> xs) noexcept {
  double s = 0.0;
  double c = 0.0;
  for (double x : xs) {
    const double y = x - c;
    const double t = s + y;
    c = (t - s) - y;
    s = t;
  }
  return s;
}

double sum_neumaier(std::span<const double> xs) noexcept {
  double s = 0.0;
  double c = 0.0;
  for (double x : xs) {
    const double t = s + x;
    if (std::fabs(s) >= std::fabs(x)) {
      c += (s - t) + x;
    } else {
      c += (x - t) + s;
    }
    s = t;
  }
  return s + c;
}

double sum_pairwise(std::span<const double> xs) noexcept {
  return pairwise_rec(xs.data(), xs.size());
}

double deterministic_sum(std::span<const double> xs, ThreadPool &pool,
                         std::size_t chunk) {
  if (xs.empty()) return 0.0;
  if (chunk == 0) chunk = kDefaultChunk;
  const std::vector<Range> chunks = split_fixed(xs.size(), chunk);
  std::vector<double> partials(chunks.size(), 0.0);
  pool.parallel_for(
      0, chunks.size(),
      [&](std::size_t c) {
        partials[c] = sum_kahan(xs.subspan(chunks[c].begin, chunks[c].size()));
      },
      1);
  return combine_pairwise(std::move(partials));
}

double deterministic_sum(std::span<const double> xs, std::size_t chunk) {
  return deterministic_sum(xs, ThreadPool::global(), chunk);
}

double deterministic_dot(std::span<const double> xs,
                         std::span<const double> ys, ThreadPool &pool,
                         std::size_t chunk) {
  if (xs.size() != ys.size()) {
    throw std::invalid_argument("deterministic_dot: size mismatch");
  }
  if (xs.empty()) return 0.0;
  if (chunk == 0) chunk = kDefaultChunk;
  const std::vector<Range> chunks = split_fixed(xs.size(), chunk);
  std::vector<double> partials(chunks.size(), 0.0);
  pool.parallel_for(
      0, chunks.size(),
      [&](std::size_t c) {
        // Compensated fused loop per chunk.
        double s = 0.0;
        double comp = 0.0;
        for (std::size_t i = chunks[c].begin; i < chunks[c].end; ++i) {
          const double y = xs[i] * ys[i] - comp;
          const double t = s + y;
          comp = (t - s) - y;
          s = t;
        }
        partials[c] = s;
      },
      1);
  return combine_pairwise(std::move(partials));
}

double deterministic_dot(std::span<const double> xs,
                         std::span<const double> ys, std::size_t chunk) {
  return deterministic_dot(xs, ys, ThreadPool::global(), chunk);
}

SumError evaluate_sum(
    std::span<const double> xs,
    const std::function<double(std::span<const double>)> &method) {
  long double ref = 0.0L;
  long double comp = 0.0L;
  for (double x : xs) {  // Neumaier in extended precision as ground truth
    const long double t = ref + x;
    if (std::fabs(static_cast<double>(ref)) >= std::fabs(x)) {
      comp += (ref - t) + x;
    } else {
      comp += (x - t) + ref;
    }
    ref = t;
  }
  SumError e;
  e.reference = static_cast<double>(ref + comp);
  e.value = method(xs);
  e.abs_error = std::fabs(e.value - e.reference);
  e.rel_error =
      e.reference == 0.0 ? e.abs_error : e.abs_error / std::fabs(e.reference);
  return e;
}

}  // namespace treu::parallel
