#include "treu/parallel/partition.hpp"

namespace treu::parallel {

std::vector<Range> split_even(std::size_t n, std::size_t parts) {
  std::vector<Range> out;
  if (n == 0 || parts == 0) return out;
  parts = std::min(parts, n);
  out.reserve(parts);
  const std::size_t base = n / parts;
  const std::size_t extra = n % parts;
  std::size_t begin = 0;
  for (std::size_t p = 0; p < parts; ++p) {
    const std::size_t len = base + (p < extra ? 1 : 0);
    out.push_back({begin, begin + len});
    begin += len;
  }
  return out;
}

std::vector<Range> split_fixed(std::size_t n, std::size_t chunk) {
  std::vector<Range> out;
  if (n == 0) return out;
  chunk = std::max<std::size_t>(chunk, 1);
  out.reserve((n + chunk - 1) / chunk);
  for (std::size_t begin = 0; begin < n; begin += chunk) {
    out.push_back({begin, std::min(begin + chunk, n)});
  }
  return out;
}

std::vector<Range> split_guided(std::size_t n, std::size_t parts,
                                std::size_t min_chunk) {
  std::vector<Range> out;
  if (n == 0) return out;
  parts = std::max<std::size_t>(parts, 1);
  min_chunk = std::max<std::size_t>(min_chunk, 1);
  std::size_t begin = 0;
  while (begin < n) {
    const std::size_t remaining = n - begin;
    std::size_t len = std::max(remaining / parts, min_chunk);
    len = std::min(len, remaining);
    out.push_back({begin, begin + len});
    begin += len;
  }
  return out;
}

std::size_t choose_chunk(std::size_t n, std::size_t target_chunks,
                         std::size_t min_chunk) {
  if (n == 0) return std::max<std::size_t>(min_chunk, 1);
  target_chunks = std::max<std::size_t>(target_chunks, 1);
  const std::size_t chunk = (n + target_chunks - 1) / target_chunks;
  return std::max(chunk, std::max<std::size_t>(min_chunk, 1));
}

}  // namespace treu::parallel
