#include "treu/parallel/scan.hpp"

#include "treu/parallel/partition.hpp"

namespace treu::parallel {
namespace {

constexpr std::size_t kDefaultChunk = 4096;

std::vector<double> scan_impl(std::span<const double> xs, ThreadPool &pool,
                              std::size_t chunk, bool inclusive) {
  std::vector<double> out(xs.size(), 0.0);
  if (xs.empty()) return out;
  if (chunk == 0) chunk = kDefaultChunk;
  const std::vector<Range> chunks = split_fixed(xs.size(), chunk);

  // Phase 1: local inclusive scans per chunk.
  std::vector<double> totals(chunks.size(), 0.0);
  pool.parallel_for(
      0, chunks.size(),
      [&](std::size_t c) {
        double acc = 0.0;
        for (std::size_t i = chunks[c].begin; i < chunks[c].end; ++i) {
          acc += xs[i];
          out[i] = acc;
        }
        totals[c] = acc;
      },
      1);

  // Phase 2: serial exclusive scan of chunk totals (fixed order =>
  // deterministic bits).
  std::vector<double> offsets(chunks.size(), 0.0);
  double running = 0.0;
  for (std::size_t c = 0; c < chunks.size(); ++c) {
    offsets[c] = running;
    running += totals[c];
  }

  // Phase 3: apply offsets (and shift for the exclusive variant).
  pool.parallel_for(
      0, chunks.size(),
      [&](std::size_t c) {
        const double offset = offsets[c];
        if (inclusive) {
          for (std::size_t i = chunks[c].begin; i < chunks[c].end; ++i) {
            out[i] += offset;
          }
        } else {
          // Exclusive: out[i] = inclusive[i-1]; within a chunk walk
          // backwards so values are consumed before being overwritten.
          for (std::size_t i = chunks[c].end; i-- > chunks[c].begin;) {
            const double inclusive_value = out[i] + offset;
            out[i] = inclusive_value - xs[i];
          }
        }
      },
      1);
  return out;
}

}  // namespace

std::vector<double> inclusive_scan(std::span<const double> xs, ThreadPool &pool,
                                   std::size_t chunk) {
  return scan_impl(xs, pool, chunk, true);
}

std::vector<double> inclusive_scan(std::span<const double> xs,
                                   std::size_t chunk) {
  return inclusive_scan(xs, ThreadPool::global(), chunk);
}

std::vector<double> exclusive_scan(std::span<const double> xs, ThreadPool &pool,
                                   std::size_t chunk) {
  return scan_impl(xs, pool, chunk, false);
}

std::vector<double> exclusive_scan(std::span<const double> xs,
                                   std::size_t chunk) {
  return exclusive_scan(xs, ThreadPool::global(), chunk);
}

std::vector<double> parallel_transform(std::span<const double> xs,
                                       const std::function<double(double)> &f,
                                       ThreadPool &pool, std::size_t chunk) {
  std::vector<double> out(xs.size(), 0.0);
  if (chunk == 0) chunk = kDefaultChunk;
  pool.parallel_for_chunks(
      0, xs.size(),
      [&](Range r) {
        for (std::size_t i = r.begin; i < r.end; ++i) out[i] = f(xs[i]);
      },
      chunk);
  return out;
}

}  // namespace treu::parallel
