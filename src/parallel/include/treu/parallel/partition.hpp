#pragma once

// Range-partitioning strategies for loop parallelism.
//
// A partition is a deterministic function of (range size, chunking policy)
// only — never of the number of worker threads. Keeping the decomposition
// independent of the executor is what makes deterministic reductions
// (treu/parallel/reduce.hpp) possible: the same chunks combine in the same
// order no matter how many threads carried them out.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace treu::parallel {

/// Half-open index range [begin, end).
struct Range {
  std::size_t begin = 0;
  std::size_t end = 0;

  [[nodiscard]] std::size_t size() const noexcept { return end - begin; }
  [[nodiscard]] bool empty() const noexcept { return begin >= end; }
  friend bool operator==(const Range &, const Range &) = default;
};

/// Split [0, n) into `parts` nearly equal contiguous ranges.
/// The first `n % parts` ranges are one element longer, matching the classic
/// block decomposition used by MPI codes. Returns fewer than `parts` ranges
/// when n < parts (never returns empty ranges).
[[nodiscard]] std::vector<Range> split_even(std::size_t n, std::size_t parts);

/// Split [0, n) into fixed-size chunks of `chunk` (last chunk may be short).
[[nodiscard]] std::vector<Range> split_fixed(std::size_t n, std::size_t chunk);

/// Guided decomposition: chunk sizes decay geometrically from n/parts down
/// to `min_chunk`, which gives better load balance for loops whose per-
/// iteration cost is skewed. Deterministic; used by the autotuner's
/// measurement loops.
[[nodiscard]] std::vector<Range> split_guided(std::size_t n, std::size_t parts,
                                              std::size_t min_chunk = 1);

/// Pick a chunk size that yields roughly `target_chunks` chunks over n
/// elements but never less than `min_chunk` elements each.
[[nodiscard]] std::size_t choose_chunk(std::size_t n, std::size_t target_chunks,
                                       std::size_t min_chunk = 1);

}  // namespace treu::parallel
