#pragma once

// Reproducible floating-point reductions.
//
// Floating-point addition is not associative, so a reduction whose
// combination order depends on thread count (or on scheduling luck) returns
// different bits run to run. That breaks the core promise of this toolkit —
// byte-identical re-runs — so the reductions here fix the combination tree
// *a priori*:
//
//   1. the input is cut into fixed-size chunks (a function of n and the
//      chunk parameter only, never of thread count: see partition.hpp);
//   2. each chunk is folded left-to-right (optionally compensated);
//   3. the per-chunk partials are combined by pairwise (balanced-tree)
//      summation in chunk order.
//
// Any number of threads may execute step 2; steps 1 and 3 are deterministic,
// so the final bits are identical for 1 thread or 64. The same scheme powers
// deterministic dot products used by treu::tensor.

#include <cmath>
#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "treu/parallel/thread_pool.hpp"

namespace treu::parallel {

/// Plain left-to-right sum; the baseline the ablation bench compares against.
[[nodiscard]] double sum_naive(std::span<const double> xs) noexcept;

/// Kahan (compensated) summation: O(1) error growth in n.
[[nodiscard]] double sum_kahan(std::span<const double> xs) noexcept;

/// Pairwise (cascade) summation: O(log n) error growth, branch-light.
[[nodiscard]] double sum_pairwise(std::span<const double> xs) noexcept;

/// Neumaier's improvement to Kahan: also safe when |x_i| exceeds the
/// running sum.
[[nodiscard]] double sum_neumaier(std::span<const double> xs) noexcept;

/// Deterministic parallel sum: identical bits for any worker count.
/// `chunk == 0` selects a default chunk that balances determinism bookkeeping
/// against parallel grain (4096 elements).
[[nodiscard]] double deterministic_sum(std::span<const double> xs,
                                       ThreadPool &pool, std::size_t chunk = 0);

/// Deterministic parallel sum on the global pool.
[[nodiscard]] double deterministic_sum(std::span<const double> xs,
                                       std::size_t chunk = 0);

/// Deterministic parallel dot product (same chunking contract as
/// deterministic_sum). Requires xs.size() == ys.size().
[[nodiscard]] double deterministic_dot(std::span<const double> xs,
                                       std::span<const double> ys,
                                       ThreadPool &pool, std::size_t chunk = 0);
[[nodiscard]] double deterministic_dot(std::span<const double> xs,
                                       std::span<const double> ys,
                                       std::size_t chunk = 0);

/// Generic deterministic map-reduce over [0, n).
///
/// `map(range)` folds one chunk and returns its partial value; `combine`
/// merges two partials. Chunks are fixed by (n, chunk); partials combine
/// pairwise in chunk order, so the result is independent of thread count
/// whenever `combine` is deterministic (it need not be associative-exact —
/// the tree shape is fixed).
template <typename T>
[[nodiscard]] T deterministic_map_reduce(
    std::size_t n, T identity, const std::function<T(Range)> &map,
    const std::function<T(const T &, const T &)> &combine, ThreadPool &pool,
    std::size_t chunk = 0) {
  if (n == 0) return identity;
  if (chunk == 0) chunk = 4096;
  const std::vector<Range> chunks = split_fixed(n, chunk);
  std::vector<T> partials(chunks.size(), identity);
  pool.parallel_for(
      0, chunks.size(),
      [&](std::size_t c) { partials[c] = map(chunks[c]); }, 1);
  // Balanced pairwise combine, fixed order.
  std::size_t width = partials.size();
  while (width > 1) {
    const std::size_t half = width / 2;
    for (std::size_t i = 0; i < half; ++i) {
      partials[i] = combine(partials[2 * i], partials[2 * i + 1]);
    }
    if (width % 2 == 1) partials[half] = partials[width - 1];
    width = half + width % 2;
  }
  return partials.empty() ? identity : partials[0];
}

/// Error statistics of a summation method against a high-precision
/// reference (long double Neumaier); used by the reduction ablation bench.
struct SumError {
  double value = 0.0;
  double reference = 0.0;
  double abs_error = 0.0;
  double rel_error = 0.0;
};

[[nodiscard]] SumError evaluate_sum(std::span<const double> xs,
                                    const std::function<double(std::span<const double>)> &method);

}  // namespace treu::parallel
