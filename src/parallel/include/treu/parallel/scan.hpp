#pragma once

// Deterministic parallel prefix sums (scans).
//
// Same contract as the reductions in reduce.hpp: the chunk decomposition is
// a function of (n, chunk) only, chunk offsets combine in fixed order, so
// the output bits never depend on the worker count. The classic
// three-phase algorithm: per-chunk local scan, exclusive scan of chunk
// totals (serial — the chunk count is small), then a parallel offset fixup.

#include <cstddef>
#include <span>
#include <vector>

#include "treu/parallel/thread_pool.hpp"

namespace treu::parallel {

/// Inclusive prefix sum: out[i] = xs[0] + ... + xs[i]. Deterministic for
/// any worker count. `chunk == 0` selects a default of 4096.
[[nodiscard]] std::vector<double> inclusive_scan(std::span<const double> xs,
                                                 ThreadPool &pool,
                                                 std::size_t chunk = 0);
[[nodiscard]] std::vector<double> inclusive_scan(std::span<const double> xs,
                                                 std::size_t chunk = 0);

/// Exclusive prefix sum: out[i] = xs[0] + ... + xs[i-1], out[0] = 0.
[[nodiscard]] std::vector<double> exclusive_scan(std::span<const double> xs,
                                                 ThreadPool &pool,
                                                 std::size_t chunk = 0);
[[nodiscard]] std::vector<double> exclusive_scan(std::span<const double> xs,
                                                 std::size_t chunk = 0);

/// Parallel elementwise transform: out[i] = f(xs[i]). Deterministic
/// trivially; provided for symmetry and used by the experiment drivers.
[[nodiscard]] std::vector<double> parallel_transform(
    std::span<const double> xs, const std::function<double(double)> &f,
    ThreadPool &pool, std::size_t chunk = 0);

}  // namespace treu::parallel
