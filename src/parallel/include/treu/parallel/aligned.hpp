#pragma once

// Cache-line utilities shared by the parallel runtime.
//
// False sharing between per-thread accumulators is the classic silent
// performance bug in reduction code; `CacheAligned<T>` pads each slot to a
// full destructive-interference span so neighbouring slots never share a
// line.

#include <cstddef>
#include <new>
#include <utility>

namespace treu::parallel {

#ifdef __cpp_lib_hardware_interference_size
inline constexpr std::size_t kCacheLine = std::hardware_destructive_interference_size;
#else
inline constexpr std::size_t kCacheLine = 64;
#endif

/// Value wrapper padded to a cache line. Use for per-thread slots in shared
/// arrays (partial sums, counters) to avoid false sharing.
template <typename T>
struct alignas(kCacheLine) CacheAligned {
  T value{};

  CacheAligned() = default;
  explicit CacheAligned(T v) : value(std::move(v)) {}

  T &operator*() noexcept { return value; }
  const T &operator*() const noexcept { return value; }
  T *operator->() noexcept { return &value; }
  const T *operator->() const noexcept { return &value; }
};

}  // namespace treu::parallel
