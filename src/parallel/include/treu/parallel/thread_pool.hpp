#pragma once

// Fixed-size worker pool with a shared FIFO task queue.
//
// Design notes
//  - Tasks are type-erased `std::function<void()>`; callers who need results
//    use `submit`, which packages the callable in a `std::packaged_task` and
//    returns the future.
//  - `parallel_for` is a *blocking* bulk operation: the calling thread also
//    participates in the loop (it executes chunks taken from the same atomic
//    cursor), so a pool of size 0 degrades gracefully to serial execution —
//    important on single-core CI hosts.
//  - Worker count is fixed at construction. The pool joins its workers in
//    the destructor (RAII; no detached threads).
//
// Exception policy: an exception thrown by a `parallel_for` body is captured
// and rethrown on the calling thread after all chunks finish or are drained
// (first exception wins). Exceptions from `submit` travel via the future.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "treu/parallel/partition.hpp"

namespace treu::parallel {

class ThreadPool {
 public:
  /// Create a pool with `workers` background threads. `workers == 0` is a
  /// valid degenerate pool: all bulk work runs on the calling thread.
  explicit ThreadPool(std::size_t workers);
  ThreadPool() : ThreadPool(default_concurrency()) {}
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  [[nodiscard]] std::size_t worker_count() const noexcept { return threads_.size(); }

  /// Hardware concurrency minus one (the caller participates in bulk ops),
  /// clamped to at least 0.
  [[nodiscard]] static std::size_t default_concurrency();

  /// Enqueue a single task and get its result via future.
  template <typename F, typename... Args>
  auto submit(F &&f, Args &&...args)
      -> std::future<std::invoke_result_t<F, Args...>> {
    using R = std::invoke_result_t<F, Args...>;
    auto task = std::make_shared<std::packaged_task<R()>>(
        [fn = std::forward<F>(f),
         ... as = std::forward<Args>(args)]() mutable -> R {
          return std::invoke(std::move(fn), std::move(as)...);
        });
    std::future<R> fut = task->get_future();
    enqueue([task]() { (*task)(); });
    return fut;
  }

  /// Run `body(i)` for every i in [begin, end). Blocking. The chunk
  /// decomposition is `split_fixed(n, chunk)`; chunk defaults to an even
  /// split across (workers + 1) executors.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)> &body,
                    std::size_t chunk = 0);

  /// Run `body(range)` for every chunk of [begin, end). Blocking. Chunked
  /// variant for bodies that want to amortise per-chunk setup.
  void parallel_for_chunks(std::size_t begin, std::size_t end,
                           const std::function<void(Range)> &body,
                           std::size_t chunk = 0);

  /// Process-wide shared pool (lazily constructed, sized by
  /// default_concurrency, overridable once via TREU_THREADS env var).
  static ThreadPool &global();

 private:
  void enqueue(std::function<void()> task);
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  bool stop_ = false;
};

/// Convenience: parallel_for on the global pool.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)> &body,
                  std::size_t chunk = 0);

/// Convenience: chunked parallel_for on the global pool.
void parallel_for_chunks(std::size_t begin, std::size_t end,
                         const std::function<void(Range)> &body,
                         std::size_t chunk = 0);

}  // namespace treu::parallel
