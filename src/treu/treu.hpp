#pragma once

// Umbrella header for the TREU toolkit: Trust & Reproducibility of
// Intelligent Computation. Include individual module headers in
// production code; this header is a convenience for examples and quick
// experiments.

#include "treu/artifact/review.hpp"   // IWYU pragma: export
#include "treu/artifact/study.hpp"    // IWYU pragma: export
#include "treu/artifact/trace.hpp"    // IWYU pragma: export
#include "treu/artifact/triangulate.hpp"  // IWYU pragma: export
#include "treu/ckpt/checkpoint.hpp"   // IWYU pragma: export
#include "treu/ckpt/store.hpp"        // IWYU pragma: export
#include "treu/core/compare.hpp"      // IWYU pragma: export
#include "treu/core/journal_io.hpp"   // IWYU pragma: export
#include "treu/core/env.hpp"          // IWYU pragma: export
#include "treu/core/manifest.hpp"     // IWYU pragma: export
#include "treu/core/provenance.hpp"   // IWYU pragma: export
#include "treu/core/rng.hpp"          // IWYU pragma: export
#include "treu/core/sha256.hpp"       // IWYU pragma: export
#include "treu/core/stats.hpp"        // IWYU pragma: export
#include "treu/core/timer.hpp"        // IWYU pragma: export
#include "treu/fault/fault_plan.hpp"  // IWYU pragma: export
#include "treu/fault/file_fault.hpp"  // IWYU pragma: export
#include "treu/fault/train_fault.hpp" // IWYU pragma: export
#include "treu/guard/sentinels.hpp"   // IWYU pragma: export
#include "treu/guard/supervisor.hpp"  // IWYU pragma: export
#include "treu/histo/segnet.hpp"      // IWYU pragma: export
#include "treu/malware/classifiers.hpp"  // IWYU pragma: export
#include "treu/malware/ngram.hpp"     // IWYU pragma: export
#include "treu/nn/mlp.hpp"            // IWYU pragma: export
#include "treu/parallel/reduce.hpp"   // IWYU pragma: export
#include "treu/parallel/scan.hpp"     // IWYU pragma: export
#include "treu/parallel/thread_pool.hpp"  // IWYU pragma: export
#include "treu/pf/kalman.hpp"         // IWYU pragma: export
#include "treu/pf/particle_filter.hpp"    // IWYU pragma: export
#include "treu/rl/dqn.hpp"            // IWYU pragma: export
#include "treu/robust/estimators.hpp" // IWYU pragma: export
#include "treu/sched/autotune.hpp"    // IWYU pragma: export
#include "treu/sched/gpu_sim.hpp"     // IWYU pragma: export
#include "treu/sched/roofline.hpp"    // IWYU pragma: export
#include "treu/serve/batch_server.hpp"    // IWYU pragma: export
#include "treu/shape/atlas.hpp"       // IWYU pragma: export
#include "treu/survey/treu_survey.hpp"  // IWYU pragma: export
#include "treu/tensor/kernels.hpp"    // IWYU pragma: export
#include "treu/tensor/linalg.hpp"     // IWYU pragma: export
#include "treu/tensor/pca.hpp"        // IWYU pragma: export
#include "treu/traj/dataset.hpp"      // IWYU pragma: export
#include "treu/unlearn/unlearn.hpp"   // IWYU pragma: export
#include "treu/vision/detector.hpp"   // IWYU pragma: export
