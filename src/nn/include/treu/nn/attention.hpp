#pragma once

// Multi-head self-attention and a pre-norm transformer encoder block.
//
// Activations are one sequence at a time: (seq_len x model_dim). The
// attention layer owns packed Q/K/V/output projections (each
// model_dim x model_dim) and computes scaled dot-product attention per
// head, with the full analytic backward pass (softmax Jacobian included) —
// no autograd, every gradient is written out and unit-tested against finite
// differences.

#include <string>

#include "treu/core/rng.hpp"
#include "treu/nn/layer.hpp"
#include "treu/nn/layers.hpp"

namespace treu::nn {

class MultiHeadAttention final : public Layer {
 public:
  /// model_dim must be divisible by heads.
  MultiHeadAttention(std::size_t model_dim, std::size_t heads, core::Rng &rng);

  tensor::Matrix forward(const tensor::Matrix &x) override;
  tensor::Matrix backward(const tensor::Matrix &grad_out) override;
  std::vector<Param *> params() override { return {&wq_, &wk_, &wv_, &wo_}; }
  [[nodiscard]] std::string name() const override { return "mha"; }

  [[nodiscard]] std::size_t heads() const noexcept { return heads_; }

  /// Attention weights of head h from the last forward (seq x seq).
  [[nodiscard]] const tensor::Matrix &attention(std::size_t h) const {
    return attn_.at(h);
  }

 private:
  std::size_t model_dim_;
  std::size_t heads_;
  std::size_t head_dim_;
  Param wq_, wk_, wv_, wo_;  // each model_dim x model_dim

  // Forward caches.
  tensor::Matrix x_, q_, k_, v_, concat_;
  std::vector<tensor::Matrix> attn_;  // per head, seq x seq
};

/// Pre-norm transformer encoder block:
///   h = x + MHA(LN1(x));  y = h + FFN(LN2(h))
/// with FFN = Dense(d, ff) -> ReLU -> Dense(ff, d).
class TransformerBlock final : public Layer {
 public:
  TransformerBlock(std::size_t model_dim, std::size_t heads,
                   std::size_t ff_dim, core::Rng &rng);

  tensor::Matrix forward(const tensor::Matrix &x) override;
  tensor::Matrix backward(const tensor::Matrix &grad_out) override;
  std::vector<Param *> params() override;
  [[nodiscard]] std::string name() const override { return "transformer_block"; }

  /// Sub-layer access for graph capture (treu::graph::capture_sequential
  /// rebuilds the block's dataflow from these).
  [[nodiscard]] LayerNorm &ln1() noexcept { return ln1_; }
  [[nodiscard]] MultiHeadAttention &mha() noexcept { return mha_; }
  [[nodiscard]] LayerNorm &ln2() noexcept { return ln2_; }
  [[nodiscard]] Dense &ff1() noexcept { return ff1_; }
  [[nodiscard]] Dense &ff2() noexcept { return ff2_; }

 private:
  LayerNorm ln1_;
  MultiHeadAttention mha_;
  LayerNorm ln2_;
  Dense ff1_;
  ReLU relu_;
  Dense ff2_;
};

}  // namespace treu::nn
