#pragma once

// Losses. Each returns the scalar loss and the gradient w.r.t. the logits /
// predictions, ready to feed into Layer::backward.

#include <cstddef>
#include <span>
#include <vector>

#include "treu/tensor/matrix.hpp"

namespace treu::nn {

struct LossResult {
  double loss = 0.0;
  tensor::Matrix grad;  // same shape as the input
};

/// Probability floor for every log(p) in the cross-entropy losses: an
/// all-wrong, fully confident prediction yields a large finite loss
/// (-log(1e-15) ~ 34.5 per sample) instead of inf, so one saturated batch
/// can't poison an epoch mean or trip the non-finite sentinels on what is
/// merely a terrible — not corrupted — model.
inline constexpr double kProbEpsilon = 1e-15;

/// Softmax cross-entropy over rows: logits (batch x classes), one label per
/// row. Gradient is (softmax - onehot) / batch.
[[nodiscard]] LossResult softmax_cross_entropy(const tensor::Matrix &logits,
                                               std::span<const std::size_t> labels);

/// Row-wise softmax probabilities (numerically stabilized).
[[nodiscard]] tensor::Matrix softmax(const tensor::Matrix &logits);

/// Mean squared error against a target of the same shape; grad is
/// 2 (pred - target) / size.
[[nodiscard]] LossResult mse(const tensor::Matrix &pred,
                             const tensor::Matrix &target);

/// Binary cross entropy on sigmoid probabilities in (0,1).
[[nodiscard]] LossResult binary_cross_entropy(const tensor::Matrix &probs,
                                              const tensor::Matrix &targets);

/// Argmax prediction per row.
[[nodiscard]] std::vector<std::size_t> argmax_rows(const tensor::Matrix &logits);

/// Fraction of rows whose argmax equals the label.
[[nodiscard]] double accuracy(const tensor::Matrix &logits,
                              std::span<const std::size_t> labels);

}  // namespace treu::nn
