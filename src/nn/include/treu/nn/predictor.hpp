#pragma once

// The unified batched-inference interface (treu::nn::Predictor).
//
// Every trained model in the repo — the malware sequence classifiers, the
// vision window scorer, the RL Q-estimators, and the plain MLP — implements
// this one interface, so the serving layer (treu::serve) can put any of
// them behind a dynamic batcher without knowing what it is scoring.
//
// Contract
//  - `predict_batch` over N inputs must be *bitwise identical* to N
//    per-sample calls in the same order. Batching is a throughput
//    optimization, never a numerics change; serve_test asserts this for
//    every implementation. Implementations whose layers are row-independent
//    (Dense/ReLU/softmax) stack inputs into one matrix and run a single
//    forward; sequence models with variable-length inputs loop, which still
//    amortizes queue/dispatch overhead upstream.
//  - `weight_hash` is the SHA-256 fingerprint of all trainable parameters
//    (via nn::weight_digest), in hex. Served responses carry it so every
//    answer is attributable to an exact weight snapshot — the serving-time
//    extension of the repo's reproducibility ledger.
//  - Inference mutates layer caches (forward stores activations), so
//    predict_batch is non-const and NOT thread-safe per instance. The
//    serving layer serializes access per model replica.

#include <span>
#include <string>
#include <vector>

#include "treu/nn/param.hpp"

namespace treu::nn {

template <typename In, typename Out>
class Predictor {
 public:
  using Input = In;
  using Output = Out;

  virtual ~Predictor() = default;

  /// Batched forward pass; one output per input, in order.
  [[nodiscard]] virtual std::vector<Out> predict_batch(
      std::span<const In> inputs) = 0;

  /// Hex SHA-256 of all trainable weights (shapes included).
  [[nodiscard]] virtual std::string weight_hash() = 0;

  /// Convenience single-sample call through the batched path.
  [[nodiscard]] Out predict_one(const In &input) {
    return std::move(predict_batch(std::span<const In>(&input, 1)).front());
  }
};

/// Argmax label + raw logits for one classified sample; the Output type of
/// dense-feature classifiers (MlpClassifier).
struct ClassScores {
  std::vector<double> logits;
  std::size_t label = 0;
};

/// Helper for implementations: hex weight fingerprint of a parameter list.
[[nodiscard]] inline std::string weight_hash_hex(
    std::span<Param *const> params) {
  return weight_digest(params).hex();
}

}  // namespace treu::nn
