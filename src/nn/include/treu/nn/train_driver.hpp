#pragma once

// Step driver — the one minibatch training loop every trainer in the repo
// shares (MLP classifier, malware sequence classifiers), refactored out of
// Mlp::train so a supervisor can interpose per-step without forking the
// loop.
//
// The driver owns epoch/batch bookkeeping (deterministic shuffling, epoch
// means, obs counters) and calls back into the model through StepFns; a
// TrainObserver sees every batch (`on_batch_start`, which may skip or
// down-weight it) and every optimizer step (`on_step_end`, which may
// continue, stop, or demand a rollback). With no observer and no injector
// the driver executes bit-exactly the same arithmetic and RNG draws as the
// historical Mlp::train loop.
//
// Determinism contract for rollback:
//  * `step` counts *batch positions* (epoch * steps_per_epoch + pos), so a
//    restored step always denotes the same samples regardless of how many
//    replays happened on the way there.
//  * The per-epoch shuffle permutes one persistent order vector, so epoch
//    e's order depends on every shuffle before it. A checkpoint therefore
//    stores the RNG state at *train start* (constant for the whole run);
//    restoring replays the shuffles from scratch — O(epochs * n) per
//    rollback, bitwise-exact, and independent of when the checkpoint was
//    taken. The restore pre-draws the target epoch's shuffle and re-enters
//    the epoch mid-way ("resuming"), which skips the epoch-entry draw.
//  * The optional TrainInjector is consulted once per *executed* batch
//    (skips don't draw, replays draw fresh events), so a fault schedule is
//    a pure function of the injector seed and the execution sequence.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "treu/core/rng.hpp"
#include "treu/fault/train_fault.hpp"
#include "treu/nn/optimizer.hpp"
#include "treu/nn/param.hpp"

namespace treu::nn {

struct StepDriverConfig {
  std::size_t epochs = 20;
  std::size_t batch_size = 32;
  bool shuffle = true;
  double grad_clip = 0.0;  // 0 = off; applied after faults, before the step
};

enum class BatchDirective : std::uint8_t { Run, Skip, DownWeight };

/// What the observer wants done with the upcoming batch.
struct BatchDecision {
  BatchDirective directive = BatchDirective::Run;
  /// DownWeight: gradients are scaled by this before clip + step.
  double scale = 1.0;
  /// Request a shadow recompute (StepFns::loss_only on the same batch,
  /// after fault injection) reported via StepEvent::shadow_loss.
  bool shadow = false;
};

enum class StepAction : std::uint8_t { Continue, Rollback, Stop };

struct BatchContext {
  std::uint64_t step = 0;  // batch position: epoch * steps_per_epoch + pos
  std::uint64_t epoch = 0;
  std::span<const std::size_t> indices;  // sample rows (pre-corruption)
};

struct StepEvent {
  std::uint64_t step = 0;  // batch position just executed
  std::uint64_t epoch = 0;
  double loss = 0.0;  // raw batch loss (never down-weighted)
  /// Post-clip gradient norm: min(pre_clip, grad_clip) when both are
  /// finite, the raw (possibly NaN/Inf) norm otherwise — so clipping can
  /// never mask a non-finite gradient from the sentinels, and a clipped
  /// run can never spuriously trip an explosion threshold above the clip.
  double grad_norm = 0.0;
  double pre_clip_grad_norm = 0.0;
  bool has_shadow = false;
  double shadow_loss = 0.0;
  bool downweighted = false;
};

/// Everything a supervisor needs to checkpoint the run mid-flight. `step`
/// counts completed batch positions; `train_start_rng` is the RNG state at
/// train start (see the determinism contract above). The epoch accumulators
/// travel with checkpoints so a rollback can re-complete the epoch with the
/// exact mean it would have produced uninterrupted.
struct TrainView {
  std::span<Param *const> params;
  Optimizer *opt = nullptr;  // null when the trainer owns no optimizer (rl)
  core::RngState train_start_rng;
  std::uint64_t step = 0;
  std::uint64_t epoch = 0;
  std::uint64_t steps_per_epoch = 0;
  double epoch_loss_accum = 0.0;
  std::uint64_t epoch_executed = 0;
  /// Forward-only loss on a batch (no gradient side effects); null when the
  /// model can't provide one.
  const std::function<double(std::span<const std::size_t>)> *loss_only =
      nullptr;
};

/// Where the observer's rollback() landed. `ok == false` means no usable
/// checkpoint — the driver stops the run.
struct RollbackTarget {
  bool ok = false;
  std::uint64_t step = 0;
  std::uint64_t epoch = 0;
  core::RngState train_start_rng;
  double epoch_loss_accum = 0.0;
  std::uint64_t epoch_executed = 0;
};

/// Per-step hooks. The default implementation observes nothing and changes
/// nothing: driving with a default-constructed TrainObserver is bit-exact
/// with driving unhooked.
class TrainObserver {
 public:
  virtual ~TrainObserver() = default;

  virtual void on_train_start(const TrainView &view) { (void)view; }

  [[nodiscard]] virtual BatchDecision on_batch_start(const BatchContext &ctx) {
    (void)ctx;
    return {};
  }

  [[nodiscard]] virtual StepAction on_step_end(const StepEvent &event,
                                               const TrainView &view) {
    (void)event;
    (void)view;
    return StepAction::Continue;
  }

  /// Called when on_step_end returned Rollback: restore params + optimizer
  /// to a previous good state and say where that state lives. The driver
  /// then rewinds its own bookkeeping (RNG, order, epoch accumulators).
  [[nodiscard]] virtual RollbackTarget rollback(std::span<Param *const> params,
                                                Optimizer *opt) {
    (void)params;
    (void)opt;
    return {};
  }

  virtual void on_train_end(const TrainView &view) { (void)view; }
};

/// Model callbacks: the only two things the driver doesn't know how to do.
struct StepFns {
  /// Forward + loss + backward over the given sample rows; returns the
  /// batch loss. Gradients accumulate into the params the driver steps.
  std::function<double(std::span<const std::size_t>)> forward_backward;
  /// Forward-only loss (no backward, no grad writes). Optional; required
  /// for shadow recomputes.
  std::function<double(std::span<const std::size_t>)> loss_only;
};

struct DriveStats {
  std::vector<double> epoch_loss;  // indexed by epoch (replays overwrite)
  std::uint64_t executed_steps = 0;
  std::uint64_t skipped = 0;
  std::uint64_t downweighted = 0;
  std::uint64_t rollbacks = 0;
  bool stopped_early = false;
};

/// Run the shared minibatch loop over `n_samples` samples. Throws
/// std::invalid_argument when batch_size is 0 or forward_backward is unset.
DriveStats run_step_driver(std::size_t n_samples,
                           const StepDriverConfig &config,
                           std::span<Param *const> params, Optimizer &opt,
                           core::Rng &rng, const StepFns &fns,
                           TrainObserver *observer = nullptr,
                           fault::TrainInjector *injector = nullptr);

}  // namespace treu::nn
