#pragma once

// Layer interface and the Sequential container.
//
// Convention: activations are row-major matrices of shape (rows x features).
// For feed-forward nets, rows is the minibatch; for sequence models, rows is
// sequence positions (one sequence at a time). Every layer caches its
// forward inputs as needed and must be driven strictly as
// forward -> backward -> (optimizer step) on the same data.

#include <memory>
#include <string>
#include <vector>

#include "treu/nn/param.hpp"
#include "treu/tensor/matrix.hpp"

namespace treu::nn {

class Layer {
 public:
  virtual ~Layer() = default;

  /// Forward pass; caches whatever backward will need.
  virtual tensor::Matrix forward(const tensor::Matrix &x) = 0;

  /// Backward pass: gradient of the loss w.r.t. this layer's output in,
  /// gradient w.r.t. its input out. Accumulates parameter gradients.
  virtual tensor::Matrix backward(const tensor::Matrix &grad_out) = 0;

  /// Trainable parameters (empty for stateless layers).
  virtual std::vector<Param *> params() { return {}; }

  [[nodiscard]] virtual std::string name() const = 0;

  /// Toggle training-time behaviour (dropout). Default: no-op.
  virtual void set_training(bool) {}
};

/// Ordered composition of layers.
class Sequential final : public Layer {
 public:
  Sequential() = default;

  /// Append a layer; returns *this for chaining.
  Sequential &add(std::unique_ptr<Layer> layer);

  template <typename L, typename... Args>
  Sequential &emplace(Args &&...args) {
    return add(std::make_unique<L>(std::forward<Args>(args)...));
  }

  tensor::Matrix forward(const tensor::Matrix &x) override;
  tensor::Matrix backward(const tensor::Matrix &grad_out) override;
  std::vector<Param *> params() override;
  [[nodiscard]] std::string name() const override { return "sequential"; }
  void set_training(bool training) override;

  [[nodiscard]] std::size_t depth() const noexcept { return layers_.size(); }
  [[nodiscard]] Layer &layer(std::size_t i) { return *layers_.at(i); }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

void zero_grads(std::span<Param *const> params) noexcept;

}  // namespace treu::nn
