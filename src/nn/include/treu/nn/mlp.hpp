#pragma once

// Convenience multilayer-perceptron classifier used by several experiment
// modules (unlearning, DQN Q-estimators, detector scoring): Dense/ReLU
// stack + softmax cross-entropy training loop with deterministic minibatch
// shuffling.

#include <memory>
#include <vector>

#include "treu/core/rng.hpp"
#include "treu/nn/layer.hpp"
#include "treu/nn/loss.hpp"
#include "treu/nn/optimizer.hpp"
#include "treu/nn/predictor.hpp"
#include "treu/nn/train_driver.hpp"

namespace treu::nn {

/// Labeled dense dataset: one row per sample.
struct Dataset {
  tensor::Matrix x;
  std::vector<std::size_t> y;

  [[nodiscard]] std::size_t size() const noexcept { return y.size(); }

  /// Row subset (copy).
  [[nodiscard]] Dataset subset(std::span<const std::size_t> indices) const;

  /// Split into (train, test) by shuffled indices.
  [[nodiscard]] std::pair<Dataset, Dataset> split(double train_fraction,
                                                  core::Rng &rng) const;

  /// Remove all samples of one class (returns the filtered set and the
  /// removed set) — the unlearning module's "forget set" constructor.
  [[nodiscard]] std::pair<Dataset, Dataset> without_class(std::size_t cls) const;
};

struct TrainConfig {
  std::size_t epochs = 20;
  std::size_t batch_size = 32;
  double lr = 1e-3;
  double grad_clip = 0.0;      // 0 = off
  double weight_decay = 0.0;   // L2 regularization fed to the optimizer
  double momentum = 0.9;       // SGD only
  /// Adam's per-coordinate scaling is the right default for dense nets but
  /// notoriously overfits very sparse high-dimensional features (rare
  /// feature -> tiny second moment -> huge step); plain SGD is the safe
  /// choice there.
  bool use_sgd = false;
  bool shuffle = true;
};

struct TrainStats {
  std::vector<double> epoch_loss;
  double final_train_accuracy = 0.0;
  /// Step-driver accounting (skips, down-weights, rollbacks, early stop).
  DriveStats drive;
};

class MlpClassifier final
    : public Predictor<std::vector<double>, ClassScores> {
 public:
  MlpClassifier(std::size_t input_dim, const std::vector<std::size_t> &hidden,
                std::size_t classes, core::Rng &rng);

  /// Predictor: feature rows in, logits + argmax label out. The batch is
  /// stacked into one matrix and run through a single forward pass; Dense /
  /// ReLU are row-independent, so outputs are bitwise-identical to
  /// per-sample calls.
  [[nodiscard]] std::vector<ClassScores> predict_batch(
      std::span<const std::vector<double>> inputs) override;
  [[nodiscard]] std::string weight_hash() override;

  [[nodiscard]] tensor::Matrix logits(const tensor::Matrix &x);
  [[nodiscard]] std::vector<std::size_t> predict(const tensor::Matrix &x);
  [[nodiscard]] double evaluate(const Dataset &data);

  /// Mean per-class probability the model assigns to class `cls` over the
  /// rows of `x` (used by unlearning verification).
  [[nodiscard]] double mean_class_probability(const tensor::Matrix &x,
                                              std::size_t cls);

  /// Adam training with softmax cross-entropy, run through the shared step
  /// driver. With no observer and no injector this is bit-exact with the
  /// historical in-place loop; a guard::Supervisor passed as `observer`
  /// makes the run self-healing.
  TrainStats train(const Dataset &data, const TrainConfig &config,
                   core::Rng &rng, TrainObserver *observer = nullptr,
                   fault::TrainInjector *injector = nullptr);

  /// One gradient step on an explicit batch with sign `direction`
  /// (+1 descend, -1 ascend — gradient ascent drives unlearning).
  double step_on_batch(const tensor::Matrix &x,
                       std::span<const std::size_t> y, Optimizer &opt,
                       double direction = 1.0);

  /// One step pulling the softmax outputs for `x` toward an explicit target
  /// distribution (same row count as x, `classes` columns). Bounded
  /// gradients make this the stable primitive for unlearning: retargeting
  /// the forget class to uniform never explodes the way CE ascent does.
  double step_toward_distribution(const tensor::Matrix &x,
                                  const tensor::Matrix &target_probs,
                                  Optimizer &opt);

  [[nodiscard]] std::vector<Param *> params() { return net_.params(); }
  [[nodiscard]] std::size_t classes() const noexcept { return classes_; }

  /// The underlying layer stack, exposed for graph capture
  /// (treu::graph::capture_mlp walks it layer by layer).
  [[nodiscard]] Sequential &network() noexcept { return net_; }

 private:
  Sequential net_;
  std::size_t classes_;
};

}  // namespace treu::nn
