#pragma once

// Sequence convolution layers for the text/opcode classifiers (§2.9).
//
// `Conv1dSeq` convolves along the sequence axis of a (seq x in_dim)
// activation with `filters` kernels of width `width` ("same" output length
// via zero padding is *not* used — valid mode, matching the McLaughlin-style
// malware CNN). `GlobalMaxPool` reduces (seq x d) to (1 x d) keeping argmax
// indices for backward.

#include <string>

#include "treu/core/rng.hpp"
#include "treu/nn/layer.hpp"

namespace treu::nn {

class Conv1dSeq final : public Layer {
 public:
  Conv1dSeq(std::size_t in_dim, std::size_t filters, std::size_t width,
            core::Rng &rng);

  /// (seq x in_dim) -> (seq - width + 1 x filters); seq must be >= width.
  tensor::Matrix forward(const tensor::Matrix &x) override;
  tensor::Matrix backward(const tensor::Matrix &grad_out) override;
  std::vector<Param *> params() override { return {&w_, &b_}; }
  [[nodiscard]] std::string name() const override { return "conv1d_seq"; }

  [[nodiscard]] std::size_t width() const noexcept { return width_; }

 private:
  std::size_t in_dim_;
  std::size_t filters_;
  std::size_t width_;
  Param w_;  // filters x (width * in_dim), row f is filter f flattened
  Param b_;  // 1 x filters
  tensor::Matrix input_;
};

/// Column-wise max over rows: (seq x d) -> (1 x d).
class GlobalMaxPool final : public Layer {
 public:
  tensor::Matrix forward(const tensor::Matrix &x) override;
  tensor::Matrix backward(const tensor::Matrix &grad_out) override;
  [[nodiscard]] std::string name() const override { return "globalmaxpool"; }

 private:
  std::size_t rows_ = 0;
  std::vector<std::size_t> argmax_;  // per column
};

}  // namespace treu::nn
