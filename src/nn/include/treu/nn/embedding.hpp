#pragma once

// Token embedding table. Unlike the Matrix->Matrix layers, the input is a
// token id sequence, so Embedding sits in front of a Sequential rather than
// inside one: call `forward(tokens)` to get the (seq x dim) activation, run
// the network, then feed the network's input-gradient to `backward`.

#include <cstdint>
#include <span>
#include <vector>

#include "treu/core/rng.hpp"
#include "treu/nn/param.hpp"

namespace treu::nn {

class Embedding {
 public:
  Embedding(std::size_t vocab_size, std::size_t dim, core::Rng &rng);

  /// Look up a sequence of token ids; out-of-range ids throw.
  [[nodiscard]] tensor::Matrix forward(std::span<const std::uint32_t> tokens);

  /// Accumulate gradients for the rows used in the last forward.
  void backward(const tensor::Matrix &grad_out);

  [[nodiscard]] std::vector<Param *> params() { return {&table_}; }
  [[nodiscard]] std::size_t vocab_size() const noexcept {
    return table_.value.rows();
  }
  [[nodiscard]] std::size_t dim() const noexcept { return table_.value.cols(); }

 private:
  Param table_;  // vocab x dim
  std::vector<std::uint32_t> last_tokens_;
};

}  // namespace treu::nn
