#pragma once

// Trainable parameter: a value matrix and its accumulated gradient.
//
// The library uses explicit forward/backward passes (no tape autograd):
// each layer caches what it needs during forward and writes parameter
// gradients during backward. Optimizers see parameters through `Param*`
// lists, and the whole parameter set can be fingerprinted for the
// reproducibility ledger (identical training run => identical weight
// digest).

#include <span>
#include <vector>

#include "treu/core/sha256.hpp"
#include "treu/tensor/matrix.hpp"

namespace treu::nn {

struct Param {
  tensor::Matrix value;
  tensor::Matrix grad;

  Param() = default;
  explicit Param(tensor::Matrix v)
      : value(std::move(v)), grad(value.rows(), value.cols(), 0.0) {}

  void zero_grad() noexcept { grad.fill(0.0); }
  [[nodiscard]] std::size_t size() const noexcept { return value.size(); }
};

/// Total scalar count across a parameter list.
[[nodiscard]] std::size_t parameter_count(std::span<Param *const> params) noexcept;

/// Bit-exact fingerprint of all parameter values (shapes included), in list
/// order. Equal training runs produce equal digests.
[[nodiscard]] core::Digest weight_digest(std::span<Param *const> params);

/// Serialize / restore all parameter values (shapes must already match).
[[nodiscard]] std::vector<double> save_weights(std::span<Param *const> params);
void load_weights(std::span<Param *const> params, std::span<const double> flat);

}  // namespace treu::nn
