#pragma once

// Optimizers over Param lists. Both are deterministic given the gradient
// sequence; state (momentum / moment estimates) is keyed by position in the
// parameter list, so the list must be stable across steps.

#include <vector>

#include "treu/nn/param.hpp"

namespace treu::nn {

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Apply one update from the accumulated gradients, then zero them.
  virtual void step(std::span<Param *const> params) = 0;
};

/// SGD with classical momentum and optional L2 weight decay.
class Sgd final : public Optimizer {
 public:
  explicit Sgd(double lr, double momentum = 0.0, double weight_decay = 0.0)
      : lr_(lr), momentum_(momentum), weight_decay_(weight_decay) {}

  void step(std::span<Param *const> params) override;

  void set_lr(double lr) noexcept { lr_ = lr; }
  [[nodiscard]] double lr() const noexcept { return lr_; }

 private:
  double lr_;
  double momentum_;
  double weight_decay_;
  std::vector<std::vector<double>> velocity_;
};

/// Adam (Kingma & Ba) with bias correction.
class Adam final : public Optimizer {
 public:
  explicit Adam(double lr, double beta1 = 0.9, double beta2 = 0.999,
                double eps = 1e-8, double weight_decay = 0.0)
      : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps),
        weight_decay_(weight_decay) {}

  void step(std::span<Param *const> params) override;

  void set_lr(double lr) noexcept { lr_ = lr; }
  [[nodiscard]] double lr() const noexcept { return lr_; }
  [[nodiscard]] std::size_t steps_taken() const noexcept { return t_; }

 private:
  double lr_, beta1_, beta2_, eps_, weight_decay_;
  std::size_t t_ = 0;
  std::vector<std::vector<double>> m_, v_;
};

/// Clip gradients to a global L2 norm bound; returns the pre-clip norm.
double clip_grad_norm(std::span<Param *const> params, double max_norm);

}  // namespace treu::nn
