#pragma once

// Optimizers over Param lists. Both are deterministic given the gradient
// sequence; state (momentum / moment estimates) is keyed by position in the
// parameter list, so the list must be stable across steps.
//
// Optimizer state is serializable (save_state / load_state) so a training
// run can be checkpointed and resumed bitwise-exactly (treu::ckpt): the
// moment estimates and step count are as much a part of the trajectory as
// the weights themselves. Hyperparameters (lr, betas, decay) are NOT part
// of the state — the caller reconstructs the optimizer with the same
// configuration and loads only the accumulated state into it.

#include <string>
#include <vector>

#include "treu/nn/param.hpp"

namespace treu::nn {

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Apply one update from the accumulated gradients, then zero them.
  virtual void step(std::span<Param *const> params) = 0;

  /// Short identifier of the concrete optimizer ("sgd" / "adam"), recorded
  /// in checkpoints so a restore into the wrong kind fails loudly.
  [[nodiscard]] virtual std::string kind() const = 0;

  /// Serialize the accumulated state (step count, moment vectors) as flat
  /// doubles. A never-stepped optimizer serializes its (empty) state too;
  /// the encoding is self-describing enough for load_state to validate.
  [[nodiscard]] virtual std::vector<double> save_state() const = 0;

  /// Restore state captured by save_state on an identically configured
  /// optimizer over an identically shaped parameter list. Throws
  /// std::invalid_argument on a malformed or mismatched encoding.
  virtual void load_state(std::span<const double> flat) = 0;
};

/// SGD with classical momentum and optional L2 weight decay.
class Sgd final : public Optimizer {
 public:
  explicit Sgd(double lr, double momentum = 0.0, double weight_decay = 0.0)
      : lr_(lr), momentum_(momentum), weight_decay_(weight_decay) {}

  void step(std::span<Param *const> params) override;
  [[nodiscard]] std::string kind() const override { return "sgd"; }
  [[nodiscard]] std::vector<double> save_state() const override;
  void load_state(std::span<const double> flat) override;

  void set_lr(double lr) noexcept { lr_ = lr; }
  [[nodiscard]] double lr() const noexcept { return lr_; }

 private:
  double lr_;
  double momentum_;
  double weight_decay_;
  std::vector<std::vector<double>> velocity_;
};

/// Adam (Kingma & Ba) with bias correction.
class Adam final : public Optimizer {
 public:
  explicit Adam(double lr, double beta1 = 0.9, double beta2 = 0.999,
                double eps = 1e-8, double weight_decay = 0.0)
      : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps),
        weight_decay_(weight_decay) {}

  void step(std::span<Param *const> params) override;
  [[nodiscard]] std::string kind() const override { return "adam"; }
  [[nodiscard]] std::vector<double> save_state() const override;
  void load_state(std::span<const double> flat) override;

  void set_lr(double lr) noexcept { lr_ = lr; }
  [[nodiscard]] double lr() const noexcept { return lr_; }
  [[nodiscard]] std::size_t steps_taken() const noexcept { return t_; }

 private:
  double lr_, beta1_, beta2_, eps_, weight_decay_;
  std::size_t t_ = 0;
  std::vector<std::vector<double>> m_, v_;
};

/// Clip gradients to a global L2 norm bound; returns the pre-clip norm.
double clip_grad_norm(std::span<Param *const> params, double max_norm);

}  // namespace treu::nn
