#pragma once

// Spatial (image) layers over Tensor3 activations (channels x H x W),
// the building blocks of the histopathology segmentation nets (§2.7):
// same-padded multi-channel 2D convolution, 2x2 max pooling, 2x nearest
// upsampling, and ReLU — each with explicit backward.
//
// These mirror the Layer interface but on Tensor3; they are composed
// directly (not via Sequential) by the encoder-decoder models.

#include <vector>

#include "treu/core/rng.hpp"
#include "treu/nn/param.hpp"
#include "treu/tensor/matrix.hpp"

namespace treu::nn {

/// Same-padded KxK convolution: (Cin x H x W) -> (Cout x H x W).
class Conv2d3 {
 public:
  Conv2d3(std::size_t in_channels, std::size_t out_channels, std::size_t ksize,
          core::Rng &rng);

  [[nodiscard]] tensor::Tensor3 forward(const tensor::Tensor3 &x);
  [[nodiscard]] tensor::Tensor3 backward(const tensor::Tensor3 &grad_out);
  [[nodiscard]] std::vector<Param *> params() { return {&w_, &b_}; }

  [[nodiscard]] std::size_t in_channels() const noexcept { return cin_; }
  [[nodiscard]] std::size_t out_channels() const noexcept { return cout_; }

 private:
  std::size_t cin_, cout_, k_;
  Param w_;  // cout x (cin * k * k)
  Param b_;  // 1 x cout
  tensor::Tensor3 input_;
};

/// 2x2 max pooling with stride 2 (floor semantics on odd sizes).
class MaxPool2x2 {
 public:
  [[nodiscard]] tensor::Tensor3 forward(const tensor::Tensor3 &x);
  [[nodiscard]] tensor::Tensor3 backward(const tensor::Tensor3 &grad_out);

 private:
  std::size_t in_h_ = 0, in_w_ = 0;
  std::vector<std::size_t> argmax_;  // flat index into input per output cell
};

/// Nearest-neighbour 2x upsampling.
class Upsample2x {
 public:
  [[nodiscard]] tensor::Tensor3 forward(const tensor::Tensor3 &x);
  [[nodiscard]] tensor::Tensor3 backward(const tensor::Tensor3 &grad_out);

 private:
  std::size_t in_h_ = 0, in_w_ = 0;
};

class ReLU3 {
 public:
  [[nodiscard]] tensor::Tensor3 forward(const tensor::Tensor3 &x);
  [[nodiscard]] tensor::Tensor3 backward(const tensor::Tensor3 &grad_out);

 private:
  tensor::Tensor3 input_;
};

/// Per-pixel sigmoid (for mask heads).
class Sigmoid3 {
 public:
  [[nodiscard]] tensor::Tensor3 forward(const tensor::Tensor3 &x);
  [[nodiscard]] tensor::Tensor3 backward(const tensor::Tensor3 &grad_out);

 private:
  tensor::Tensor3 output_;
};

}  // namespace treu::nn
