#pragma once

// Core feed-forward layers: Dense, activations, Dropout, LayerNorm,
// mean pooling, and sinusoidal positional encoding.

#include <string>

#include "treu/core/rng.hpp"
#include "treu/nn/layer.hpp"

namespace treu::nn {

/// Fully connected layer: y = x W + b, with W (in x out) He-initialized.
class Dense final : public Layer {
 public:
  Dense(std::size_t in_features, std::size_t out_features, core::Rng &rng);

  tensor::Matrix forward(const tensor::Matrix &x) override;
  tensor::Matrix backward(const tensor::Matrix &grad_out) override;
  std::vector<Param *> params() override { return {&w_, &b_}; }
  [[nodiscard]] std::string name() const override { return "dense"; }

  [[nodiscard]] Param &weight() noexcept { return w_; }
  [[nodiscard]] Param &bias() noexcept { return b_; }

 private:
  Param w_;  // in x out
  Param b_;  // 1 x out
  tensor::Matrix input_;
};

class ReLU final : public Layer {
 public:
  tensor::Matrix forward(const tensor::Matrix &x) override;
  tensor::Matrix backward(const tensor::Matrix &grad_out) override;
  [[nodiscard]] std::string name() const override { return "relu"; }

 private:
  tensor::Matrix input_;
};

class Tanh final : public Layer {
 public:
  tensor::Matrix forward(const tensor::Matrix &x) override;
  tensor::Matrix backward(const tensor::Matrix &grad_out) override;
  [[nodiscard]] std::string name() const override { return "tanh"; }

 private:
  tensor::Matrix output_;
};

class Sigmoid final : public Layer {
 public:
  tensor::Matrix forward(const tensor::Matrix &x) override;
  tensor::Matrix backward(const tensor::Matrix &grad_out) override;
  [[nodiscard]] std::string name() const override { return "sigmoid"; }

 private:
  tensor::Matrix output_;
};

/// Inverted dropout; identity at evaluation time.
class Dropout final : public Layer {
 public:
  Dropout(double rate, core::Rng &rng);

  tensor::Matrix forward(const tensor::Matrix &x) override;
  tensor::Matrix backward(const tensor::Matrix &grad_out) override;
  [[nodiscard]] std::string name() const override { return "dropout"; }
  void set_training(bool training) override { training_ = training; }

 private:
  double rate_;
  core::Rng rng_;
  bool training_ = true;
  tensor::Matrix mask_;
};

/// Per-row layer normalization with learned gain/bias.
class LayerNorm final : public Layer {
 public:
  explicit LayerNorm(std::size_t features, double eps = 1e-5);

  tensor::Matrix forward(const tensor::Matrix &x) override;
  tensor::Matrix backward(const tensor::Matrix &grad_out) override;
  std::vector<Param *> params() override { return {&gain_, &bias_}; }
  [[nodiscard]] std::string name() const override { return "layernorm"; }

  /// Variance epsilon — graph capture must reproduce it exactly.
  [[nodiscard]] double eps() const noexcept { return eps_; }

 private:
  double eps_;
  Param gain_;  // 1 x features
  Param bias_;  // 1 x features
  tensor::Matrix normalized_;
  std::vector<double> inv_std_;
};

/// Mean over rows: (seq x d) -> (1 x d). Pools a sequence representation
/// into a classification vector.
class MeanPool final : public Layer {
 public:
  tensor::Matrix forward(const tensor::Matrix &x) override;
  tensor::Matrix backward(const tensor::Matrix &grad_out) override;
  [[nodiscard]] std::string name() const override { return "meanpool"; }

 private:
  std::size_t rows_ = 0;
};

/// Adds fixed sinusoidal positional encodings (Vaswani et al.) to a
/// (seq x d) activation. Stateless w.r.t. training.
class PositionalEncoding final : public Layer {
 public:
  explicit PositionalEncoding(std::size_t max_len, std::size_t dim);

  tensor::Matrix forward(const tensor::Matrix &x) override;
  tensor::Matrix backward(const tensor::Matrix &grad_out) override;
  [[nodiscard]] std::string name() const override { return "posenc"; }

  /// The encoding table itself (max_len x dim), for inspection/tests.
  [[nodiscard]] const tensor::Matrix &table() const noexcept { return table_; }

 private:
  tensor::Matrix table_;
};

}  // namespace treu::nn
