#include "treu/nn/train_driver.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "treu/obs/obs.hpp"

namespace treu::nn {
namespace {

double grad_l2_norm(std::span<Param *const> params) {
  double total = 0.0;
  for (const Param *p : params) {
    for (double g : p->grad.flat()) total += g * g;
  }
  return std::sqrt(total);
}

std::size_t total_scalars(std::span<Param *const> params) {
  std::size_t n = 0;
  for (const Param *p : params) n += p->value.flat().size();
  return n;
}

/// Map a uniform pick in [0, 1) to one scalar across the parameter list and
/// apply `fn` to it (grad == false hits the value, true hits the gradient).
template <typename Fn>
void with_picked_scalar(std::span<Param *const> params, double pick, bool grad,
                        Fn &&fn) {
  const std::size_t total = total_scalars(params);
  if (total == 0) return;
  std::size_t target = static_cast<std::size_t>(
      pick * static_cast<double>(total));
  target = std::min(target, total - 1);
  for (Param *p : params) {
    auto flat = grad ? p->grad.flat() : p->value.flat();
    if (target < flat.size()) {
      fn(flat[target]);
      return;
    }
    target -= flat.size();
  }
}

void apply_train_fault(const fault::TrainFaultDecision &fd,
                       std::span<Param *const> params) {
  switch (fd.kind) {
    case fault::TrainFaultKind::NanGrad:
      with_picked_scalar(params, fd.pick, /*grad=*/true, [](double &g) {
        g = std::numeric_limits<double>::quiet_NaN();
      });
      break;
    case fault::TrainFaultKind::ExplodeGrad:
      for (Param *p : params) {
        for (auto &g : p->grad.flat()) g *= fd.magnitude;
      }
      break;
    case fault::TrainFaultKind::CorruptParam:
      with_picked_scalar(params, fd.pick, /*grad=*/false,
                         [&](double &v) { v *= fd.magnitude; });
      break;
    case fault::TrainFaultKind::CorruptBatch:
    case fault::TrainFaultKind::None:
      break;
  }
}

}  // namespace

DriveStats run_step_driver(std::size_t n_samples,
                           const StepDriverConfig &config,
                           std::span<Param *const> params, Optimizer &opt,
                           core::Rng &rng, const StepFns &fns,
                           TrainObserver *observer,
                           fault::TrainInjector *injector) {
  if (config.batch_size == 0) {
    throw std::invalid_argument("run_step_driver: batch_size must be > 0");
  }
  if (!fns.forward_backward) {
    throw std::invalid_argument("run_step_driver: forward_backward unset");
  }
  DriveStats stats;
  if (n_samples == 0 || config.epochs == 0) return stats;

  const std::uint64_t spe =
      (n_samples + config.batch_size - 1) / config.batch_size;
  const core::RngState start_state = rng.state();
  const bool hooked = observer != nullptr || injector != nullptr;

  std::vector<std::size_t> order(n_samples);
  std::iota(order.begin(), order.end(), 0);

  std::uint64_t epoch = 0;
  std::uint64_t pos = 0;
  double epoch_accum = 0.0;
  std::uint64_t epoch_executed = 0;
  bool resuming = false;
  bool stopped = false;

  const auto view_at = [&](std::uint64_t completed) {
    TrainView v;
    v.params = params;
    v.opt = &opt;
    v.train_start_rng = start_state;
    v.step = completed;
    v.epoch = epoch;
    v.steps_per_epoch = spe;
    v.epoch_loss_accum = epoch_accum;
    v.epoch_executed = epoch_executed;
    v.loss_only = fns.loss_only ? &fns.loss_only : nullptr;
    return v;
  };

  if (observer) observer->on_train_start(view_at(0));

  while (epoch < config.epochs && !stopped) {
    TREU_OBS_SPAN(epoch_span, "nn.train.epoch");
    TREU_OBS_SCOPED_LATENCY_US(epoch_timer, "nn.train.epoch_us");
    if (!resuming) {
      if (config.shuffle) rng.shuffle(order);
      pos = 0;
      epoch_accum = 0.0;
      epoch_executed = 0;
    }
    resuming = false;
    bool rolled_back = false;

    while (pos < spe) {
      const std::size_t start = static_cast<std::size_t>(pos) *
                                config.batch_size;
      const std::size_t end =
          std::min(start + config.batch_size, order.size());
      const std::span<const std::size_t> batch_idx(order.data() + start,
                                                   end - start);
      const std::uint64_t step_index = epoch * spe + pos;

      BatchDecision dec;
      if (observer) dec = observer->on_batch_start({step_index, epoch,
                                                    batch_idx});
      if (dec.directive == BatchDirective::Skip) {
        ++stats.skipped;
        ++pos;
        continue;
      }

      fault::TrainFaultDecision fd;
      if (injector) fd = injector->decide_step();

      std::vector<std::size_t> corrupted;
      std::span<const std::size_t> run_idx = batch_idx;
      if (fd.kind == fault::TrainFaultKind::CorruptBatch && n_samples > 1) {
        // Rotate the sample rows by a deterministic offset: the loop trains
        // on real-but-wrong samples, which only the shadow audit can see.
        const std::size_t rot =
            1 + static_cast<std::size_t>(
                    fd.pick * static_cast<double>(n_samples - 1));
        corrupted.assign(batch_idx.begin(), batch_idx.end());
        for (auto &i : corrupted) i = (i + rot) % n_samples;
        run_idx = corrupted;
      }

      const double loss = fns.forward_backward(run_idx);
      apply_train_fault(fd, params);

      bool has_shadow = false;
      double shadow_loss = 0.0;
      if (dec.shadow && fns.loss_only) {
        // After fault application: a silently corrupted parameter changes
        // the recomputed forward loss, which is exactly the mismatch the
        // SDC audit looks for.
        shadow_loss = fns.loss_only(batch_idx);
        has_shadow = true;
      }

      if (dec.directive == BatchDirective::DownWeight) {
        ++stats.downweighted;
        for (Param *p : params) {
          for (auto &g : p->grad.flat()) g *= dec.scale;
        }
      }

      double pre_clip = 0.0;
      double reported = 0.0;
      if (config.grad_clip > 0.0) {
        pre_clip = clip_grad_norm(params, config.grad_clip);
        reported = std::isfinite(pre_clip)
                       ? std::min(pre_clip, config.grad_clip)
                       : pre_clip;
      } else if (hooked) {
        pre_clip = grad_l2_norm(params);
        reported = pre_clip;
      }

      opt.step(params);
      epoch_accum += loss;
      ++epoch_executed;
      ++stats.executed_steps;

      if (observer) {
        StepEvent ev;
        ev.step = step_index;
        ev.epoch = epoch;
        ev.loss = loss;
        ev.grad_norm = reported;
        ev.pre_clip_grad_norm = pre_clip;
        ev.has_shadow = has_shadow;
        ev.shadow_loss = shadow_loss;
        ev.downweighted = dec.directive == BatchDirective::DownWeight;
        const StepAction act = observer->on_step_end(ev, view_at(step_index + 1));
        if (act == StepAction::Stop) {
          stats.stopped_early = true;
          stopped = true;
          break;
        }
        if (act == StepAction::Rollback) {
          ++stats.rollbacks;
          const RollbackTarget t = observer->rollback(params, &opt);
          if (!t.ok) {
            stats.stopped_early = true;
            stopped = true;
            break;
          }
          // Rewind the loop to the restored position: replay the shuffle
          // sequence from the train-start RNG state (pre-drawing the target
          // epoch's shuffle — `resuming` skips the epoch-entry draw), then
          // re-enter the epoch with its accumulators restored.
          rng = core::Rng::from_state(t.train_start_rng);
          std::iota(order.begin(), order.end(), 0);
          if (config.shuffle) {
            for (std::uint64_t e = 0; e <= t.epoch; ++e) rng.shuffle(order);
          }
          epoch = t.epoch;
          pos = t.step - t.epoch * spe;
          epoch_accum = t.epoch_loss_accum;
          epoch_executed = t.epoch_executed;
          resuming = true;
          rolled_back = true;
          break;
        }
      }
      ++pos;
    }

    if (stopped) break;
    if (rolled_back) continue;

    const double mean_loss =
        epoch_executed > 0
            ? epoch_accum / static_cast<double>(epoch_executed)
            : 0.0;
    TREU_OBS_COUNTER_ADD("nn.train.epochs", 1);
    TREU_OBS_COUNTER_EVENT("nn.train.epoch_loss", mean_loss);
    if (stats.epoch_loss.size() <= epoch) stats.epoch_loss.resize(epoch + 1);
    stats.epoch_loss[epoch] = mean_loss;
    ++epoch;
  }

  if (observer) observer->on_train_end(view_at(epoch * spe + pos));
  return stats;
}

}  // namespace treu::nn
