#include "treu/nn/param.hpp"

#include <stdexcept>

namespace treu::nn {

std::size_t parameter_count(std::span<Param *const> params) noexcept {
  std::size_t n = 0;
  for (const Param *p : params) n += p->size();
  return n;
}

core::Digest weight_digest(std::span<Param *const> params) {
  core::Sha256 h;
  h.update("weights-v1");
  for (const Param *p : params) {
    const std::size_t r = p->value.rows();
    const std::size_t c = p->value.cols();
    h.update_value(r);
    h.update_value(c);
    h.update(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t *>(p->value.data()),
        p->value.size() * sizeof(double)));
  }
  return h.finish();
}

std::vector<double> save_weights(std::span<Param *const> params) {
  std::vector<double> flat;
  flat.reserve(parameter_count(params));
  for (const Param *p : params) {
    flat.insert(flat.end(), p->value.flat().begin(), p->value.flat().end());
  }
  return flat;
}

void load_weights(std::span<Param *const> params, std::span<const double> flat) {
  if (flat.size() != parameter_count(params)) {
    throw std::invalid_argument("load_weights: size mismatch");
  }
  std::size_t off = 0;
  for (Param *p : params) {
    auto dst = p->value.flat();
    for (std::size_t i = 0; i < dst.size(); ++i) dst[i] = flat[off + i];
    off += dst.size();
  }
}

}  // namespace treu::nn
