#include "treu/nn/optimizer.hpp"

#include <cmath>
#include <stdexcept>

namespace treu::nn {
namespace {

void ensure_state(std::vector<std::vector<double>> &state,
                  std::span<Param *const> params) {
  if (state.size() == params.size()) return;
  if (!state.empty()) {
    throw std::invalid_argument("Optimizer: parameter list changed size");
  }
  state.resize(params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    state[i].assign(params[i]->size(), 0.0);
  }
}

}  // namespace

void Sgd::step(std::span<Param *const> params) {
  ensure_state(velocity_, params);
  for (std::size_t i = 0; i < params.size(); ++i) {
    Param &p = *params[i];
    auto value = p.value.flat();
    auto grad = p.grad.flat();
    auto &vel = velocity_[i];
    for (std::size_t j = 0; j < value.size(); ++j) {
      double g = grad[j] + weight_decay_ * value[j];
      vel[j] = momentum_ * vel[j] + g;
      value[j] -= lr_ * vel[j];
    }
    p.zero_grad();
  }
}

void Adam::step(std::span<Param *const> params) {
  ensure_state(m_, params);
  ensure_state(v_, params);
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t i = 0; i < params.size(); ++i) {
    Param &p = *params[i];
    auto value = p.value.flat();
    auto grad = p.grad.flat();
    auto &m = m_[i];
    auto &v = v_[i];
    for (std::size_t j = 0; j < value.size(); ++j) {
      const double g = grad[j] + weight_decay_ * value[j];
      m[j] = beta1_ * m[j] + (1.0 - beta1_) * g;
      v[j] = beta2_ * v[j] + (1.0 - beta2_) * g * g;
      const double mhat = m[j] / bc1;
      const double vhat = v[j] / bc2;
      value[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
    p.zero_grad();
  }
}

double clip_grad_norm(std::span<Param *const> params, double max_norm) {
  double total = 0.0;
  for (const Param *p : params) {
    for (double g : p->grad.flat()) total += g * g;
  }
  const double norm = std::sqrt(total);
  if (norm > max_norm && norm > 0.0) {
    const double scale = max_norm / norm;
    for (Param *p : params) {
      for (auto &g : p->grad.flat()) g *= scale;
    }
  }
  return norm;
}

}  // namespace treu::nn
