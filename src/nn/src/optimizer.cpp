#include "treu/nn/optimizer.hpp"

#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

namespace treu::nn {
namespace {

void ensure_state(std::vector<std::vector<double>> &state,
                  std::span<Param *const> params) {
  if (state.size() == params.size()) return;
  if (!state.empty()) {
    throw std::invalid_argument("Optimizer: parameter list changed size");
  }
  state.resize(params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    state[i].assign(params[i]->size(), 0.0);
  }
}

// State vectors serialize as [n_vecs, len_0, v_0..., len_1, v_1...]; the
// lengths make load_state self-validating (a state captured over a
// differently shaped parameter list fails instead of silently loading).
void encode_vectors(const std::vector<std::vector<double>> &vecs,
                    std::vector<double> &out) {
  out.push_back(static_cast<double>(vecs.size()));
  for (const auto &v : vecs) {
    out.push_back(static_cast<double>(v.size()));
    out.insert(out.end(), v.begin(), v.end());
  }
}

std::vector<std::vector<double>> decode_vectors(std::span<const double> flat,
                                                std::size_t &pos,
                                                const char *what) {
  const auto take = [&](const char *field) {
    if (pos >= flat.size()) {
      throw std::invalid_argument(std::string(what) + ": truncated state (" +
                                  field + ")");
    }
    return flat[pos++];
  };
  const double n_raw = take("vector count");
  if (n_raw < 0.0 || n_raw != static_cast<double>(static_cast<std::size_t>(n_raw))) {
    throw std::invalid_argument(std::string(what) + ": bad vector count");
  }
  std::vector<std::vector<double>> vecs(static_cast<std::size_t>(n_raw));
  for (auto &v : vecs) {
    const double len_raw = take("vector length");
    const auto len = static_cast<std::size_t>(len_raw);
    if (len_raw < 0.0 || len_raw != static_cast<double>(len) ||
        pos + len > flat.size()) {
      throw std::invalid_argument(std::string(what) + ": bad vector length");
    }
    v.assign(flat.begin() + static_cast<std::ptrdiff_t>(pos),
             flat.begin() + static_cast<std::ptrdiff_t>(pos + len));
    pos += len;
  }
  return vecs;
}

void check_consumed(std::span<const double> flat, std::size_t pos,
                    const char *what) {
  if (pos != flat.size()) {
    throw std::invalid_argument(std::string(what) + ": trailing state bytes");
  }
}

}  // namespace

void Sgd::step(std::span<Param *const> params) {
  ensure_state(velocity_, params);
  for (std::size_t i = 0; i < params.size(); ++i) {
    Param &p = *params[i];
    auto value = p.value.flat();
    auto grad = p.grad.flat();
    auto &vel = velocity_[i];
    for (std::size_t j = 0; j < value.size(); ++j) {
      double g = grad[j] + weight_decay_ * value[j];
      vel[j] = momentum_ * vel[j] + g;
      value[j] -= lr_ * vel[j];
    }
    p.zero_grad();
  }
}

std::vector<double> Sgd::save_state() const {
  std::vector<double> flat;
  encode_vectors(velocity_, flat);
  return flat;
}

void Sgd::load_state(std::span<const double> flat) {
  std::size_t pos = 0;
  auto velocity = decode_vectors(flat, pos, "Sgd::load_state");
  check_consumed(flat, pos, "Sgd::load_state");
  velocity_ = std::move(velocity);
}

void Adam::step(std::span<Param *const> params) {
  ensure_state(m_, params);
  ensure_state(v_, params);
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t i = 0; i < params.size(); ++i) {
    Param &p = *params[i];
    auto value = p.value.flat();
    auto grad = p.grad.flat();
    auto &m = m_[i];
    auto &v = v_[i];
    for (std::size_t j = 0; j < value.size(); ++j) {
      const double g = grad[j] + weight_decay_ * value[j];
      m[j] = beta1_ * m[j] + (1.0 - beta1_) * g;
      v[j] = beta2_ * v[j] + (1.0 - beta2_) * g * g;
      const double mhat = m[j] / bc1;
      const double vhat = v[j] / bc2;
      value[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
    p.zero_grad();
  }
}

std::vector<double> Adam::save_state() const {
  std::vector<double> flat;
  flat.push_back(static_cast<double>(t_));
  encode_vectors(m_, flat);
  encode_vectors(v_, flat);
  return flat;
}

void Adam::load_state(std::span<const double> flat) {
  if (flat.empty()) {
    throw std::invalid_argument("Adam::load_state: truncated state (t)");
  }
  const double t_raw = flat[0];
  if (t_raw < 0.0 ||
      t_raw != static_cast<double>(static_cast<std::size_t>(t_raw))) {
    throw std::invalid_argument("Adam::load_state: bad step count");
  }
  std::size_t pos = 1;
  auto m = decode_vectors(flat, pos, "Adam::load_state");
  auto v = decode_vectors(flat, pos, "Adam::load_state");
  check_consumed(flat, pos, "Adam::load_state");
  if (m.size() != v.size()) {
    throw std::invalid_argument("Adam::load_state: m/v vector count mismatch");
  }
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (m[i].size() != v[i].size()) {
      throw std::invalid_argument("Adam::load_state: m/v length mismatch");
    }
  }
  t_ = static_cast<std::size_t>(t_raw);
  m_ = std::move(m);
  v_ = std::move(v);
}

double clip_grad_norm(std::span<Param *const> params, double max_norm) {
  double total = 0.0;
  for (const Param *p : params) {
    for (double g : p->grad.flat()) total += g * g;
  }
  const double norm = std::sqrt(total);
  if (norm > max_norm && norm > 0.0) {
    const double scale = max_norm / norm;
    for (Param *p : params) {
      for (auto &g : p->grad.flat()) g *= scale;
    }
  }
  return norm;
}

}  // namespace treu::nn
