#include "treu/nn/attention.hpp"

#include <cmath>
#include <stdexcept>

#include "treu/tensor/kernels.hpp"

namespace treu::nn {
namespace {

// Extract head h columns [h*hd, (h+1)*hd) as an (n x hd) matrix.
tensor::Matrix head_slice(const tensor::Matrix &m, std::size_t h,
                          std::size_t hd) {
  tensor::Matrix out(m.rows(), hd);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < hd; ++c) out(r, c) = m(r, h * hd + c);
  }
  return out;
}

void head_write(tensor::Matrix &dst, const tensor::Matrix &src, std::size_t h,
                std::size_t hd) {
  for (std::size_t r = 0; r < src.rows(); ++r) {
    for (std::size_t c = 0; c < hd; ++c) dst(r, h * hd + c) = src(r, c);
  }
}

void head_add(tensor::Matrix &dst, const tensor::Matrix &src, std::size_t h,
              std::size_t hd) {
  for (std::size_t r = 0; r < src.rows(); ++r) {
    for (std::size_t c = 0; c < hd; ++c) dst(r, h * hd + c) += src(r, c);
  }
}

void softmax_rows(tensor::Matrix &m) {
  for (std::size_t r = 0; r < m.rows(); ++r) {
    auto row = m.row(r);
    double mx = row[0];
    for (double v : row) mx = std::max(mx, v);
    double sum = 0.0;
    for (auto &v : row) {
      v = std::exp(v - mx);
      sum += v;
    }
    for (auto &v : row) v /= sum;
  }
}

}  // namespace

MultiHeadAttention::MultiHeadAttention(std::size_t model_dim,
                                       std::size_t heads, core::Rng &rng)
    : model_dim_(model_dim),
      heads_(heads),
      head_dim_(heads == 0 ? 0 : model_dim / heads),
      wq_(tensor::Matrix::random_normal(model_dim, model_dim, rng,
                                        std::sqrt(1.0 / static_cast<double>(model_dim)))),
      wk_(tensor::Matrix::random_normal(model_dim, model_dim, rng,
                                        std::sqrt(1.0 / static_cast<double>(model_dim)))),
      wv_(tensor::Matrix::random_normal(model_dim, model_dim, rng,
                                        std::sqrt(1.0 / static_cast<double>(model_dim)))),
      wo_(tensor::Matrix::random_normal(model_dim, model_dim, rng,
                                        std::sqrt(1.0 / static_cast<double>(model_dim)))) {
  if (heads == 0 || model_dim % heads != 0) {
    throw std::invalid_argument("MultiHeadAttention: heads must divide dim");
  }
}

tensor::Matrix MultiHeadAttention::forward(const tensor::Matrix &x) {
  if (x.cols() != model_dim_) {
    throw std::invalid_argument("MultiHeadAttention::forward: dim mismatch");
  }
  x_ = x;
  const tensor::KernelParams p = tensor::Kernel::fast_params();
  auto &pool = tensor::Kernel::default_pool();
  q_ = tensor::Kernel::matmul(x, wq_.value, p, pool);
  k_ = tensor::Kernel::matmul(x, wk_.value, p, pool);
  v_ = tensor::Kernel::matmul(x, wv_.value, p, pool);
  const std::size_t n = x.rows();
  concat_ = tensor::Matrix(n, model_dim_, 0.0);
  attn_.assign(heads_, tensor::Matrix());
  const double scale = 1.0 / std::sqrt(static_cast<double>(head_dim_));
  for (std::size_t h = 0; h < heads_; ++h) {
    const tensor::Matrix qh = head_slice(q_, h, head_dim_);
    const tensor::Matrix kh = head_slice(k_, h, head_dim_);
    const tensor::Matrix vh = head_slice(v_, h, head_dim_);
    tensor::Matrix scores =
        tensor::Kernel::matmul_transposed(qh, kh, p, pool);  // n x n
    scores *= scale;
    softmax_rows(scores);
    attn_[h] = scores;
    const tensor::Matrix oh =
        tensor::Kernel::matmul(scores, vh, p, pool);  // n x hd
    head_write(concat_, oh, h, head_dim_);
  }
  return tensor::Kernel::matmul(concat_, wo_.value, p, pool);
}

tensor::Matrix MultiHeadAttention::backward(const tensor::Matrix &grad_out) {
  const std::size_t n = x_.rows();
  // Output projection.
  wo_.grad += tensor::matmul_atb(concat_, grad_out);
  const tensor::Matrix dconcat = tensor::matmul_transposed(grad_out, wo_.value);

  tensor::Matrix dq(n, model_dim_, 0.0);
  tensor::Matrix dk(n, model_dim_, 0.0);
  tensor::Matrix dv(n, model_dim_, 0.0);
  const double scale = 1.0 / std::sqrt(static_cast<double>(head_dim_));

  for (std::size_t h = 0; h < heads_; ++h) {
    const tensor::Matrix qh = head_slice(q_, h, head_dim_);
    const tensor::Matrix kh = head_slice(k_, h, head_dim_);
    const tensor::Matrix vh = head_slice(v_, h, head_dim_);
    const tensor::Matrix doh = head_slice(dconcat, h, head_dim_);
    const tensor::Matrix &a = attn_[h];

    // dV_h = A^T dO_h.
    const tensor::Matrix dvh = tensor::matmul_atb(a, doh);
    // dA = dO_h V_h^T.
    const tensor::Matrix da = tensor::matmul_transposed(doh, vh);
    // Softmax backward per row: dS = A ∘ (dA - sum(dA ∘ A)).
    tensor::Matrix ds(n, n);
    for (std::size_t r = 0; r < n; ++r) {
      double dot = 0.0;
      for (std::size_t c = 0; c < n; ++c) dot += da(r, c) * a(r, c);
      for (std::size_t c = 0; c < n; ++c) {
        ds(r, c) = a(r, c) * (da(r, c) - dot);
      }
    }
    ds *= scale;
    // dQ_h = dS K_h ; dK_h = dS^T Q_h.
    const tensor::Matrix dqh = tensor::matmul(ds, kh);
    const tensor::Matrix dkh = tensor::matmul_atb(ds, qh);
    head_add(dq, dqh, h, head_dim_);
    head_add(dk, dkh, h, head_dim_);
    head_add(dv, dvh, h, head_dim_);
  }

  wq_.grad += tensor::matmul_atb(x_, dq);
  wk_.grad += tensor::matmul_atb(x_, dk);
  wv_.grad += tensor::matmul_atb(x_, dv);

  tensor::Matrix dx = tensor::matmul_transposed(dq, wq_.value);
  dx += tensor::matmul_transposed(dk, wk_.value);
  dx += tensor::matmul_transposed(dv, wv_.value);
  return dx;
}

TransformerBlock::TransformerBlock(std::size_t model_dim, std::size_t heads,
                                   std::size_t ff_dim, core::Rng &rng)
    : ln1_(model_dim),
      mha_(model_dim, heads, rng),
      ln2_(model_dim),
      ff1_(model_dim, ff_dim, rng),
      ff2_(ff_dim, model_dim, rng) {}

tensor::Matrix TransformerBlock::forward(const tensor::Matrix &x) {
  tensor::Matrix h = x + mha_.forward(ln1_.forward(x));
  tensor::Matrix y = h + ff2_.forward(relu_.forward(ff1_.forward(ln2_.forward(h))));
  return y;
}

tensor::Matrix TransformerBlock::backward(const tensor::Matrix &grad_out) {
  // y = h + FFN(LN2(h)).
  tensor::Matrix dh =
      grad_out +
      ln2_.backward(ff1_.backward(relu_.backward(ff2_.backward(grad_out))));
  // h = x + MHA(LN1(x)).
  tensor::Matrix dx = dh + ln1_.backward(mha_.backward(dh));
  return dx;
}

std::vector<Param *> TransformerBlock::params() {
  std::vector<Param *> out;
  for (Param *p : mha_.params()) out.push_back(p);
  for (Param *p : ln1_.params()) out.push_back(p);
  for (Param *p : ln2_.params()) out.push_back(p);
  for (Param *p : ff1_.params()) out.push_back(p);
  for (Param *p : ff2_.params()) out.push_back(p);
  return out;
}

}  // namespace treu::nn
