#include "treu/nn/conv.hpp"

#include <cmath>
#include <span>
#include <stdexcept>

#include "treu/tensor/kernels.hpp"

namespace treu::nn {

Conv1dSeq::Conv1dSeq(std::size_t in_dim, std::size_t filters,
                     std::size_t width, core::Rng &rng)
    : in_dim_(in_dim),
      filters_(filters),
      width_(width),
      w_(tensor::Matrix::random_normal(
          filters, width * in_dim, rng,
          std::sqrt(2.0 / static_cast<double>(width * in_dim)))),
      b_(tensor::Matrix(1, filters, 0.0)) {
  if (width == 0 || in_dim == 0 || filters == 0) {
    throw std::invalid_argument("Conv1dSeq: zero-sized configuration");
  }
}

tensor::Matrix Conv1dSeq::forward(const tensor::Matrix &x) {
  if (x.cols() != in_dim_ || x.rows() < width_) {
    throw std::invalid_argument("Conv1dSeq::forward: bad input shape");
  }
  input_ = x;
  const std::size_t out_len = x.rows() - width_ + 1;
  const tensor::KernelParams p = tensor::Kernel::fast_params();
  auto &pool = tensor::Kernel::default_pool();
  tensor::Matrix y(out_len, filters_);
  for (std::size_t t = 0; t < out_len; ++t) {
    // The window rows [t, t+width) are contiguous in memory because the
    // matrix is row-major: each output position is one matvec of the
    // filter bank against the flattened window.
    const std::span<const double> window(x.row(t).data(), width_ * in_dim_);
    const std::vector<double> s = tensor::Kernel::matvec(w_.value, window, p, pool);
    for (std::size_t f = 0; f < filters_; ++f) y(t, f) = s[f] + b_.value(0, f);
  }
  return y;
}

tensor::Matrix Conv1dSeq::backward(const tensor::Matrix &grad_out) {
  const std::size_t out_len = grad_out.rows();
  tensor::Matrix dx(input_.rows(), in_dim_, 0.0);
  for (std::size_t t = 0; t < out_len; ++t) {
    const double *window = input_.row(t).data();
    double *dwindow = dx.row(t).data();
    for (std::size_t f = 0; f < filters_; ++f) {
      const double g = grad_out(t, f);
      if (g == 0.0) continue;
      const double *wf = w_.value.row(f).data();
      double *dwf = w_.grad.row(f).data();
      for (std::size_t i = 0; i < width_ * in_dim_; ++i) {
        dwf[i] += g * window[i];
        dwindow[i] += g * wf[i];
      }
      b_.grad(0, f) += g;
    }
  }
  return dx;
}

tensor::Matrix GlobalMaxPool::forward(const tensor::Matrix &x) {
  rows_ = x.rows();
  argmax_.assign(x.cols(), 0);
  tensor::Matrix y(1, x.cols());
  for (std::size_t c = 0; c < x.cols(); ++c) {
    double best = x(0, c);
    std::size_t arg = 0;
    for (std::size_t r = 1; r < x.rows(); ++r) {
      if (x(r, c) > best) {
        best = x(r, c);
        arg = r;
      }
    }
    y(0, c) = best;
    argmax_[c] = arg;
  }
  return y;
}

tensor::Matrix GlobalMaxPool::backward(const tensor::Matrix &grad_out) {
  tensor::Matrix g(rows_, grad_out.cols(), 0.0);
  for (std::size_t c = 0; c < grad_out.cols(); ++c) {
    g(argmax_[c], c) = grad_out(0, c);
  }
  return g;
}

}  // namespace treu::nn
