#include "treu/nn/spatial.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace treu::nn {

Conv2d3::Conv2d3(std::size_t in_channels, std::size_t out_channels,
                 std::size_t ksize, core::Rng &rng)
    : cin_(in_channels),
      cout_(out_channels),
      k_(ksize),
      w_(tensor::Matrix::random_normal(
          out_channels, in_channels * ksize * ksize, rng,
          std::sqrt(2.0 / static_cast<double>(in_channels * ksize * ksize)))),
      b_(tensor::Matrix(1, out_channels, 0.0)) {
  if (ksize % 2 == 0) {
    throw std::invalid_argument("Conv2d3: kernel size must be odd (same pad)");
  }
}

tensor::Tensor3 Conv2d3::forward(const tensor::Tensor3 &x) {
  if (x.channels() != cin_) {
    throw std::invalid_argument("Conv2d3::forward: channel mismatch");
  }
  input_ = x;
  const std::size_t h = x.height(), w = x.width();
  const std::ptrdiff_t pad = static_cast<std::ptrdiff_t>(k_ / 2);
  tensor::Tensor3 y(cout_, h, w, 0.0);
  for (std::size_t f = 0; f < cout_; ++f) {
    const double *wf = w_.value.row(f).data();
    for (std::size_t oy = 0; oy < h; ++oy) {
      for (std::size_t ox = 0; ox < w; ++ox) {
        double s = b_.value(0, f);
        std::size_t wi = 0;
        for (std::size_t c = 0; c < cin_; ++c) {
          for (std::size_t ky = 0; ky < k_; ++ky) {
            const std::ptrdiff_t iy =
                static_cast<std::ptrdiff_t>(oy + ky) - pad;
            for (std::size_t kx = 0; kx < k_; ++kx, ++wi) {
              const std::ptrdiff_t ix =
                  static_cast<std::ptrdiff_t>(ox + kx) - pad;
              if (iy < 0 || ix < 0 ||
                  iy >= static_cast<std::ptrdiff_t>(h) ||
                  ix >= static_cast<std::ptrdiff_t>(w)) {
                continue;  // zero padding
              }
              s += x(c, static_cast<std::size_t>(iy),
                     static_cast<std::size_t>(ix)) *
                   wf[wi];
            }
          }
        }
        y(f, oy, ox) = s;
      }
    }
  }
  return y;
}

tensor::Tensor3 Conv2d3::backward(const tensor::Tensor3 &grad_out) {
  const std::size_t h = input_.height(), w = input_.width();
  const std::ptrdiff_t pad = static_cast<std::ptrdiff_t>(k_ / 2);
  tensor::Tensor3 dx(cin_, h, w, 0.0);
  for (std::size_t f = 0; f < cout_; ++f) {
    const double *wf = w_.value.row(f).data();
    double *dwf = w_.grad.row(f).data();
    double db = 0.0;
    for (std::size_t oy = 0; oy < h; ++oy) {
      for (std::size_t ox = 0; ox < w; ++ox) {
        const double g = grad_out(f, oy, ox);
        if (g == 0.0) continue;
        db += g;
        std::size_t wi = 0;
        for (std::size_t c = 0; c < cin_; ++c) {
          for (std::size_t ky = 0; ky < k_; ++ky) {
            const std::ptrdiff_t iy =
                static_cast<std::ptrdiff_t>(oy + ky) - pad;
            for (std::size_t kx = 0; kx < k_; ++kx, ++wi) {
              const std::ptrdiff_t ix =
                  static_cast<std::ptrdiff_t>(ox + kx) - pad;
              if (iy < 0 || ix < 0 ||
                  iy >= static_cast<std::ptrdiff_t>(h) ||
                  ix >= static_cast<std::ptrdiff_t>(w)) {
                continue;
              }
              const auto uy = static_cast<std::size_t>(iy);
              const auto ux = static_cast<std::size_t>(ix);
              dwf[wi] += g * input_(c, uy, ux);
              dx(c, uy, ux) += g * wf[wi];
            }
          }
        }
      }
    }
    b_.grad(0, f) += db;
  }
  return dx;
}

tensor::Tensor3 MaxPool2x2::forward(const tensor::Tensor3 &x) {
  in_h_ = x.height();
  in_w_ = x.width();
  const std::size_t oh = in_h_ / 2, ow = in_w_ / 2;
  tensor::Tensor3 y(x.channels(), oh, ow, 0.0);
  argmax_.assign(x.channels() * oh * ow, 0);
  std::size_t out_i = 0;
  for (std::size_t c = 0; c < x.channels(); ++c) {
    for (std::size_t oy = 0; oy < oh; ++oy) {
      for (std::size_t ox = 0; ox < ow; ++ox, ++out_i) {
        double best = -std::numeric_limits<double>::infinity();
        std::size_t best_flat = 0;
        for (std::size_t dy = 0; dy < 2; ++dy) {
          for (std::size_t dx = 0; dx < 2; ++dx) {
            const std::size_t iy = 2 * oy + dy;
            const std::size_t ix = 2 * ox + dx;
            const double v = x(c, iy, ix);
            if (v > best) {
              best = v;
              best_flat = (c * in_h_ + iy) * in_w_ + ix;
            }
          }
        }
        y(c, oy, ox) = best;
        argmax_[out_i] = best_flat;
      }
    }
  }
  return y;
}

tensor::Tensor3 MaxPool2x2::backward(const tensor::Tensor3 &grad_out) {
  tensor::Tensor3 dx(grad_out.channels(), in_h_, in_w_, 0.0);
  std::size_t out_i = 0;
  for (std::size_t c = 0; c < grad_out.channels(); ++c) {
    for (std::size_t oy = 0; oy < grad_out.height(); ++oy) {
      for (std::size_t ox = 0; ox < grad_out.width(); ++ox, ++out_i) {
        dx.flat()[argmax_[out_i]] += grad_out(c, oy, ox);
      }
    }
  }
  return dx;
}

tensor::Tensor3 Upsample2x::forward(const tensor::Tensor3 &x) {
  in_h_ = x.height();
  in_w_ = x.width();
  tensor::Tensor3 y(x.channels(), in_h_ * 2, in_w_ * 2, 0.0);
  for (std::size_t c = 0; c < x.channels(); ++c) {
    for (std::size_t iy = 0; iy < in_h_; ++iy) {
      for (std::size_t ix = 0; ix < in_w_; ++ix) {
        const double v = x(c, iy, ix);
        y(c, 2 * iy, 2 * ix) = v;
        y(c, 2 * iy, 2 * ix + 1) = v;
        y(c, 2 * iy + 1, 2 * ix) = v;
        y(c, 2 * iy + 1, 2 * ix + 1) = v;
      }
    }
  }
  return y;
}

tensor::Tensor3 Upsample2x::backward(const tensor::Tensor3 &grad_out) {
  tensor::Tensor3 dx(grad_out.channels(), in_h_, in_w_, 0.0);
  for (std::size_t c = 0; c < grad_out.channels(); ++c) {
    for (std::size_t iy = 0; iy < in_h_; ++iy) {
      for (std::size_t ix = 0; ix < in_w_; ++ix) {
        dx(c, iy, ix) = grad_out(c, 2 * iy, 2 * ix) +
                        grad_out(c, 2 * iy, 2 * ix + 1) +
                        grad_out(c, 2 * iy + 1, 2 * ix) +
                        grad_out(c, 2 * iy + 1, 2 * ix + 1);
      }
    }
  }
  return dx;
}

tensor::Tensor3 ReLU3::forward(const tensor::Tensor3 &x) {
  input_ = x;
  tensor::Tensor3 y = x;
  for (auto &v : y.flat()) v = v > 0.0 ? v : 0.0;
  return y;
}

tensor::Tensor3 ReLU3::backward(const tensor::Tensor3 &grad_out) {
  tensor::Tensor3 g = grad_out;
  auto gi = g.flat();
  const auto xi = input_.flat();
  for (std::size_t i = 0; i < gi.size(); ++i) {
    if (xi[i] <= 0.0) gi[i] = 0.0;
  }
  return g;
}

tensor::Tensor3 Sigmoid3::forward(const tensor::Tensor3 &x) {
  output_ = x;
  for (auto &v : output_.flat()) v = 1.0 / (1.0 + std::exp(-v));
  return output_;
}

tensor::Tensor3 Sigmoid3::backward(const tensor::Tensor3 &grad_out) {
  tensor::Tensor3 g = grad_out;
  auto gi = g.flat();
  const auto yi = output_.flat();
  for (std::size_t i = 0; i < gi.size(); ++i) gi[i] *= yi[i] * (1.0 - yi[i]);
  return g;
}

}  // namespace treu::nn
