#include "treu/nn/layers.hpp"

#include <cmath>
#include <stdexcept>

#include "treu/tensor/kernels.hpp"

namespace treu::nn {

Dense::Dense(std::size_t in_features, std::size_t out_features, core::Rng &rng)
    : w_(tensor::Matrix::random_normal(
          in_features, out_features, rng,
          std::sqrt(2.0 / static_cast<double>(in_features)))),
      b_(tensor::Matrix(1, out_features, 0.0)) {}

tensor::Matrix Dense::forward(const tensor::Matrix &x) {
  if (x.cols() != w_.value.rows()) {
    throw std::invalid_argument("Dense::forward: feature dim mismatch");
  }
  input_ = x;
  // x @ W through the dispatch surface, with the zero-skip retained:
  // post-ReLU activations and sparse presence features (the n-gram
  // classifier) are mostly zeros, and skipping them turns a dense
  // O(in*out) row into O(nnz*out).
  tensor::KernelParams p = tensor::Kernel::fast_params();
  p.skip_zero_a = true;
  tensor::Matrix y =
      tensor::Kernel::matmul(x, w_.value, p, tensor::Kernel::default_pool());
  const auto brow = b_.value.row(0);
  for (std::size_t r = 0; r < y.rows(); ++r) {
    auto yrow = y.row(r);
    for (std::size_t c = 0; c < yrow.size(); ++c) yrow[c] += brow[c];
  }
  return y;
}

tensor::Matrix Dense::backward(const tensor::Matrix &grad_out) {
  // dW += x^T g ; db += sum_rows g ; dx = g W^T.
  w_.grad += tensor::matmul_atb(input_, grad_out);
  for (std::size_t r = 0; r < grad_out.rows(); ++r) {
    for (std::size_t c = 0; c < grad_out.cols(); ++c) {
      b_.grad(0, c) += grad_out(r, c);
    }
  }
  return tensor::matmul_transposed(grad_out, w_.value);
}

tensor::Matrix ReLU::forward(const tensor::Matrix &x) {
  input_ = x;
  tensor::Matrix y = x;
  for (auto &v : y.flat()) v = v > 0.0 ? v : 0.0;
  return y;
}

tensor::Matrix ReLU::backward(const tensor::Matrix &grad_out) {
  tensor::Matrix g = grad_out;
  auto gi = g.flat();
  const auto xi = input_.flat();
  for (std::size_t i = 0; i < gi.size(); ++i) {
    if (xi[i] <= 0.0) gi[i] = 0.0;
  }
  return g;
}

tensor::Matrix Tanh::forward(const tensor::Matrix &x) {
  output_ = x;
  for (auto &v : output_.flat()) v = std::tanh(v);
  return output_;
}

tensor::Matrix Tanh::backward(const tensor::Matrix &grad_out) {
  tensor::Matrix g = grad_out;
  auto gi = g.flat();
  const auto yi = output_.flat();
  for (std::size_t i = 0; i < gi.size(); ++i) gi[i] *= 1.0 - yi[i] * yi[i];
  return g;
}

tensor::Matrix Sigmoid::forward(const tensor::Matrix &x) {
  output_ = x;
  for (auto &v : output_.flat()) v = 1.0 / (1.0 + std::exp(-v));
  return output_;
}

tensor::Matrix Sigmoid::backward(const tensor::Matrix &grad_out) {
  tensor::Matrix g = grad_out;
  auto gi = g.flat();
  const auto yi = output_.flat();
  for (std::size_t i = 0; i < gi.size(); ++i) gi[i] *= yi[i] * (1.0 - yi[i]);
  return g;
}

Dropout::Dropout(double rate, core::Rng &rng)
    : rate_(rate), rng_(rng.split(0xD20)) {
  if (rate < 0.0 || rate >= 1.0) {
    throw std::invalid_argument("Dropout: rate must be in [0, 1)");
  }
}

tensor::Matrix Dropout::forward(const tensor::Matrix &x) {
  if (!training_ || rate_ == 0.0) {
    mask_ = tensor::Matrix();
    return x;
  }
  mask_ = tensor::Matrix(x.rows(), x.cols());
  tensor::Matrix y = x;
  auto mi = mask_.flat();
  auto yi = y.flat();
  const double scale = 1.0 / (1.0 - rate_);
  for (std::size_t i = 0; i < yi.size(); ++i) {
    const bool keep = !rng_.bernoulli(rate_);
    mi[i] = keep ? scale : 0.0;
    yi[i] *= mi[i];
  }
  return y;
}

tensor::Matrix Dropout::backward(const tensor::Matrix &grad_out) {
  if (mask_.empty()) return grad_out;
  tensor::Matrix g = grad_out;
  auto gi = g.flat();
  const auto mi = mask_.flat();
  for (std::size_t i = 0; i < gi.size(); ++i) gi[i] *= mi[i];
  return g;
}

LayerNorm::LayerNorm(std::size_t features, double eps)
    : eps_(eps),
      gain_(tensor::Matrix(1, features, 1.0)),
      bias_(tensor::Matrix(1, features, 0.0)) {}

tensor::Matrix LayerNorm::forward(const tensor::Matrix &x) {
  const std::size_t d = x.cols();
  if (d != gain_.value.cols()) {
    throw std::invalid_argument("LayerNorm::forward: feature dim mismatch");
  }
  normalized_ = tensor::Matrix(x.rows(), d);
  inv_std_.assign(x.rows(), 0.0);
  tensor::Matrix y(x.rows(), d);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto row = x.row(r);
    double mean = 0.0;
    for (double v : row) mean += v;
    mean /= static_cast<double>(d);
    double var = 0.0;
    for (double v : row) var += (v - mean) * (v - mean);
    var /= static_cast<double>(d);
    const double inv = 1.0 / std::sqrt(var + eps_);
    inv_std_[r] = inv;
    for (std::size_t c = 0; c < d; ++c) {
      normalized_(r, c) = (row[c] - mean) * inv;
      y(r, c) = normalized_(r, c) * gain_.value(0, c) + bias_.value(0, c);
    }
  }
  return y;
}

tensor::Matrix LayerNorm::backward(const tensor::Matrix &grad_out) {
  const std::size_t d = grad_out.cols();
  tensor::Matrix dx(grad_out.rows(), d);
  for (std::size_t r = 0; r < grad_out.rows(); ++r) {
    // dgamma/dbeta accumulation.
    for (std::size_t c = 0; c < d; ++c) {
      gain_.grad(0, c) += grad_out(r, c) * normalized_(r, c);
      bias_.grad(0, c) += grad_out(r, c);
    }
    // dxhat = g * gamma; dx = inv_std * (dxhat - mean(dxhat)
    //         - xhat * mean(dxhat * xhat)).
    double mean_dxhat = 0.0;
    double mean_dxhat_xhat = 0.0;
    for (std::size_t c = 0; c < d; ++c) {
      const double dxhat = grad_out(r, c) * gain_.value(0, c);
      mean_dxhat += dxhat;
      mean_dxhat_xhat += dxhat * normalized_(r, c);
    }
    mean_dxhat /= static_cast<double>(d);
    mean_dxhat_xhat /= static_cast<double>(d);
    for (std::size_t c = 0; c < d; ++c) {
      const double dxhat = grad_out(r, c) * gain_.value(0, c);
      dx(r, c) = inv_std_[r] *
                 (dxhat - mean_dxhat - normalized_(r, c) * mean_dxhat_xhat);
    }
  }
  return dx;
}

tensor::Matrix MeanPool::forward(const tensor::Matrix &x) {
  rows_ = x.rows();
  tensor::Matrix y(1, x.cols(), 0.0);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) y(0, c) += x(r, c);
  }
  if (rows_ > 0) y *= 1.0 / static_cast<double>(rows_);
  return y;
}

tensor::Matrix MeanPool::backward(const tensor::Matrix &grad_out) {
  tensor::Matrix g(rows_, grad_out.cols());
  const double scale = rows_ > 0 ? 1.0 / static_cast<double>(rows_) : 0.0;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < grad_out.cols(); ++c) {
      g(r, c) = grad_out(0, c) * scale;
    }
  }
  return g;
}

PositionalEncoding::PositionalEncoding(std::size_t max_len, std::size_t dim)
    : table_(max_len, dim) {
  for (std::size_t pos = 0; pos < max_len; ++pos) {
    for (std::size_t i = 0; i < dim; ++i) {
      const double exponent =
          static_cast<double>(2 * (i / 2)) / static_cast<double>(dim);
      const double angle =
          static_cast<double>(pos) / std::pow(10000.0, exponent);
      table_(pos, i) = (i % 2 == 0) ? std::sin(angle) : std::cos(angle);
    }
  }
}

tensor::Matrix PositionalEncoding::forward(const tensor::Matrix &x) {
  if (x.rows() > table_.rows() || x.cols() != table_.cols()) {
    throw std::invalid_argument("PositionalEncoding: shape exceeds table");
  }
  tensor::Matrix y = x;
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) y(r, c) += table_(r, c);
  }
  return y;
}

tensor::Matrix PositionalEncoding::backward(const tensor::Matrix &grad_out) {
  return grad_out;  // additive constant
}

}  // namespace treu::nn
