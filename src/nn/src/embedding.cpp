#include "treu/nn/embedding.hpp"

#include <cmath>
#include <stdexcept>

namespace treu::nn {

Embedding::Embedding(std::size_t vocab_size, std::size_t dim, core::Rng &rng)
    : table_(tensor::Matrix::random_normal(
          vocab_size, dim, rng, std::sqrt(1.0 / static_cast<double>(dim)))) {}

tensor::Matrix Embedding::forward(std::span<const std::uint32_t> tokens) {
  last_tokens_.assign(tokens.begin(), tokens.end());
  tensor::Matrix out(tokens.size(), dim());
  for (std::size_t t = 0; t < tokens.size(); ++t) {
    if (tokens[t] >= vocab_size()) {
      throw std::out_of_range("Embedding::forward: token id out of range");
    }
    const auto row = table_.value.row(tokens[t]);
    auto dst = out.row(t);
    for (std::size_t c = 0; c < row.size(); ++c) dst[c] = row[c];
  }
  return out;
}

void Embedding::backward(const tensor::Matrix &grad_out) {
  if (grad_out.rows() != last_tokens_.size() || grad_out.cols() != dim()) {
    throw std::invalid_argument("Embedding::backward: shape mismatch");
  }
  for (std::size_t t = 0; t < last_tokens_.size(); ++t) {
    auto g = table_.grad.row(last_tokens_[t]);
    const auto src = grad_out.row(t);
    for (std::size_t c = 0; c < g.size(); ++c) g[c] += src[c];
  }
}

}  // namespace treu::nn
