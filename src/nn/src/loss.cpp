#include "treu/nn/loss.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace treu::nn {

tensor::Matrix softmax(const tensor::Matrix &logits) {
  tensor::Matrix p = logits;
  for (std::size_t r = 0; r < p.rows(); ++r) {
    auto row = p.row(r);
    double mx = row[0];
    for (double v : row) mx = std::max(mx, v);
    double sum = 0.0;
    for (auto &v : row) {
      v = std::exp(v - mx);
      sum += v;
    }
    for (auto &v : row) v /= sum;
  }
  return p;
}

LossResult softmax_cross_entropy(const tensor::Matrix &logits,
                                 std::span<const std::size_t> labels) {
  if (logits.rows() != labels.size()) {
    throw std::invalid_argument("softmax_cross_entropy: batch size mismatch");
  }
  LossResult out;
  out.grad = softmax(logits);
  const double inv_batch = 1.0 / static_cast<double>(logits.rows());
  double loss = 0.0;
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    if (labels[r] >= logits.cols()) {
      throw std::out_of_range("softmax_cross_entropy: label out of range");
    }
    const double p = std::max(out.grad(r, labels[r]), kProbEpsilon);
    loss -= std::log(p);
    out.grad(r, labels[r]) -= 1.0;
  }
  out.grad *= inv_batch;
  out.loss = loss * inv_batch;
  return out;
}

LossResult mse(const tensor::Matrix &pred, const tensor::Matrix &target) {
  if (pred.rows() != target.rows() || pred.cols() != target.cols()) {
    throw std::invalid_argument("mse: shape mismatch");
  }
  LossResult out;
  out.grad = pred;
  out.grad -= target;
  double loss = 0.0;
  for (double g : out.grad.flat()) loss += g * g;
  const double inv = 1.0 / static_cast<double>(pred.size());
  out.loss = loss * inv;
  out.grad *= 2.0 * inv;
  return out;
}

LossResult binary_cross_entropy(const tensor::Matrix &probs,
                                const tensor::Matrix &targets) {
  if (probs.rows() != targets.rows() || probs.cols() != targets.cols()) {
    throw std::invalid_argument("binary_cross_entropy: shape mismatch");
  }
  LossResult out;
  out.grad = tensor::Matrix(probs.rows(), probs.cols());
  double loss = 0.0;
  const double inv = 1.0 / static_cast<double>(probs.size());
  for (std::size_t i = 0; i < probs.size(); ++i) {
    const double p = std::clamp(probs.flat()[i], 1e-12, 1.0 - 1e-12);
    const double t = targets.flat()[i];
    loss -= t * std::log(p) + (1.0 - t) * std::log(1.0 - p);
    out.grad.flat()[i] = (p - t) / (p * (1.0 - p)) * inv;
  }
  out.loss = loss * inv;
  return out;
}

std::vector<std::size_t> argmax_rows(const tensor::Matrix &logits) {
  std::vector<std::size_t> out(logits.rows(), 0);
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    const auto row = logits.row(r);
    std::size_t arg = 0;
    for (std::size_t c = 1; c < row.size(); ++c) {
      if (row[c] > row[arg]) arg = c;
    }
    out[r] = arg;
  }
  return out;
}

double accuracy(const tensor::Matrix &logits,
                std::span<const std::size_t> labels) {
  if (logits.rows() == 0) return 0.0;
  const auto preds = argmax_rows(logits);
  std::size_t correct = 0;
  for (std::size_t r = 0; r < preds.size(); ++r) {
    if (preds[r] == labels[r]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(preds.size());
}

}  // namespace treu::nn
