#include "treu/nn/layer.hpp"

namespace treu::nn {

Sequential &Sequential::add(std::unique_ptr<Layer> layer) {
  layers_.push_back(std::move(layer));
  return *this;
}

tensor::Matrix Sequential::forward(const tensor::Matrix &x) {
  tensor::Matrix h = x;
  for (auto &l : layers_) h = l->forward(h);
  return h;
}

tensor::Matrix Sequential::backward(const tensor::Matrix &grad_out) {
  tensor::Matrix g = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

std::vector<Param *> Sequential::params() {
  std::vector<Param *> out;
  for (auto &l : layers_) {
    for (Param *p : l->params()) out.push_back(p);
  }
  return out;
}

void Sequential::set_training(bool training) {
  for (auto &l : layers_) l->set_training(training);
}

void zero_grads(std::span<Param *const> params) noexcept {
  for (Param *p : params) p->zero_grad();
}

}  // namespace treu::nn
