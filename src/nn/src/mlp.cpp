#include "treu/nn/mlp.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>
#include <stdexcept>

#include "treu/nn/layers.hpp"
#include "treu/obs/obs.hpp"

namespace treu::nn {

Dataset Dataset::subset(std::span<const std::size_t> indices) const {
  Dataset out;
  out.x = tensor::Matrix(indices.size(), x.cols());
  out.y.resize(indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const auto src = x.row(indices[i]);
    auto dst = out.x.row(i);
    for (std::size_t c = 0; c < src.size(); ++c) dst[c] = src[c];
    out.y[i] = y[indices[i]];
  }
  return out;
}

std::pair<Dataset, Dataset> Dataset::split(double train_fraction,
                                           core::Rng &rng) const {
  std::vector<std::size_t> idx(size());
  std::iota(idx.begin(), idx.end(), 0);
  rng.shuffle(idx);
  const std::size_t n_train =
      static_cast<std::size_t>(train_fraction * static_cast<double>(size()));
  const std::span<const std::size_t> all(idx);
  return {subset(all.subspan(0, n_train)), subset(all.subspan(n_train))};
}

std::pair<Dataset, Dataset> Dataset::without_class(std::size_t cls) const {
  std::vector<std::size_t> keep;
  std::vector<std::size_t> removed;
  for (std::size_t i = 0; i < size(); ++i) {
    (y[i] == cls ? removed : keep).push_back(i);
  }
  return {subset(keep), subset(removed)};
}

MlpClassifier::MlpClassifier(std::size_t input_dim,
                             const std::vector<std::size_t> &hidden,
                             std::size_t classes, core::Rng &rng)
    : classes_(classes) {
  std::size_t prev = input_dim;
  for (std::size_t h : hidden) {
    net_.emplace<Dense>(prev, h, rng);
    net_.emplace<ReLU>();
    prev = h;
  }
  net_.emplace<Dense>(prev, classes, rng);
}

tensor::Matrix MlpClassifier::logits(const tensor::Matrix &x) {
  return net_.forward(x);
}

std::vector<ClassScores> MlpClassifier::predict_batch(
    std::span<const std::vector<double>> inputs) {
  std::vector<ClassScores> out;
  if (inputs.empty()) return out;
  const std::size_t dim = inputs.front().size();
  tensor::Matrix x(inputs.size(), dim);
  for (std::size_t r = 0; r < inputs.size(); ++r) {
    if (inputs[r].size() != dim) {
      throw std::invalid_argument("MlpClassifier::predict_batch: ragged batch");
    }
    auto row = x.row(r);
    for (std::size_t c = 0; c < dim; ++c) row[c] = inputs[r][c];
  }
  const tensor::Matrix y = net_.forward(x);
  const std::vector<std::size_t> labels = argmax_rows(y);
  out.reserve(inputs.size());
  for (std::size_t r = 0; r < y.rows(); ++r) {
    const auto row = y.row(r);
    out.push_back({{row.begin(), row.end()}, labels[r]});
  }
  return out;
}

std::string MlpClassifier::weight_hash() {
  const auto p = net_.params();
  return weight_hash_hex(std::span<Param *const>(p.data(), p.size()));
}

std::vector<std::size_t> MlpClassifier::predict(const tensor::Matrix &x) {
  return argmax_rows(logits(x));
}

double MlpClassifier::evaluate(const Dataset &data) {
  if (data.size() == 0) return 0.0;
  return accuracy(logits(data.x), data.y);
}

double MlpClassifier::mean_class_probability(const tensor::Matrix &x,
                                             std::size_t cls) {
  if (x.rows() == 0) return 0.0;
  const tensor::Matrix p = softmax(logits(x));
  double s = 0.0;
  for (std::size_t r = 0; r < p.rows(); ++r) s += p(r, cls);
  return s / static_cast<double>(p.rows());
}

TrainStats MlpClassifier::train(const Dataset &data, const TrainConfig &config,
                                core::Rng &rng, TrainObserver *observer,
                                fault::TrainInjector *injector) {
  TrainStats stats;
  if (data.size() == 0) return stats;
  std::unique_ptr<Optimizer> opt;
  if (config.use_sgd) {
    opt = std::make_unique<Sgd>(config.lr, config.momentum, config.weight_decay);
  } else {
    opt = std::make_unique<Adam>(config.lr, 0.9, 0.999, 1e-8,
                                 config.weight_decay);
  }
  const auto param_list = net_.params();
  const std::span<Param *const> params(param_list.data(), param_list.size());

  StepFns fns;
  fns.forward_backward = [&](std::span<const std::size_t> batch_idx) {
    const Dataset batch = data.subset(batch_idx);
    const tensor::Matrix out = net_.forward(batch.x);
    const LossResult lr = softmax_cross_entropy(out, batch.y);
    net_.backward(lr.grad);
    return lr.loss;
  };
  fns.loss_only = [&](std::span<const std::size_t> batch_idx) {
    const Dataset batch = data.subset(batch_idx);
    return softmax_cross_entropy(net_.forward(batch.x), batch.y).loss;
  };

  StepDriverConfig driver_config;
  driver_config.epochs = config.epochs;
  driver_config.batch_size = config.batch_size;
  driver_config.shuffle = config.shuffle;
  driver_config.grad_clip = config.grad_clip;
  stats.drive =
      run_step_driver(data.size(), driver_config, params, *opt, rng, fns,
                      observer, injector);
  stats.epoch_loss = stats.drive.epoch_loss;
  stats.final_train_accuracy = evaluate(data);
  return stats;
}

double MlpClassifier::step_toward_distribution(const tensor::Matrix &x,
                                               const tensor::Matrix &target_probs,
                                               Optimizer &opt) {
  if (target_probs.rows() != x.rows() || target_probs.cols() != classes_) {
    throw std::invalid_argument(
        "step_toward_distribution: target shape mismatch");
  }
  const tensor::Matrix out = net_.forward(x);
  tensor::Matrix probs = softmax(out);
  // Cross-entropy against a soft target: grad = (softmax - target) / batch.
  double loss = 0.0;
  for (std::size_t r = 0; r < probs.rows(); ++r) {
    for (std::size_t c = 0; c < classes_; ++c) {
      const double p = std::max(probs(r, c), kProbEpsilon);
      loss -= target_probs(r, c) * std::log(p);
    }
  }
  const double inv_batch = 1.0 / static_cast<double>(x.rows());
  probs -= target_probs;
  probs *= inv_batch;
  net_.backward(probs);
  opt.step(net_.params());
  return loss * inv_batch;
}

double MlpClassifier::step_on_batch(const tensor::Matrix &x,
                                    std::span<const std::size_t> y,
                                    Optimizer &opt, double direction) {
  const tensor::Matrix out = net_.forward(x);
  LossResult lr = softmax_cross_entropy(out, y);
  if (direction != 1.0) lr.grad *= direction;
  net_.backward(lr.grad);
  opt.step(net_.params());
  return lr.loss;
}

}  // namespace treu::nn
