#pragma once

// Robust high-dimensional mean estimation (§2.10).
//
// The project reproduced "recent algorithmic improvements for high-
// dimensional robust statistics" whose computational bottlenecks were "in
// linear algebra (SVD), and repetition of randomized algorithms". We
// implement the canonical line-up:
//
//  - empirical mean (the non-robust baseline; error grows ~ eps * sqrt(d)
//    under corruption, which is the phenomenon the theory fixes),
//  - coordinate-wise median and trimmed mean (classical; error still
//    dimension-dependent in the worst case),
//  - geometric median via Weiszfeld iteration,
//  - the spectral *filter* algorithm (Diakonikolas et al. style): iterate
//    {top eigenvector of empirical covariance -> score points by squared
//    projection deviation -> remove the worst tail} until the top
//    eigenvalue certifies the sample, achieving dimension-independent
//    error O(eps * sqrt(log 1/eps)) against the corruption models below.

#include <cstddef>
#include <vector>

#include "treu/core/rng.hpp"
#include "treu/tensor/matrix.hpp"

namespace treu::robust {

/// Sample mean of row observations.
[[nodiscard]] std::vector<double> empirical_mean(const tensor::Matrix &x);

/// Per-coordinate median.
[[nodiscard]] std::vector<double> coordinatewise_median(const tensor::Matrix &x);

/// Per-coordinate trimmed mean (trim fraction from each tail).
[[nodiscard]] std::vector<double> coordinatewise_trimmed_mean(
    const tensor::Matrix &x, double trim);

/// Geometric median by Weiszfeld iteration.
struct WeiszfeldResult {
  std::vector<double> point;
  std::size_t iterations = 0;
  bool converged = false;
};
[[nodiscard]] WeiszfeldResult geometric_median(const tensor::Matrix &x,
                                               double tol = 1e-8,
                                               std::size_t max_iter = 200);

/// Spectral filter for robust mean under eps-corruption.
struct FilterConfig {
  double eps = 0.1;            // assumed corruption fraction
  double threshold_slack = 3.0;  // certify when top eigenvalue < 1 + slack*eps*log(1/eps)
  double removal_fraction = 0.5; // fraction of eps*n removed per round
  std::size_t max_rounds = 50;
};

struct FilterResult {
  std::vector<double> mean;
  std::size_t rounds = 0;
  std::size_t removed = 0;     // points filtered out
  double final_top_eigenvalue = 0.0;
};

/// Assumes identity-covariance inliers (the standard setting). Throws on an
/// empty sample.
[[nodiscard]] FilterResult filter_mean(const tensor::Matrix &x,
                                       const FilterConfig &config = {});

// --- Corruption models -------------------------------------------------------

/// Draw n iid N(true_mean, I_d) rows.
[[nodiscard]] tensor::Matrix gaussian_sample(std::size_t n,
                                             std::span<const double> true_mean,
                                             core::Rng &rng);

/// Replace an eps fraction of rows with a point mass at
/// true_mean + magnitude * direction (a cluster of colluding outliers — the
/// worst case for the empirical mean).
void corrupt_cluster(tensor::Matrix &x, double eps,
                     std::span<const double> true_mean, double magnitude,
                     core::Rng &rng);

/// Replace an eps fraction with a spread of points along one coordinate
/// axis at +-magnitude (defeats naive per-coordinate trimming less, used as
/// a second adversary).
void corrupt_spread(tensor::Matrix &x, double eps,
                    std::span<const double> true_mean, double magnitude,
                    core::Rng &rng);

/// L2 distance between an estimate and the true mean.
[[nodiscard]] double estimation_error(std::span<const double> estimate,
                                      std::span<const double> true_mean);

}  // namespace treu::robust
