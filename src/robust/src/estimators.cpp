#include "treu/robust/estimators.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "treu/core/stats.hpp"
#include "treu/tensor/linalg.hpp"

namespace treu::robust {

std::vector<double> empirical_mean(const tensor::Matrix &x) {
  const std::size_t n = x.rows(), d = x.cols();
  std::vector<double> mean(d, 0.0);
  if (n == 0) return mean;
  for (std::size_t i = 0; i < n; ++i) {
    const auto row = x.row(i);
    for (std::size_t j = 0; j < d; ++j) mean[j] += row[j];
  }
  for (auto &m : mean) m /= static_cast<double>(n);
  return mean;
}

std::vector<double> coordinatewise_median(const tensor::Matrix &x) {
  const std::size_t d = x.cols();
  std::vector<double> out(d, 0.0);
  for (std::size_t j = 0; j < d; ++j) {
    const std::vector<double> col = x.column(j);
    out[j] = core::median(col);
  }
  return out;
}

std::vector<double> coordinatewise_trimmed_mean(const tensor::Matrix &x,
                                                double trim) {
  const std::size_t d = x.cols();
  std::vector<double> out(d, 0.0);
  for (std::size_t j = 0; j < d; ++j) {
    const std::vector<double> col = x.column(j);
    out[j] = core::trimmed_mean(col, trim);
  }
  return out;
}

WeiszfeldResult geometric_median(const tensor::Matrix &x, double tol,
                                 std::size_t max_iter) {
  WeiszfeldResult result;
  const std::size_t n = x.rows(), d = x.cols();
  if (n == 0) throw std::invalid_argument("geometric_median: empty sample");
  result.point = empirical_mean(x);
  for (std::size_t it = 0; it < max_iter; ++it) {
    result.iterations = it + 1;
    std::vector<double> next(d, 0.0);
    double weight_sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const auto row = x.row(i);
      double dist = 0.0;
      for (std::size_t j = 0; j < d; ++j) {
        dist += (row[j] - result.point[j]) * (row[j] - result.point[j]);
      }
      dist = std::sqrt(dist);
      const double w = 1.0 / std::max(dist, 1e-12);
      weight_sum += w;
      for (std::size_t j = 0; j < d; ++j) next[j] += w * row[j];
    }
    for (auto &v : next) v /= weight_sum;
    double delta = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      delta += (next[j] - result.point[j]) * (next[j] - result.point[j]);
    }
    result.point = std::move(next);
    if (std::sqrt(delta) < tol) {
      result.converged = true;
      break;
    }
  }
  return result;
}

FilterResult filter_mean(const tensor::Matrix &x, const FilterConfig &config) {
  const std::size_t n0 = x.rows(), d = x.cols();
  if (n0 == 0) throw std::invalid_argument("filter_mean: empty sample");
  // Active-set filtering: indices still considered inliers.
  std::vector<std::size_t> active(n0);
  std::iota(active.begin(), active.end(), 0);
  FilterResult result;

  const double eps = std::clamp(config.eps, 1e-4, 0.49);
  const double certify =
      1.0 + config.threshold_slack * eps * std::log(1.0 / eps);

  for (std::size_t round = 0; round < config.max_rounds; ++round) {
    result.rounds = round + 1;
    // Mean and covariance of the active set.
    tensor::Matrix sub(active.size(), d);
    for (std::size_t i = 0; i < active.size(); ++i) {
      const auto row = x.row(active[i]);
      for (std::size_t j = 0; j < d; ++j) sub(i, j) = row[j];
    }
    auto [cov, mean] = tensor::covariance(sub);
    const tensor::TopEigen top = tensor::power_iteration(cov);
    result.mean = mean;
    result.final_top_eigenvalue = top.value;

    // Certification: for identity-covariance inliers the corrupted
    // covariance has a large spectral direction iff the outliers still
    // shift the mean.
    if (top.value <= certify) break;
    if (active.size() <= d + 2) break;  // too small to keep filtering

    // Score points by squared deviation along the top eigenvector.
    std::vector<std::pair<double, std::size_t>> scores(active.size());
    for (std::size_t i = 0; i < active.size(); ++i) {
      double proj = 0.0;
      for (std::size_t j = 0; j < d; ++j) {
        proj += (sub(i, j) - mean[j]) * top.vector[j];
      }
      scores[i] = {proj * proj, active[i]};
    }
    std::stable_sort(scores.begin(), scores.end(),
                     [](const auto &a, const auto &b) { return a.first > b.first; });
    // Remove the worst removal_fraction * eps * n0 points this round.
    std::size_t remove = std::max<std::size_t>(
        1, static_cast<std::size_t>(config.removal_fraction * eps *
                                    static_cast<double>(n0)));
    remove = std::min(remove, active.size() - (d + 2));
    std::vector<std::size_t> removed_idx;
    removed_idx.reserve(remove);
    for (std::size_t i = 0; i < remove; ++i) {
      removed_idx.push_back(scores[i].second);
    }
    std::sort(removed_idx.begin(), removed_idx.end());
    std::vector<std::size_t> next_active;
    next_active.reserve(active.size() - remove);
    std::set_difference(active.begin(), active.end(), removed_idx.begin(),
                        removed_idx.end(), std::back_inserter(next_active));
    active = std::move(next_active);
    result.removed += remove;
  }
  return result;
}

tensor::Matrix gaussian_sample(std::size_t n, std::span<const double> true_mean,
                               core::Rng &rng) {
  const std::size_t d = true_mean.size();
  tensor::Matrix x(n, d);
  for (std::size_t i = 0; i < n; ++i) {
    auto row = x.row(i);
    for (std::size_t j = 0; j < d; ++j) row[j] = true_mean[j] + rng.normal();
  }
  return x;
}

void corrupt_cluster(tensor::Matrix &x, double eps,
                     std::span<const double> true_mean, double magnitude,
                     core::Rng &rng) {
  const std::size_t n = x.rows(), d = x.cols();
  const std::size_t k = static_cast<std::size_t>(eps * static_cast<double>(n));
  if (k == 0 || d == 0) return;
  // Random unit direction for the colluding cluster.
  std::vector<double> dir = rng.normal_vector(d);
  double norm = 0.0;
  for (double v : dir) norm += v * v;
  norm = std::sqrt(std::max(norm, 1e-12));
  for (auto &v : dir) v /= norm;
  const auto victims = rng.sample_without_replacement(n, k);
  for (std::size_t idx : victims) {
    auto row = x.row(idx);
    for (std::size_t j = 0; j < d; ++j) {
      row[j] = true_mean[j] + magnitude * dir[j] + 0.1 * rng.normal();
    }
  }
}

void corrupt_spread(tensor::Matrix &x, double eps,
                    std::span<const double> true_mean, double magnitude,
                    core::Rng &rng) {
  const std::size_t n = x.rows(), d = x.cols();
  const std::size_t k = static_cast<std::size_t>(eps * static_cast<double>(n));
  if (k == 0 || d == 0) return;
  const auto victims = rng.sample_without_replacement(n, k);
  for (std::size_t idx : victims) {
    auto row = x.row(idx);
    const std::size_t axis = static_cast<std::size_t>(rng.uniform_index(d));
    const double sign = rng.bernoulli(0.5) ? 1.0 : -1.0;
    for (std::size_t j = 0; j < d; ++j) row[j] = true_mean[j] + rng.normal();
    row[axis] += sign * magnitude;
  }
}

double estimation_error(std::span<const double> estimate,
                        std::span<const double> true_mean) {
  if (estimate.size() != true_mean.size()) {
    throw std::invalid_argument("estimation_error: dimension mismatch");
  }
  double s = 0.0;
  for (std::size_t j = 0; j < estimate.size(); ++j) {
    s += (estimate[j] - true_mean[j]) * (estimate[j] - true_mean[j]);
  }
  return std::sqrt(s);
}

}  // namespace treu::robust
