#include "treu/artifact/triangulate.hpp"

#include <cmath>
#include <stdexcept>

namespace treu::artifact {

TriangulationResult triangulate(std::span<const Evidence> evidence) {
  if (evidence.empty()) {
    throw std::invalid_argument("triangulate: no evidence");
  }
  double log_odds = 0.0;  // for the proposition "claim is true"
  for (const Evidence &e : evidence) {
    if (e.reliability <= 0.5 || e.reliability >= 1.0) {
      throw std::invalid_argument("triangulate: reliability must be in (0.5, 1)");
    }
    const double weight = std::log(e.reliability / (1.0 - e.reliability));
    log_odds += e.claim ? weight : -weight;
  }
  TriangulationResult result;
  result.total = evidence.size();
  result.consensus = log_odds >= 0.0;
  // Posterior for the chosen side.
  const double p_true = 1.0 / (1.0 + std::exp(-log_odds));
  result.confidence = result.consensus ? p_true : 1.0 - p_true;
  for (const Evidence &e : evidence) {
    if (e.claim == result.consensus) ++result.agreeing;
  }
  return result;
}

TriangulationStudy run_triangulation_study(const TriangulationConfig &config,
                                           core::Rng &rng) {
  TriangulationStudy study;
  std::size_t diary_ok = 0, interview_ok = 0, trace_ok = 0, fused_ok = 0;
  std::size_t traces = 0;
  for (std::size_t q = 0; q < config.n_questions; ++q) {
    const bool truth = rng.bernoulli(0.5);
    const auto observe = [&](double reliability) {
      return rng.bernoulli(reliability) ? truth : !truth;
    };
    std::vector<Evidence> evidence;
    const bool diary_says = observe(config.diary_reliability);
    evidence.push_back({Source::Diary, diary_says, config.diary_reliability});
    const bool interview_says = observe(config.interview_reliability);
    evidence.push_back(
        {Source::Interview, interview_says, config.interview_reliability});
    bool has_trace = !rng.bernoulli(config.trace_failure_rate);
    bool trace_says = false;
    if (has_trace) {
      trace_says = observe(config.trace_reliability);
      evidence.push_back({Source::Trace, trace_says, config.trace_reliability});
      ++traces;
      if (trace_says == truth) ++trace_ok;
    }
    if (diary_says == truth) ++diary_ok;
    if (interview_says == truth) ++interview_ok;
    if (triangulate(evidence).consensus == truth) ++fused_ok;
  }
  const double n = static_cast<double>(config.n_questions);
  study.diary_accuracy = diary_ok / n;
  study.interview_accuracy = interview_ok / n;
  study.trace_accuracy =
      traces > 0 ? static_cast<double>(trace_ok) / static_cast<double>(traces)
                 : 0.0;
  study.trace_coverage = static_cast<double>(traces) / n;
  study.triangulated_accuracy = fused_ok / n;
  return study;
}

}  // namespace treu::artifact
