#include "treu/artifact/trace.hpp"

#include <algorithm>

namespace treu::artifact {
namespace {

CollectError random_error(RepoKind kind, core::Rng &rng) {
  // Error mix depends on the repo kind: registries rate-limit, forges
  // change APIs, archives drift schemas.
  const double u = rng.uniform();
  switch (kind) {
    case RepoKind::GitForge:
      return u < 0.5 ? CollectError::ApiChange
                     : (u < 0.8 ? CollectError::RateLimit
                                : CollectError::SchemaDrift);
    case RepoKind::PackageRegistry:
      return u < 0.6 ? CollectError::RateLimit
                     : (u < 0.85 ? CollectError::ApiChange
                                 : CollectError::SchemaDrift);
    case RepoKind::BinaryArchive:
      return u < 0.7 ? CollectError::SchemaDrift
                     : (u < 0.9 ? CollectError::ApiChange
                                : CollectError::RateLimit);
  }
  return CollectError::ApiChange;
}

}  // namespace

CollectResult TraceCollector::collect(const Repository &repo,
                                      core::Rng &rng) const {
  CollectResult result;
  double failure_rate = config_.base_failure_rate;
  for (std::size_t attempt = 0; attempt <= config_.max_retries; ++attempt) {
    ++result.attempts;
    if (!rng.bernoulli(failure_rate)) {
      result.success = true;
      result.error = CollectError::None;
      result.events_collected = repo.events;
      return result;
    }
    result.error = random_error(repo.kind, rng);
    // Troubleshooting between attempts: a fix lands with some probability,
    // and escalating to the developer halves the residual failure rate.
    if (rng.bernoulli(config_.retry_fix_probability)) {
      failure_rate *= 0.5;
    }
    if (config_.escalate_to_developer && result.error == CollectError::ApiChange) {
      ++result.developer_contacts;
      failure_rate *= 0.5;
    }
  }
  return result;
}

std::vector<CollectResult> TraceCollector::collect_all(
    const std::vector<Repository> &repos, core::Rng &rng) const {
  std::vector<CollectResult> out;
  out.reserve(repos.size());
  for (const auto &repo : repos) out.push_back(collect(repo, rng));
  return out;
}

double TraceCollector::success_rate(std::span<const CollectResult> results) {
  if (results.empty()) return 0.0;
  std::size_t ok = 0;
  for (const auto &r : results) {
    if (r.success) ++ok;
  }
  return static_cast<double>(ok) / static_cast<double>(results.size());
}

std::vector<Repository> random_repositories(std::size_t n, core::Rng &rng) {
  std::vector<Repository> repos(n);
  for (std::size_t i = 0; i < n; ++i) {
    repos[i].name = "artifact-repo-" + std::to_string(i);
    const double u = rng.uniform();
    repos[i].kind = u < 0.6 ? RepoKind::GitForge
                            : (u < 0.85 ? RepoKind::PackageRegistry
                                        : RepoKind::BinaryArchive);
    repos[i].events = 10 + static_cast<std::size_t>(rng.uniform_index(500));
  }
  return repos;
}

}  // namespace treu::artifact
