#include "treu/artifact/study.hpp"

#include <cmath>
#include <stdexcept>

namespace treu::artifact {

Instrument::Instrument(std::string name, std::vector<Question> questions)
    : name_(std::move(name)), questions_(std::move(questions)) {
  if (questions_.empty()) {
    throw std::invalid_argument("Instrument: no questions");
  }
  for (const auto &q : questions_) {
    if (q.clarity <= 0.0 || q.clarity > 1.0) {
      throw std::invalid_argument("Instrument: clarity out of (0, 1]");
    }
  }
}

Instrument Instrument::draft(std::string name, std::size_t n_diary,
                             std::size_t n_interview, core::Rng &rng) {
  std::vector<Question> qs;
  qs.reserve(n_diary + n_interview);
  for (std::size_t i = 0; i < n_diary; ++i) {
    qs.push_back({"diary question " + std::to_string(i + 1),
                  QuestionKind::Diary, rng.uniform(0.3, 0.7), 0});
  }
  for (std::size_t i = 0; i < n_interview; ++i) {
    qs.push_back({"interview prompt " + std::to_string(i + 1),
                  QuestionKind::Interview, rng.uniform(0.3, 0.7), 0});
  }
  return Instrument(std::move(name), std::move(qs));
}

double Instrument::validity() const noexcept {
  double s = 0.0;
  for (const auto &q : questions_) s += q.clarity;
  return s / static_cast<double>(questions_.size());
}

double Instrument::utility(double threshold) const noexcept {
  std::size_t good = 0;
  for (const auto &q : questions_) {
    if (q.clarity >= threshold) ++good;
  }
  return static_cast<double>(good) / static_cast<double>(questions_.size());
}

PilotOutcome PilotSession::run(Instrument &instrument,
                               const PilotConfig &config, core::Rng &rng) {
  PilotOutcome outcome;
  outcome.validity_before = instrument.validity();
  for (auto &q : instrument.questions_) {
    // Each participant independently notices the problem with probability
    // (1 - clarity); one notice is enough to trigger a revision. The
    // sharpness exponent concentrates flags on the worst questions.
    bool flagged = false;
    const double p_each =
        std::pow(1.0 - q.clarity, 1.0 / config.flag_sharpness);
    for (std::size_t participant = 0; participant < config.participants;
         ++participant) {
      if (rng.bernoulli(p_each * (1.0 - q.clarity))) {
        flagged = true;
      }
    }
    if (flagged) {
      q.clarity += config.revision_gain * (1.0 - q.clarity);
      ++q.revisions;
      ++outcome.flagged;
    }
  }
  outcome.validity_after = instrument.validity();
  return outcome;
}

std::vector<PilotOutcome> run_pilot_study(Instrument &instrument,
                                          std::size_t n_sessions,
                                          const PilotConfig &config,
                                          core::Rng &rng) {
  std::vector<PilotOutcome> outcomes;
  outcomes.reserve(n_sessions);
  for (std::size_t s = 0; s < n_sessions; ++s) {
    PilotOutcome o = PilotSession::run(instrument, config, rng);
    o.session = s + 1;
    outcomes.push_back(o);
  }
  return outcomes;
}

}  // namespace treu::artifact
