#include "treu/artifact/review.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

namespace treu::artifact {

std::vector<Artifact> random_pool(std::size_t n, double reproducible_fraction,
                                  core::Rng &rng) {
  std::vector<Artifact> pool(n);
  for (auto &a : pool) {
    a.truly_reproducible = rng.bernoulli(reproducible_fraction);
    const double base = a.truly_reproducible ? 0.65 : 0.35;
    a.code_completeness = std::clamp(base + rng.normal(0.0, 0.15), 0.05, 1.0);
    a.documentation = std::clamp(base + rng.normal(0.0, 0.2), 0.05, 1.0);
    a.compute_hours = std::exp(rng.normal(0.5, 1.0));  // log-normal hours
  }
  return pool;
}

double reproduction_probability(const Artifact &artifact,
                                const Reviewer &reviewer,
                                double guidance_quality) noexcept {
  if (!artifact.truly_reproducible) return 0.02;  // flukes only
  if (artifact.compute_hours > reviewer.time_budget) return 0.05;
  // Documentation gaps can be compensated by expertise; guidance sharpens
  // everything multiplicatively.
  const double doc_term =
      artifact.documentation + (1.0 - artifact.documentation) * reviewer.expertise * 0.6;
  const double p = artifact.code_completeness * doc_term *
                   (0.6 + 0.4 * guidance_quality);
  return std::clamp(p, 0.0, 0.99);
}

Badge review(const Artifact &artifact, const Reviewer &reviewer,
             double guidance_quality, core::Rng &rng) {
  // Availability is near-mechanical once guidance explains what to check.
  if (!rng.bernoulli(0.8 + 0.19 * guidance_quality)) return Badge::None;
  if (artifact.code_completeness < 0.2) return Badge::Available;
  const double p = reproduction_probability(artifact, reviewer, guidance_quality);
  if (rng.bernoulli(p)) return Badge::Reproduced;
  // Runs-but-does-not-reproduce threshold.
  return artifact.code_completeness > 0.5 ? Badge::Functional
                                          : Badge::Available;
}

double cohen_kappa(std::span<const int> rater_a, std::span<const int> rater_b) {
  if (rater_a.size() != rater_b.size()) {
    throw std::invalid_argument("cohen_kappa: length mismatch");
  }
  const std::size_t n = rater_a.size();
  if (n == 0) return 0.0;
  std::map<int, double> pa, pb;
  double observed = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (rater_a[i] == rater_b[i]) observed += 1.0;
    pa[rater_a[i]] += 1.0;
    pb[rater_b[i]] += 1.0;
  }
  observed /= static_cast<double>(n);
  double expected = 0.0;
  for (const auto &[label, count_a] : pa) {
    const auto it = pb.find(label);
    if (it != pb.end()) {
      expected += (count_a / static_cast<double>(n)) *
                  (it->second / static_cast<double>(n));
    }
  }
  if (expected >= 1.0) return 1.0;  // both raters constant and equal
  return (observed - expected) / (1.0 - expected);
}

PanelResult run_panel(const std::vector<Artifact> &pool,
                      const std::vector<Reviewer> &panel,
                      double guidance_quality, core::Rng &rng) {
  if (pool.empty() || panel.empty()) {
    throw std::invalid_argument("run_panel: empty pool or panel");
  }
  // decisions[r][a] as int for kappa.
  std::vector<std::vector<int>> decisions(panel.size(),
                                          std::vector<int>(pool.size(), 0));
  std::size_t reproduced = 0;
  std::size_t correct = 0;
  for (std::size_t r = 0; r < panel.size(); ++r) {
    for (std::size_t a = 0; a < pool.size(); ++a) {
      const Badge b = review(pool[a], panel[r], guidance_quality, rng);
      decisions[r][a] = static_cast<int>(b);
      if (b == Badge::Reproduced) ++reproduced;
      const bool said_reproduced = b == Badge::Reproduced;
      if (said_reproduced == pool[a].truly_reproducible) ++correct;
    }
  }
  PanelResult result;
  const double pairs_total =
      static_cast<double>(panel.size() * pool.size());
  result.reproduced_rate = static_cast<double>(reproduced) / pairs_total;
  result.decision_accuracy = static_cast<double>(correct) / pairs_total;
  double kappa_sum = 0.0;
  std::size_t kappa_count = 0;
  for (std::size_t i = 0; i < panel.size(); ++i) {
    for (std::size_t j = i + 1; j < panel.size(); ++j) {
      kappa_sum += cohen_kappa(decisions[i], decisions[j]);
      ++kappa_count;
    }
  }
  result.kappa = kappa_count > 0 ? kappa_sum / static_cast<double>(kappa_count)
                                 : 1.0;
  return result;
}

}  // namespace treu::artifact
