#pragma once

// Reviewer panels, badge decisions, and inter-rater agreement (§2.1).
//
// Artifacts have two independent quality axes — the paper's piloting
// surfaced exactly this distinction ("to computational researchers,
// artifacts are code", distinct from the documentation that explains
// them). A reviewer's probability of successfully reproducing an artifact
// depends on code completeness, documentation quality, the reviewer's
// expertise, and whether the artifact fits in the reviewer's compute
// budget. Cohen's kappa quantifies how consistently two reviewers judge the
// same artifact pool; better instruments (clearer review guidance) shrink
// the noise term and raise kappa, which is the study's measurable outcome.

#include <cstddef>
#include <vector>

#include "treu/core/rng.hpp"

namespace treu::artifact {

struct Artifact {
  double code_completeness = 0.5;   // [0, 1]
  double documentation = 0.5;       // [0, 1]
  double compute_hours = 1.0;       // hours needed to reproduce
  bool truly_reproducible = true;   // latent ground truth
};

struct Reviewer {
  double expertise = 0.5;       // [0, 1]
  double time_budget = 8.0;     // hours
};

enum class Badge { None, Available, Functional, Reproduced };

/// Random artifact pool: a `reproducible_fraction` of artifacts are truly
/// reproducible; quality axes correlate loosely with the ground truth.
[[nodiscard]] std::vector<Artifact> random_pool(std::size_t n,
                                                double reproducible_fraction,
                                                core::Rng &rng);

/// Probability the reviewer's reproduction attempt succeeds.
[[nodiscard]] double reproduction_probability(const Artifact &artifact,
                                              const Reviewer &reviewer,
                                              double guidance_quality) noexcept;

/// One reviewer's badge decision on one artifact. `guidance_quality` in
/// [0, 1] is the instrument validity from study.hpp: clearer guidance makes
/// decisions less noisy.
[[nodiscard]] Badge review(const Artifact &artifact, const Reviewer &reviewer,
                           double guidance_quality, core::Rng &rng);

/// Cohen's kappa between two label sequences (categorical). Returns 1 when
/// both raters are constant and equal, 0 when expected agreement equals
/// observed.
[[nodiscard]] double cohen_kappa(std::span<const int> rater_a,
                                 std::span<const int> rater_b);

struct PanelResult {
  double kappa = 0.0;            // mean pairwise agreement
  double reproduced_rate = 0.0;  // fraction of (artifact, reviewer) pairs
  double decision_accuracy = 0.0;  // badge==Reproduced iff truly reproducible
};

/// Have every reviewer judge every artifact; report agreement and accuracy.
[[nodiscard]] PanelResult run_panel(const std::vector<Artifact> &pool,
                                    const std::vector<Reviewer> &panel,
                                    double guidance_quality, core::Rng &rng);

}  // namespace treu::artifact
