#pragma once

// Trace-data collection with failure injection (§2.1).
//
// "Attempts to use third-party packages to collect trace data from artifact
// repositories were unsuccessful. However, students did gain practice in
// communicating with package developers and troubleshooting." We model the
// collector the students fought with: repositories expose events (commits,
// issues, CI runs); the third-party collector fails on a configurable class
// of repositories (API change, rate limit, schema drift); a troubleshooting
// loop retries with fixes and records the interaction count. Tests use this
// to verify partial-failure accounting, and the bench reports the recovered
// fraction as a function of troubleshooting effort.

#include <cstddef>
#include <string>
#include <vector>

#include "treu/core/rng.hpp"

namespace treu::artifact {

enum class RepoKind { GitForge, PackageRegistry, BinaryArchive };

struct Repository {
  std::string name;
  RepoKind kind = RepoKind::GitForge;
  std::size_t events = 0;  // trace events available if collection succeeds
};

enum class CollectError { None, ApiChange, RateLimit, SchemaDrift };

struct CollectResult {
  bool success = false;
  CollectError error = CollectError::None;
  std::size_t events_collected = 0;
  std::size_t attempts = 0;          // total tries incl. retries
  std::size_t developer_contacts = 0;  // escalations to the package developer
};

struct CollectorConfig {
  double base_failure_rate = 0.7;   // matches "unsuccessful" experience
  double retry_fix_probability = 0.25;  // chance a troubleshooting retry works
  std::size_t max_retries = 3;
  bool escalate_to_developer = true;  // a contact halves failure on next try
};

class TraceCollector {
 public:
  explicit TraceCollector(const CollectorConfig &config) : config_(config) {}

  [[nodiscard]] CollectResult collect(const Repository &repo, core::Rng &rng) const;

  /// Run over a corpus; returns per-repo results.
  [[nodiscard]] std::vector<CollectResult> collect_all(
      const std::vector<Repository> &repos, core::Rng &rng) const;

  /// Fraction of repos whose traces were eventually collected.
  [[nodiscard]] static double success_rate(std::span<const CollectResult> results);

 private:
  CollectorConfig config_;
};

/// Random corpus of repositories.
[[nodiscard]] std::vector<Repository> random_repositories(std::size_t n,
                                                          core::Rng &rng);

}  // namespace treu::artifact
