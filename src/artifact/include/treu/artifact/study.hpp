#pragma once

// Model of the artifact-evaluation study (§2.1).
//
// The student project piloted study *instruments* (diary-study questions and
// interview protocols) and "substantially revised the materials, improving
// their validity and utility" over four pilot sessions. We model that
// process: an instrument is a set of questions with latent clarity; each
// pilot session flags unclear questions with probability tied to their
// clarity; flagged questions get revised (clarity increases); instrument
// validity is the mean clarity. The simulation reproduces the paper's
// qualitative finding — monotone improvement concentrated in early
// sessions — and provides the measurement vocabulary (validity, utility,
// flags per session).
//
// The piloting insight the paper reports ("authors conceive of research
// artifacts as distinct from the documentation that explains them") is
// reflected in the reviewer model (review.hpp): code quality and
// documentation quality are independent axes.

#include <cstddef>
#include <string>
#include <vector>

#include "treu/core/rng.hpp"

namespace treu::artifact {

enum class QuestionKind { Diary, Interview };

struct Question {
  std::string text;
  QuestionKind kind = QuestionKind::Diary;
  double clarity = 0.5;        // latent, in (0, 1]
  std::size_t revisions = 0;
};

class Instrument {
 public:
  Instrument(std::string name, std::vector<Question> questions);

  /// Draft instrument with `n` questions whose initial clarity is
  /// U(0.3, 0.7) — a realistic first draft.
  static Instrument draft(std::string name, std::size_t n_diary,
                          std::size_t n_interview, core::Rng &rng);

  [[nodiscard]] const std::string &name() const noexcept { return name_; }
  [[nodiscard]] std::size_t size() const noexcept { return questions_.size(); }
  [[nodiscard]] const Question &question(std::size_t i) const {
    return questions_.at(i);
  }

  /// Mean clarity = the instrument's validity proxy.
  [[nodiscard]] double validity() const noexcept;

  /// Fraction of questions above a usefulness threshold.
  [[nodiscard]] double utility(double threshold = 0.7) const noexcept;

  friend struct PilotSession;

 private:
  std::string name_;
  std::vector<Question> questions_;
};

struct PilotConfig {
  double flag_sharpness = 4.0;     // P(flag) = (1 - clarity)^(1/s)… see impl
  double revision_gain = 0.35;     // clarity += gain * (1 - clarity) per fix
  std::size_t participants = 3;    // independent readers per session
};

struct PilotOutcome {
  std::size_t session = 0;
  std::size_t flagged = 0;
  double validity_before = 0.0;
  double validity_after = 0.0;
};

/// Run one pilot session in place: each participant independently flags
/// unclear questions; flagged questions are revised.
struct PilotSession {
  static PilotOutcome run(Instrument &instrument, const PilotConfig &config,
                          core::Rng &rng);
};

/// Run `n_sessions` pilots (the project ran four) and return the outcome
/// trajectory.
[[nodiscard]] std::vector<PilotOutcome> run_pilot_study(Instrument &instrument,
                                                        std::size_t n_sessions,
                                                        const PilotConfig &config,
                                                        core::Rng &rng);

}  // namespace treu::artifact
