#pragma once

// Data triangulation (§2.1): combine diary, interview, and trace evidence
// about the same study question.
//
// The study design collected three kinds of evidence per phenomenon
// precisely because each source errs differently: diaries are in-the-moment
// but sparse, interviews are rich but retrospective, traces are objective
// but incomplete ("attempts to use third-party packages ... were
// unsuccessful"). Triangulation fuses them as independent noisy witnesses
// via log-odds addition; the testable claim is that the fused judgment
// beats every single source.

#include <cstddef>
#include <span>
#include <vector>

#include "treu/core/rng.hpp"

namespace treu::artifact {

enum class Source { Diary, Interview, Trace };

/// One piece of evidence about a binary study question.
struct Evidence {
  Source source = Source::Diary;
  bool claim = false;        // what this source says
  double reliability = 0.7;  // P(source correct); must be in (0.5, 1)
};

struct TriangulationResult {
  bool consensus = false;       // fused binary judgment
  double confidence = 0.5;      // posterior P(consensus correct)
  std::size_t agreeing = 0;     // sources that voted with the consensus
  std::size_t total = 0;
};

/// Fuse evidence via independent log-odds. Throws std::invalid_argument on
/// empty evidence or reliabilities outside (0.5, 1).
[[nodiscard]] TriangulationResult triangulate(std::span<const Evidence> evidence);

/// Simulation of the study's evidence pipeline: `n_questions` binary ground
/// truths, observed by each source with its reliability (trace evidence is
/// additionally *missing* with probability `trace_failure_rate` — the
/// collector failures from trace.hpp). Returns per-source and triangulated
/// accuracies.
struct TriangulationStudy {
  double diary_accuracy = 0.0;
  double interview_accuracy = 0.0;
  double trace_accuracy = 0.0;       // counted over questions with a trace
  double trace_coverage = 0.0;       // fraction of questions with a trace
  double triangulated_accuracy = 0.0;
};

struct TriangulationConfig {
  std::size_t n_questions = 200;
  double diary_reliability = 0.75;
  double interview_reliability = 0.8;
  double trace_reliability = 0.95;
  double trace_failure_rate = 0.7;  // the §2.1 experience
};

[[nodiscard]] TriangulationStudy run_triangulation_study(
    const TriangulationConfig &config, core::Rng &rng);

}  // namespace treu::artifact
