#pragma once

// Dense row-major matrix of doubles.
//
// This is the numeric workhorse under every other module: NN layers, PCA,
// robust statistics, the kernel/autotuner experiments. Storage is a single
// contiguous vector (row-major), and rows are exposed as std::span so
// callers can iterate without index arithmetic. Heavyweight operations
// (matmul variants, conv) live in kernels.hpp; this header is shapes,
// element access, and cheap elementwise algebra.

#include <cstddef>
#include <initializer_list>
#include <span>
#include <stdexcept>
#include <vector>

#include "treu/core/rng.hpp"
#include "treu/core/sha256.hpp"

namespace treu::tensor {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Construct from nested initializer list (row-major); ragged input throws.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  double &operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  /// Bounds-checked access.
  double &at(std::size_t r, std::size_t c);
  [[nodiscard]] double at(std::size_t r, std::size_t c) const;

  [[nodiscard]] std::span<double> row(std::size_t r) noexcept {
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const double> row(std::size_t r) const noexcept {
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<double> flat() noexcept { return data_; }
  [[nodiscard]] std::span<const double> flat() const noexcept { return data_; }
  [[nodiscard]] double *data() noexcept { return data_.data(); }
  [[nodiscard]] const double *data() const noexcept { return data_.data(); }

  void fill(double v) noexcept;

  /// Elementwise algebra (shape-checked).
  Matrix &operator+=(const Matrix &other);
  Matrix &operator-=(const Matrix &other);
  Matrix &operator*=(double s) noexcept;
  [[nodiscard]] friend Matrix operator+(Matrix a, const Matrix &b) {
    a += b;
    return a;
  }
  [[nodiscard]] friend Matrix operator-(Matrix a, const Matrix &b) {
    a -= b;
    return a;
  }
  [[nodiscard]] friend Matrix operator*(Matrix a, double s) noexcept {
    a *= s;
    return a;
  }

  [[nodiscard]] Matrix transposed() const;

  /// Extract column c as a vector.
  [[nodiscard]] std::vector<double> column(std::size_t c) const;

  [[nodiscard]] double frobenius_norm() const noexcept;

  /// Max |a_ij - b_ij|; infinity on shape mismatch.
  [[nodiscard]] double max_abs_diff(const Matrix &other) const noexcept;

  /// Bit-exact content fingerprint (shape + raw doubles).
  [[nodiscard]] core::Digest digest() const;

  /// iid U(lo, hi) entries from `rng`.
  [[nodiscard]] static Matrix random_uniform(std::size_t rows, std::size_t cols,
                                             core::Rng &rng, double lo = 0.0,
                                             double hi = 1.0);
  /// iid N(0, stddev^2) entries from `rng`.
  [[nodiscard]] static Matrix random_normal(std::size_t rows, std::size_t cols,
                                            core::Rng &rng,
                                            double stddev = 1.0);
  [[nodiscard]] static Matrix identity(std::size_t n);

  friend bool operator==(const Matrix &, const Matrix &) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// 3D tensor (channels x height x width), used by conv2d stacks.
class Tensor3 {
 public:
  Tensor3() = default;
  Tensor3(std::size_t channels, std::size_t height, std::size_t width,
          double fill = 0.0)
      : c_(channels), h_(height), w_(width), data_(channels * height * width, fill) {}

  [[nodiscard]] std::size_t channels() const noexcept { return c_; }
  [[nodiscard]] std::size_t height() const noexcept { return h_; }
  [[nodiscard]] std::size_t width() const noexcept { return w_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }

  double &operator()(std::size_t c, std::size_t y, std::size_t x) noexcept {
    return data_[(c * h_ + y) * w_ + x];
  }
  double operator()(std::size_t c, std::size_t y, std::size_t x) const noexcept {
    return data_[(c * h_ + y) * w_ + x];
  }

  [[nodiscard]] std::span<double> flat() noexcept { return data_; }
  [[nodiscard]] std::span<const double> flat() const noexcept { return data_; }

  /// View channel c as spans per row is awkward; copy out instead.
  [[nodiscard]] Matrix channel(std::size_t c) const;

  friend bool operator==(const Tensor3 &, const Tensor3 &) = default;

 private:
  std::size_t c_ = 0, h_ = 0, w_ = 0;
  std::vector<double> data_;
};

}  // namespace treu::tensor
