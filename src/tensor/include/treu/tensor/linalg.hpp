#pragma once

// Dense linear algebra used by PCA (shape atlases, survey factor analysis),
// the robust-statistics filter (top eigenvector of the corrupted covariance)
// and trajectory embeddings.
//
// Algorithms chosen for determinism and robustness over raw speed:
//  - cyclic Jacobi for symmetric eigendecomposition (quadratic convergence,
//    bit-stable across runs),
//  - one-sided Jacobi for the SVD (accurate small singular values, which the
//    robust filter relies on),
//  - Cholesky for SPD solves/sampling.

#include <cstddef>
#include <vector>

#include "treu/tensor/matrix.hpp"

namespace treu::tensor {

/// Eigendecomposition of a symmetric matrix: A = V diag(values) V^T.
/// `values` sorted descending; columns of `vectors` are the matching
/// unit eigenvectors.
struct EigenResult {
  std::vector<double> values;
  Matrix vectors;  // n x n, eigenvectors in columns
  std::size_t sweeps = 0;
};

/// Cyclic Jacobi. Throws std::invalid_argument if `a` is not square or not
/// symmetric to within `symmetry_tol`.
[[nodiscard]] EigenResult eigen_symmetric(const Matrix &a,
                                          double tol = 1e-12,
                                          std::size_t max_sweeps = 64,
                                          double symmetry_tol = 1e-9);

/// Thin SVD: A (m x n, m >= n after implicit transpose handling) =
/// U diag(singular) V^T, singular values sorted descending.
struct SvdResult {
  Matrix u;                      // m x r
  std::vector<double> singular;  // r, descending
  Matrix v;                      // n x r
  std::size_t sweeps = 0;
};

/// One-sided Jacobi SVD. Handles m < n by transposing internally.
[[nodiscard]] SvdResult svd(const Matrix &a, double tol = 1e-12,
                            std::size_t max_sweeps = 64);

/// Cholesky factor L (lower triangular) of an SPD matrix: A = L L^T.
/// Throws std::invalid_argument if A is not SPD (to tolerance).
[[nodiscard]] Matrix cholesky(const Matrix &a);

/// Solve A x = b for SPD A via Cholesky.
[[nodiscard]] std::vector<double> solve_spd(const Matrix &a,
                                            std::vector<double> b);

/// Solve a general square system by Gaussian elimination with partial
/// pivoting. Throws std::invalid_argument on (numerically) singular A.
[[nodiscard]] std::vector<double> solve(Matrix a, std::vector<double> b);

/// Sample covariance matrix of row-observations (n-1 denominator);
/// also returns the column means.
struct CovarianceResult {
  Matrix covariance;
  std::vector<double> means;
};
[[nodiscard]] CovarianceResult covariance(const Matrix &observations);

/// Largest eigenvalue/eigenvector by power iteration with deterministic
/// start vector; faster than full Jacobi when only the top pair is needed
/// (the robust filter's inner loop).
struct TopEigen {
  double value = 0.0;
  std::vector<double> vector;
  std::size_t iterations = 0;
};
[[nodiscard]] TopEigen power_iteration(const Matrix &a, double tol = 1e-10,
                                       std::size_t max_iter = 1000);

}  // namespace treu::tensor
