#pragma once

// Runtime CPU feature detection for the SIMD kernel backends.
//
// An `Isa` names one compiled kernel backend; dispatch picks the fastest one
// the host can execute (`treu::tensor::Kernel` in kernels.hpp). Detection is
// a CPUID query cached on first use, and the `TREU_FORCE_ISA` environment
// variable pins the decision for CI and soak reproducibility:
//
//   TREU_FORCE_ISA=scalar   every dispatch takes the portable path, even on
//                           AVX2 hosts (requests for Avx2 fall back).
//   TREU_FORCE_ISA=avx2     asserts the AVX2 path is usable; refused with a
//                           clear std::runtime_error if the CPU or build
//                           lacks it (a forced pin that silently downgraded
//                           would fake reproducibility).

#include <cstdint>
#include <optional>
#include <string_view>

namespace treu::tensor {

/// Instruction-set backends a schedule can request. Scalar is always
/// available; Avx2 means AVX2+FMA double-precision microkernels.
enum class Isa : std::uint8_t { Scalar = 0, Avx2 = 1 };

[[nodiscard]] const char *to_string(Isa isa) noexcept;

/// "scalar" / "avx2" -> Isa; nullopt for anything else.
[[nodiscard]] std::optional<Isa> parse_isa(std::string_view name) noexcept;

/// Raw hardware capability (CPUID), ignoring TREU_FORCE_ISA and whether the
/// backend was compiled in. Scalar is always supported.
[[nodiscard]] bool cpu_supports(Isa isa) noexcept;

/// True when the AVX2 backend object code exists in this binary (x86-64
/// build with a compiler that accepts -mavx2 -mfma). Defined by the backend
/// translation unit so detection can't drift from what was actually built.
[[nodiscard]] bool avx2_backend_compiled() noexcept;

/// The TREU_FORCE_ISA pin, read once and cached. nullopt when unset. Throws
/// std::runtime_error when the variable names an unknown ISA or one this
/// host/build cannot execute.
[[nodiscard]] std::optional<Isa> forced_isa();

/// Drops the cached TREU_FORCE_ISA decision so the next forced_isa() call
/// re-reads the environment. Test hook only: production code must see one
/// consistent pin for the whole process.
void refresh_forced_isa_for_testing() noexcept;

namespace detail {
/// Pure resolution of a TREU_FORCE_ISA value against a capability flag;
/// factored out so the refusal logic is unit-testable on any host. Throws
/// std::runtime_error exactly when forced_isa() would.
[[nodiscard]] Isa resolve_forced_isa(std::string_view value,
                                     bool avx2_usable);
}  // namespace detail

}  // namespace treu::tensor
