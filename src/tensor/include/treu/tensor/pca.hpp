#pragma once

// Principal component analysis over row-observation matrices.
//
// Used by the shape-atlas module (§2.11: modes of variation of anatomy
// populations) and exposed publicly for any embedding work. Components are
// sign-normalized (largest-|entry| coordinate is positive) so that repeated
// runs and different eigen backends agree on direction.

#include <cstddef>
#include <span>
#include <vector>

#include "treu/tensor/matrix.hpp"

namespace treu::tensor {

class Pca {
 public:
  /// Fit on `observations` (one row per sample), keeping at most
  /// `max_components` components (0 = all).
  static Pca fit(const Matrix &observations, std::size_t max_components = 0);

  [[nodiscard]] std::size_t n_components() const noexcept {
    return eigenvalues_.size();
  }
  [[nodiscard]] const std::vector<double> &mean() const noexcept { return mean_; }

  /// Eigenvalues of the covariance, descending (the "modes of variation"
  /// energies).
  [[nodiscard]] const std::vector<double> &eigenvalues() const noexcept {
    return eigenvalues_;
  }

  /// Component k as a row vector in input space.
  [[nodiscard]] std::span<const double> component(std::size_t k) const {
    return components_.row(k);
  }

  /// Fraction of total variance captured by the first k components
  /// ("compactness curve" in shape-modeling terms).
  [[nodiscard]] double explained_variance_ratio(std::size_t k) const;

  /// Number of modes needed to reach `fraction` of the variance.
  [[nodiscard]] std::size_t modes_for_variance(double fraction) const;

  /// Project one observation into component scores.
  [[nodiscard]] std::vector<double> transform(std::span<const double> x) const;

  /// Project all rows.
  [[nodiscard]] Matrix transform(const Matrix &observations) const;

  /// Reconstruct an observation from (possibly truncated) scores.
  [[nodiscard]] std::vector<double> inverse_transform(
      std::span<const double> scores) const;

  /// Mean + stddevs * sqrt(eigenvalue_k) * component_k: walk along mode k
  /// (the standard shape-model visualization).
  [[nodiscard]] std::vector<double> mode_sample(std::size_t k,
                                                double stddevs) const;

 private:
  std::vector<double> mean_;
  std::vector<double> eigenvalues_;
  Matrix components_;  // n_components x dim, rows are components
};

}  // namespace treu::tensor
