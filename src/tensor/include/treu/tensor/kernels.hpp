#pragma once

// The five kernels from the compiler-optimization project (§2.5): matrix-
// vector multiply, 1D convolution, 2D convolution, matrix-matrix multiply,
// and transposed matrix-matrix multiply.
//
// Every kernel has a naive reference implementation (the semantic oracle:
// schedule correctness tests compare against it) and a parameterised
// optimized implementation whose knobs — loop order, tile sizes, unroll
// factor, parallelization — are exactly the scheduling-language primitives
// exposed by treu::sched. This mirrors the TVM/MLIR structure the students
// worked with: the *schedule* is data, the kernel semantics never change.

#include <cstddef>
#include <span>
#include <vector>

#include "treu/parallel/thread_pool.hpp"
#include "treu/tensor/matrix.hpp"

namespace treu::tensor {

/// Loop order for the matmul triple loop.
enum class LoopOrder { IJK, IKJ, JIK, JKI, KIJ, KJI };

[[nodiscard]] const char *to_string(LoopOrder order) noexcept;

/// Knobs shared by the optimized kernel variants. A default-constructed
/// value reproduces a reasonable blocked implementation; tile values of 0
/// mean "no tiling in that dimension".
struct KernelParams {
  LoopOrder order = LoopOrder::IKJ;
  std::size_t tile_i = 0;
  std::size_t tile_j = 0;
  std::size_t tile_k = 0;
  std::size_t unroll = 1;   // inner-loop unroll factor: 1, 2, 4 or 8
  bool parallel = false;    // parallelize the outermost loop on the pool

  friend bool operator==(const KernelParams &, const KernelParams &) = default;
};

// --- Matrix-vector multiply: y = A x ---------------------------------------

[[nodiscard]] std::vector<double> matvec(const Matrix &a,
                                         std::span<const double> x);

[[nodiscard]] std::vector<double> matvec_opt(const Matrix &a,
                                             std::span<const double> x,
                                             const KernelParams &params,
                                             parallel::ThreadPool &pool);

// --- Matrix-matrix multiply: C = A B ----------------------------------------

[[nodiscard]] Matrix matmul(const Matrix &a, const Matrix &b);

/// Triple loop in an arbitrary order, untiled: exposes the effect of loop
/// interchange alone.
[[nodiscard]] Matrix matmul_ordered(const Matrix &a, const Matrix &b,
                                    LoopOrder order);

/// Fully parameterized: interchange + tiling + unroll + parallel outer loop.
[[nodiscard]] Matrix matmul_opt(const Matrix &a, const Matrix &b,
                                const KernelParams &params,
                                parallel::ThreadPool &pool);

// --- Gram-style matmul: C = A^T B (no transpose materialized) ---------------
//
// The backward pass of every dense layer computes dW = X^T G; materializing
// X^T copies the (often huge) activation matrix on every step. This kernel
// walks A and B row-by-row (both row-major friendly) and accumulates the
// outer products directly.

[[nodiscard]] Matrix matmul_atb(const Matrix &a, const Matrix &b);

// --- Transposed matmul: C = A B^T (B supplied row-major, used row-wise) ----

[[nodiscard]] Matrix matmul_transposed(const Matrix &a, const Matrix &b);

[[nodiscard]] Matrix matmul_transposed_opt(const Matrix &a, const Matrix &b,
                                           const KernelParams &params,
                                           parallel::ThreadPool &pool);

// --- 1D convolution (valid mode): out[i] = sum_k in[i+k] w[k] --------------

[[nodiscard]] std::vector<double> conv1d(std::span<const double> input,
                                         std::span<const double> weights);

[[nodiscard]] std::vector<double> conv1d_opt(std::span<const double> input,
                                             std::span<const double> weights,
                                             const KernelParams &params,
                                             parallel::ThreadPool &pool);

// --- 2D convolution (valid mode) --------------------------------------------

[[nodiscard]] Matrix conv2d(const Matrix &input, const Matrix &kernel);

[[nodiscard]] Matrix conv2d_opt(const Matrix &input, const Matrix &kernel,
                                const KernelParams &params,
                                parallel::ThreadPool &pool);

/// FLOP counts for the roofline model (multiply-add counted as 2 flops).
[[nodiscard]] double matvec_flops(std::size_t m, std::size_t n) noexcept;
[[nodiscard]] double matmul_flops(std::size_t m, std::size_t n,
                                  std::size_t k) noexcept;
[[nodiscard]] double conv1d_flops(std::size_t n, std::size_t k) noexcept;
[[nodiscard]] double conv2d_flops(std::size_t h, std::size_t w, std::size_t kh,
                                  std::size_t kw) noexcept;

/// Minimum bytes moved (compulsory traffic): inputs read once + output
/// written once. Used for arithmetic-intensity estimates.
[[nodiscard]] double matvec_bytes(std::size_t m, std::size_t n) noexcept;
[[nodiscard]] double matmul_bytes(std::size_t m, std::size_t n,
                                  std::size_t k) noexcept;
[[nodiscard]] double conv1d_bytes(std::size_t n, std::size_t k) noexcept;
[[nodiscard]] double conv2d_bytes(std::size_t h, std::size_t w, std::size_t kh,
                                  std::size_t kw) noexcept;

}  // namespace treu::tensor
