#pragma once

// The five kernels from the compiler-optimization project (§2.5) — matrix-
// vector multiply, 1D convolution, 2D convolution, matrix-matrix multiply,
// and transposed matrix-matrix multiply — behind one dispatch surface.
//
// `Kernel::run(op, args, params, pool)` is the single entry point: it
// resolves the requested instruction set (`KernelParams::isa`) against what
// the host CPU, the build, and the TREU_FORCE_ISA pin allow, then executes
// either the legacy scalar loop nests (whose knobs — loop order, tile
// sizes, unroll factor, parallelization — are exactly the scheduling-
// language primitives exposed by treu::sched) or the register-tiled
// microkernel backends: a portable scalar instantiation and an AVX2+FMA
// instantiation compiled from the same template. This mirrors the TVM/MLIR
// structure the students worked with — the *schedule* (now including vector
// ISA and register-tile shape) is data, the kernel semantics never change.
//
// Parity contract: every backend computes the same function as the naive
// reference up to summation-order effects (FMA contraction, lane-split
// reductions), which kernels_test bounds in ULPs. When the requested ISA is
// unavailable, dispatch falls back to Scalar and records it (the
// `sched.isa_fallback` metric and Kernel::isa_fallbacks()) instead of
// throwing — a schedule tuned on another host must still run here.
//
// The historical free functions (`matvec`/`matvec_opt`,
// `matmul`/`matmul_ordered`/`matmul_opt`, ...) survive as thin deprecated
// shims over Kernel::run; new code should call the Kernel entry points.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "treu/parallel/thread_pool.hpp"
#include "treu/tensor/cpu_features.hpp"
#include "treu/tensor/matrix.hpp"

namespace treu::tensor {

/// Loop order for the matmul triple loop (honored by the scalar
/// interchange/tiled paths; the register-tiled backends fix their own
/// micro-order).
enum class LoopOrder { IJK, IKJ, JIK, JKI, KIJ, KJI };

[[nodiscard]] const char *to_string(LoopOrder order) noexcept;

/// The five dispatchable kernels.
enum class KernelOp { MatVec, Conv1D, Conv2D, MatMul, MatMulTransposed };

[[nodiscard]] const char *to_string(KernelOp op) noexcept;

/// Knobs shared by every kernel backend. A default-constructed value
/// reproduces the pre-SIMD blocked scalar implementation bit-for-bit; tile
/// values of 0 mean "no tiling in that dimension", rtile values of 0 mean
/// "backend default register tile".
struct KernelParams {
  LoopOrder order = LoopOrder::IKJ;
  std::size_t tile_i = 0;
  std::size_t tile_j = 0;
  std::size_t tile_k = 0;
  std::size_t unroll = 1;   // inner-loop unroll factor: 1, 2, 4 or 8
  bool parallel = false;    // parallelize the outermost loop on the pool
  Isa isa = Isa::Scalar;    // which compiled backend to dispatch to
  std::size_t rtile_m = 0;  // register-tile rows (matmul microkernel)
  std::size_t rtile_n = 0;  // register-tile cols, multiple of the vector width
  // Skip the rank-1 update when a(i,k) == 0 (matmul only). Post-ReLU
  // activations and n-gram presence features are mostly zeros; skipping
  // them never changes a finite result because each skipped contribution
  // is exactly +-0.0.
  bool skip_zero_a = false;

  friend bool operator==(const KernelParams &, const KernelParams &) = default;
};

/// Operand bundle for Kernel::run. Which fields matter depends on the op:
///   MatVec            a (m x n), x (n)
///   MatMul            a (m x k), b (k x n)
///   MatMulTransposed  a (m x k), b (n x k)
///   Conv1D            x (signal), w (taps)
///   Conv2D            a (image), b (kernel)
struct KernelArgs {
  const Matrix *a = nullptr;
  const Matrix *b = nullptr;
  std::span<const double> x;
  std::span<const double> w;
};

/// Result of one dispatch: matrix-valued ops fill `matrix`, vector-valued
/// ops (MatVec, Conv1D) fill `vec`.
struct KernelResult {
  Matrix matrix;
  std::vector<double> vec;
};

/// The one dispatch surface over the kernel zoo.
class Kernel {
 public:
  /// Execute `op` on `args` with `params`, dispatching to the backend
  /// selected by params.isa (clamped to availability, see effective()).
  /// Shape errors throw std::invalid_argument, exactly like the historical
  /// free functions.
  [[nodiscard]] static KernelResult run(KernelOp op, const KernelArgs &args,
                                        const KernelParams &params,
                                        parallel::ThreadPool &pool);

  // Typed conveniences — same dispatch path as run().
  [[nodiscard]] static std::vector<double> matvec(const Matrix &a,
                                                  std::span<const double> x,
                                                  const KernelParams &params,
                                                  parallel::ThreadPool &pool);
  [[nodiscard]] static Matrix matmul(const Matrix &a, const Matrix &b,
                                     const KernelParams &params,
                                     parallel::ThreadPool &pool);
  [[nodiscard]] static Matrix matmul_transposed(const Matrix &a,
                                                const Matrix &b,
                                                const KernelParams &params,
                                                parallel::ThreadPool &pool);
  [[nodiscard]] static std::vector<double> conv1d(std::span<const double> input,
                                                  std::span<const double> weights,
                                                  const KernelParams &params,
                                                  parallel::ThreadPool &pool);
  [[nodiscard]] static Matrix conv2d(const Matrix &input, const Matrix &kernel,
                                     const KernelParams &params,
                                     parallel::ThreadPool &pool);

  /// True when `isa` can be dispatched right now: CPU + build support it and
  /// TREU_FORCE_ISA does not pin it away. Scalar is always available unless
  /// TREU_FORCE_ISA itself is invalid (which throws).
  [[nodiscard]] static bool available(Isa isa);

  /// Fastest available ISA.
  [[nodiscard]] static Isa best();

  /// The ISA `requested` actually dispatches to (Scalar when the request is
  /// unavailable). Pure availability clamp — does not count a fallback.
  [[nodiscard]] static Isa effective(Isa requested);

  /// "Make it fast, keep the semantics": best() ISA with the default
  /// register tile. What the nn forward passes use so every served model
  /// rides the fastest compiled backend for free.
  [[nodiscard]] static KernelParams fast_params();

  /// Lazily-constructed serial pool for callers without one (the deprecated
  /// shims). Never spun up unless a parallel schedule actually needs it.
  [[nodiscard]] static parallel::ThreadPool &default_pool();

  /// Process-wide count of dispatches whose requested ISA was unavailable
  /// (mirrors the sched.isa_fallback metric for obs-off builds).
  [[nodiscard]] static std::uint64_t isa_fallbacks() noexcept;
};

// --- Deprecated shims over Kernel::run --------------------------------------
//
// Kept so existing call sites and published schedules keep compiling; each
// is a thin delegation and bitwise-identical to direct dispatch (asserted
// in kernels_test). Prefer Kernel::*.

[[nodiscard]] std::vector<double> matvec(const Matrix &a,
                                         std::span<const double> x);

[[nodiscard]] std::vector<double> matvec_opt(const Matrix &a,
                                             std::span<const double> x,
                                             const KernelParams &params,
                                             parallel::ThreadPool &pool);

[[nodiscard]] Matrix matmul(const Matrix &a, const Matrix &b);

/// Triple loop in an arbitrary order, untiled: exposes the effect of loop
/// interchange alone.
[[nodiscard]] Matrix matmul_ordered(const Matrix &a, const Matrix &b,
                                    LoopOrder order);

/// Fully parameterized: interchange + tiling + unroll + parallel outer loop
/// + ISA/register-tile dispatch.
[[nodiscard]] Matrix matmul_opt(const Matrix &a, const Matrix &b,
                                const KernelParams &params,
                                parallel::ThreadPool &pool);

[[nodiscard]] Matrix matmul_transposed(const Matrix &a, const Matrix &b);

[[nodiscard]] Matrix matmul_transposed_opt(const Matrix &a, const Matrix &b,
                                           const KernelParams &params,
                                           parallel::ThreadPool &pool);

[[nodiscard]] std::vector<double> conv1d(std::span<const double> input,
                                         std::span<const double> weights);

[[nodiscard]] std::vector<double> conv1d_opt(std::span<const double> input,
                                             std::span<const double> weights,
                                             const KernelParams &params,
                                             parallel::ThreadPool &pool);

[[nodiscard]] Matrix conv2d(const Matrix &input, const Matrix &kernel);

[[nodiscard]] Matrix conv2d_opt(const Matrix &input, const Matrix &kernel,
                                const KernelParams &params,
                                parallel::ThreadPool &pool);

// --- Gram-style matmul: C = A^T B (no transpose materialized) ---------------
//
// The backward pass of every dense layer computes dW = X^T G; materializing
// X^T copies the (often huge) activation matrix on every step. This kernel
// walks A and B row-by-row (both row-major friendly) and accumulates the
// outer products directly. Not part of the schedule zoo, so not dispatched.

[[nodiscard]] Matrix matmul_atb(const Matrix &a, const Matrix &b);

/// FLOP counts for the roofline model (multiply-add counted as 2 flops).
[[nodiscard]] double matvec_flops(std::size_t m, std::size_t n) noexcept;
[[nodiscard]] double matmul_flops(std::size_t m, std::size_t n,
                                  std::size_t k) noexcept;
[[nodiscard]] double conv1d_flops(std::size_t n, std::size_t k) noexcept;
[[nodiscard]] double conv2d_flops(std::size_t h, std::size_t w, std::size_t kh,
                                  std::size_t kw) noexcept;

/// Minimum bytes moved (compulsory traffic): inputs read once + output
/// written once. Used for arithmetic-intensity estimates.
[[nodiscard]] double matvec_bytes(std::size_t m, std::size_t n) noexcept;
[[nodiscard]] double matmul_bytes(std::size_t m, std::size_t n,
                                  std::size_t k) noexcept;
[[nodiscard]] double conv1d_bytes(std::size_t n, std::size_t k) noexcept;
[[nodiscard]] double conv2d_bytes(std::size_t h, std::size_t w, std::size_t kh,
                                  std::size_t kw) noexcept;

namespace detail {

/// One compiled backend: the five ops instantiated from the shared
/// microkernel template (kernels_micro.hpp) for a concrete vector ISA.
struct Backend {
  Matrix (*matmul)(const Matrix &, const Matrix &, const KernelParams &,
                   parallel::ThreadPool &);
  Matrix (*matmul_transposed)(const Matrix &, const Matrix &,
                              const KernelParams &, parallel::ThreadPool &);
  std::vector<double> (*matvec)(const Matrix &, std::span<const double>,
                                const KernelParams &, parallel::ThreadPool &);
  std::vector<double> (*conv1d)(std::span<const double>,
                                std::span<const double>, const KernelParams &,
                                parallel::ThreadPool &);
  Matrix (*conv2d)(const Matrix &, const Matrix &, const KernelParams &,
                   parallel::ThreadPool &);
};

/// Portable scalar instantiation (always present).
[[nodiscard]] const Backend &scalar_backend() noexcept;

/// AVX2+FMA instantiation; nullptr when not compiled into this binary.
[[nodiscard]] const Backend *avx2_backend() noexcept;

}  // namespace detail

}  // namespace treu::tensor
