#include "treu/tensor/pca.hpp"

#include <cmath>
#include <stdexcept>

#include "treu/tensor/kernels.hpp"
#include "treu/tensor/linalg.hpp"

namespace treu::tensor {

namespace {

// Sign normalization: make the largest-magnitude coordinate positive so
// component directions are stable across eigen backends and reruns.
void normalize_sign(Matrix &components) {
  for (std::size_t k = 0; k < components.rows(); ++k) {
    auto row = components.row(k);
    std::size_t arg = 0;
    for (std::size_t j = 1; j < row.size(); ++j) {
      if (std::fabs(row[j]) > std::fabs(row[arg])) arg = j;
    }
    if (row[arg] < 0.0) {
      for (auto &v : row) v = -v;
    }
  }
}

}  // namespace

Pca Pca::fit(const Matrix &observations, std::size_t max_components) {
  Pca pca;
  const std::size_t n = observations.rows();
  const std::size_t d = observations.cols();
  if (d == 0 || n < 2) {
    auto [cov_empty, means_empty] = covariance(observations);
    pca.mean_ = std::move(means_empty);
    pca.components_ = Matrix(0, d);
    return pca;
  }

  if (d <= n) {
    // Primal: eigendecompose the d x d covariance.
    auto [cov, means] = covariance(observations);
    pca.mean_ = std::move(means);
    EigenResult eig = eigen_symmetric(cov);
    std::size_t keep = d;
    if (max_components != 0) keep = std::min(keep, max_components);
    // Covariance eigenvalues can go slightly negative from roundoff; clamp.
    pca.eigenvalues_.assign(eig.values.begin(), eig.values.begin() + keep);
    for (auto &v : pca.eigenvalues_) v = std::max(v, 0.0);
    pca.components_ = Matrix(keep, d);
    for (std::size_t k = 0; k < keep; ++k) {
      for (std::size_t j = 0; j < d; ++j) {
        pca.components_(k, j) = eig.vectors(j, k);
      }
    }
  } else {
    // Dual (Gram) trick for the wide case (few samples, many features —
    // shape atlases live here): the nonzero spectrum of X^T X / (n-1)
    // equals that of the n x n Gram matrix X X^T / (n-1), and components
    // recover as X^T u / sqrt((n-1) lambda). Jacobi on n x n instead of
    // d x d turns minutes into microseconds when d >> n.
    pca.mean_.assign(d, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      const auto row = observations.row(i);
      for (std::size_t j = 0; j < d; ++j) pca.mean_[j] += row[j];
    }
    for (auto &m : pca.mean_) m /= static_cast<double>(n);
    Matrix centered(n, d);
    for (std::size_t i = 0; i < n; ++i) {
      const auto src = observations.row(i);
      auto dst = centered.row(i);
      for (std::size_t j = 0; j < d; ++j) dst[j] = src[j] - pca.mean_[j];
    }
    Matrix gram = matmul_transposed(centered, centered);
    gram *= 1.0 / static_cast<double>(n - 1);
    EigenResult eig = eigen_symmetric(gram);
    std::size_t keep = n;  // at most n nonzero modes (n-1 after centering)
    if (max_components != 0) keep = std::min(keep, max_components);
    pca.eigenvalues_.assign(eig.values.begin(), eig.values.begin() + keep);
    for (auto &v : pca.eigenvalues_) v = std::max(v, 0.0);
    pca.components_ = Matrix(keep, d);
    for (std::size_t k = 0; k < keep; ++k) {
      const double lambda = pca.eigenvalues_[k];
      if (lambda <= 1e-14) continue;  // null direction: leave as zero row
      const double scale =
          1.0 / std::sqrt(static_cast<double>(n - 1) * lambda);
      for (std::size_t j = 0; j < d; ++j) {
        double s = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
          s += centered(i, j) * eig.vectors(i, k);
        }
        pca.components_(k, j) = s * scale;
      }
    }
  }
  normalize_sign(pca.components_);
  return pca;
}

double Pca::explained_variance_ratio(std::size_t k) const {
  double total = 0.0;
  for (double v : eigenvalues_) total += v;
  if (total <= 0.0) return k >= eigenvalues_.size() ? 1.0 : 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < std::min(k, eigenvalues_.size()); ++i) {
    acc += eigenvalues_[i];
  }
  return acc / total;
}

std::size_t Pca::modes_for_variance(double fraction) const {
  for (std::size_t k = 0; k <= eigenvalues_.size(); ++k) {
    if (explained_variance_ratio(k) >= fraction) return k;
  }
  return eigenvalues_.size();
}

std::vector<double> Pca::transform(std::span<const double> x) const {
  if (x.size() != mean_.size()) {
    throw std::invalid_argument("Pca::transform: dimension mismatch");
  }
  std::vector<double> scores(n_components(), 0.0);
  for (std::size_t k = 0; k < n_components(); ++k) {
    double s = 0.0;
    const auto comp = components_.row(k);
    for (std::size_t j = 0; j < x.size(); ++j) s += comp[j] * (x[j] - mean_[j]);
    scores[k] = s;
  }
  return scores;
}

Matrix Pca::transform(const Matrix &observations) const {
  Matrix out(observations.rows(), n_components());
  for (std::size_t i = 0; i < observations.rows(); ++i) {
    const auto scores = transform(observations.row(i));
    for (std::size_t k = 0; k < scores.size(); ++k) out(i, k) = scores[k];
  }
  return out;
}

std::vector<double> Pca::inverse_transform(
    std::span<const double> scores) const {
  std::vector<double> x = mean_;
  const std::size_t k_max = std::min(scores.size(), n_components());
  for (std::size_t k = 0; k < k_max; ++k) {
    const auto comp = components_.row(k);
    for (std::size_t j = 0; j < x.size(); ++j) x[j] += scores[k] * comp[j];
  }
  return x;
}

std::vector<double> Pca::mode_sample(std::size_t k, double stddevs) const {
  if (k >= n_components()) {
    throw std::out_of_range("Pca::mode_sample: component index");
  }
  std::vector<double> scores(n_components(), 0.0);
  scores[k] = stddevs * std::sqrt(eigenvalues_[k]);
  return inverse_transform(scores);
}

}  // namespace treu::tensor
