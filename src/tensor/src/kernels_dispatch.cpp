// The Kernel dispatch surface: ISA resolution, backend selection, the typed
// convenience entry points, and the deprecated free-function shims.
//
// Routing invariant: a Scalar-ISA request with no register tile runs the
// legacy loop nests (kernels.cpp) and is bitwise-identical to the pre-SIMD
// library — published schedules and golden digests stay valid. Anything
// that names a register tile or a vector ISA runs the microkernel
// templates (kernels_micro.hpp) through the Backend table for the
// effective ISA.

#include <atomic>
#include <stdexcept>
#include <string>

#include "kernels_legacy.hpp"
#include "kernels_micro.hpp"
#include "treu/obs/obs.hpp"
#include "treu/tensor/kernels.hpp"

namespace treu::tensor {
namespace {

std::atomic<std::uint64_t> g_isa_fallbacks{0};

/// No knob set at all: the request is one of the historical naive entry
/// points, which must keep their exact accumulation pattern.
bool pure_default(const KernelParams &p) noexcept {
  return p.tile_i == 0 && p.tile_j == 0 && p.tile_k == 0 && p.unroll <= 1 &&
         !p.parallel;
}

const detail::Backend &backend_for(Isa isa) noexcept {
  if (isa == Isa::Avx2) {
    if (const detail::Backend *b = detail::avx2_backend()) return *b;
  }
  return detail::scalar_backend();
}

const Matrix &require(const Matrix *m, const char *op) {
  if (m == nullptr) {
    throw std::invalid_argument(std::string(op) + ": missing matrix operand");
  }
  return *m;
}

void count_fallback(Isa requested, Isa effective) {
  if (requested == Isa::Avx2 && effective == Isa::Scalar) {
    g_isa_fallbacks.fetch_add(1, std::memory_order_relaxed);
    TREU_OBS_COUNTER_ADD("sched.isa_fallback", 1);
  }
}

}  // namespace

namespace detail {

const Backend &scalar_backend() noexcept {
  static const Backend kScalar = micro::make_backend<micro::ScalarVec>();
  return kScalar;
}

}  // namespace detail

bool Kernel::available(Isa isa) {
  if (const auto pin = forced_isa()) return isa == *pin;
  if (isa == Isa::Scalar) return true;
  return cpu_supports(Isa::Avx2) && avx2_backend_compiled();
}

Isa Kernel::best() { return available(Isa::Avx2) ? Isa::Avx2 : Isa::Scalar; }

Isa Kernel::effective(Isa requested) {
  if (const auto pin = forced_isa()) return *pin;
  if (requested == Isa::Avx2 &&
      !(cpu_supports(Isa::Avx2) && avx2_backend_compiled())) {
    return Isa::Scalar;
  }
  return requested;
}

KernelParams Kernel::fast_params() {
  KernelParams p;
  p.isa = best();
  // 6x16 measured fastest across sizes on AVX2 (the wide tile amortizes B
  // loads even though 24 accumulators spill); matmul results are bitwise
  // invariant to the register-tile shape, so this is a pure speed knob.
  p.rtile_m = 6;
  p.rtile_n = 16;
  return p;
}

parallel::ThreadPool &Kernel::default_pool() {
  static parallel::ThreadPool pool{std::size_t{0}};
  return pool;
}

std::uint64_t Kernel::isa_fallbacks() noexcept {
  return g_isa_fallbacks.load(std::memory_order_relaxed);
}

KernelResult Kernel::run(KernelOp op, const KernelArgs &args,
                         const KernelParams &params,
                         parallel::ThreadPool &pool) {
  const Isa isa = effective(params.isa);
  count_fallback(params.isa, isa);
  const bool micro_path =
      isa != Isa::Scalar || params.rtile_m != 0 || params.rtile_n != 0;
  KernelResult out;
  switch (op) {
    case KernelOp::MatVec: {
      const Matrix &a = require(args.a, "matvec");
      if (a.cols() != args.x.size()) {
        throw std::invalid_argument("matvec: dimension mismatch");
      }
      if (micro_path) {
        out.vec = backend_for(isa).matvec(a, args.x, params, pool);
      } else if (pure_default(params)) {
        out.vec = detail::legacy_matvec(a, args.x);
      } else {
        out.vec = detail::legacy_matvec_opt(a, args.x, params, pool);
      }
      break;
    }
    case KernelOp::MatMul: {
      const Matrix &a = require(args.a, "matmul");
      const Matrix &b = require(args.b, "matmul");
      if (a.cols() != b.rows()) {
        throw std::invalid_argument("matmul: inner dimensions differ");
      }
      if (micro_path) {
        out.matrix = backend_for(isa).matmul(a, b, params, pool);
      } else if (pure_default(params)) {
        out.matrix = detail::legacy_matmul_ordered(a, b, params.order);
      } else {
        out.matrix = detail::legacy_matmul_opt(a, b, params, pool);
      }
      break;
    }
    case KernelOp::MatMulTransposed: {
      const Matrix &a = require(args.a, "matmul_transposed");
      const Matrix &b = require(args.b, "matmul_transposed");
      if (a.cols() != b.cols()) {
        throw std::invalid_argument(
            "matmul_transposed: inner dimensions differ");
      }
      if (micro_path) {
        out.matrix = backend_for(isa).matmul_transposed(a, b, params, pool);
      } else if (pure_default(params)) {
        out.matrix = detail::legacy_matmul_transposed(a, b);
      } else {
        out.matrix = detail::legacy_matmul_transposed_opt(a, b, params, pool);
      }
      break;
    }
    case KernelOp::Conv1D: {
      if (args.w.empty() || args.x.size() < args.w.size()) break;
      if (micro_path) {
        out.vec = backend_for(isa).conv1d(args.x, args.w, params, pool);
      } else if (pure_default(params)) {
        out.vec = detail::legacy_conv1d(args.x, args.w);
      } else {
        out.vec = detail::legacy_conv1d_opt(args.x, args.w, params, pool);
      }
      break;
    }
    case KernelOp::Conv2D: {
      const Matrix &input = require(args.a, "conv2d");
      const Matrix &kernel = require(args.b, "conv2d");
      if (kernel.rows() == 0 || kernel.cols() == 0 ||
          input.rows() < kernel.rows() || input.cols() < kernel.cols()) {
        break;
      }
      if (micro_path) {
        out.matrix = backend_for(isa).conv2d(input, kernel, params, pool);
      } else if (pure_default(params)) {
        out.matrix = detail::legacy_conv2d(input, kernel);
      } else {
        out.matrix = detail::legacy_conv2d_opt(input, kernel, params, pool);
      }
      break;
    }
  }
  return out;
}

std::vector<double> Kernel::matvec(const Matrix &a, std::span<const double> x,
                                   const KernelParams &params,
                                   parallel::ThreadPool &pool) {
  KernelArgs args;
  args.a = &a;
  args.x = x;
  return run(KernelOp::MatVec, args, params, pool).vec;
}

Matrix Kernel::matmul(const Matrix &a, const Matrix &b,
                      const KernelParams &params, parallel::ThreadPool &pool) {
  KernelArgs args;
  args.a = &a;
  args.b = &b;
  return run(KernelOp::MatMul, args, params, pool).matrix;
}

Matrix Kernel::matmul_transposed(const Matrix &a, const Matrix &b,
                                 const KernelParams &params,
                                 parallel::ThreadPool &pool) {
  KernelArgs args;
  args.a = &a;
  args.b = &b;
  return run(KernelOp::MatMulTransposed, args, params, pool).matrix;
}

std::vector<double> Kernel::conv1d(std::span<const double> input,
                                   std::span<const double> weights,
                                   const KernelParams &params,
                                   parallel::ThreadPool &pool) {
  KernelArgs args;
  args.x = input;
  args.w = weights;
  return run(KernelOp::Conv1D, args, params, pool).vec;
}

Matrix Kernel::conv2d(const Matrix &input, const Matrix &kernel,
                      const KernelParams &params, parallel::ThreadPool &pool) {
  KernelArgs args;
  args.a = &input;
  args.b = &kernel;
  return run(KernelOp::Conv2D, args, params, pool).matrix;
}

// --- deprecated shims -------------------------------------------------------

std::vector<double> matvec(const Matrix &a, std::span<const double> x) {
  return Kernel::matvec(a, x, KernelParams{}, Kernel::default_pool());
}

std::vector<double> matvec_opt(const Matrix &a, std::span<const double> x,
                               const KernelParams &params,
                               parallel::ThreadPool &pool) {
  return Kernel::matvec(a, x, params, pool);
}

Matrix matmul(const Matrix &a, const Matrix &b) {
  KernelParams params;
  params.order = LoopOrder::IJK;
  return Kernel::matmul(a, b, params, Kernel::default_pool());
}

Matrix matmul_ordered(const Matrix &a, const Matrix &b, LoopOrder order) {
  KernelParams params;
  params.order = order;
  return Kernel::matmul(a, b, params, Kernel::default_pool());
}

Matrix matmul_opt(const Matrix &a, const Matrix &b, const KernelParams &params,
                  parallel::ThreadPool &pool) {
  return Kernel::matmul(a, b, params, pool);
}

Matrix matmul_transposed(const Matrix &a, const Matrix &b) {
  return Kernel::matmul_transposed(a, b, KernelParams{},
                                   Kernel::default_pool());
}

Matrix matmul_transposed_opt(const Matrix &a, const Matrix &b,
                             const KernelParams &params,
                             parallel::ThreadPool &pool) {
  return Kernel::matmul_transposed(a, b, params, pool);
}

std::vector<double> conv1d(std::span<const double> input,
                           std::span<const double> weights) {
  return Kernel::conv1d(input, weights, KernelParams{},
                        Kernel::default_pool());
}

std::vector<double> conv1d_opt(std::span<const double> input,
                               std::span<const double> weights,
                               const KernelParams &params,
                               parallel::ThreadPool &pool) {
  return Kernel::conv1d(input, weights, params, pool);
}

Matrix conv2d(const Matrix &input, const Matrix &kernel) {
  return Kernel::conv2d(input, kernel, KernelParams{}, Kernel::default_pool());
}

Matrix conv2d_opt(const Matrix &input, const Matrix &kernel,
                  const KernelParams &params, parallel::ThreadPool &pool) {
  return Kernel::conv2d(input, kernel, params, pool);
}

}  // namespace treu::tensor
