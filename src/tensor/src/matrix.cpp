#include "treu/tensor/matrix.hpp"

#include <cmath>
#include <limits>

namespace treu::tensor {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto &r : rows) {
    if (r.size() != cols_) {
      throw std::invalid_argument("Matrix: ragged initializer list");
    }
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

double &Matrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return (*this)(r, c);
}

double Matrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return (*this)(r, c);
}

void Matrix::fill(double v) noexcept {
  for (auto &x : data_) x = v;
}

Matrix &Matrix::operator+=(const Matrix &other) {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    throw std::invalid_argument("Matrix += shape mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix &Matrix::operator-=(const Matrix &other) {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    throw std::invalid_argument("Matrix -= shape mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix &Matrix::operator*=(double s) noexcept {
  for (auto &x : data_) x *= s;
  return *this;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

std::vector<double> Matrix::column(std::size_t c) const {
  std::vector<double> out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

double Matrix::frobenius_norm() const noexcept {
  double s = 0.0;
  for (double x : data_) s += x * x;
  return std::sqrt(s);
}

double Matrix::max_abs_diff(const Matrix &other) const noexcept {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    return std::numeric_limits<double>::infinity();
  }
  double m = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    m = std::max(m, std::fabs(data_[i] - other.data_[i]));
  }
  return m;
}

core::Digest Matrix::digest() const {
  core::Sha256 h;
  h.update("matrix-v1");
  h.update_value(rows_);
  h.update_value(cols_);
  h.update(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t *>(data_.data()),
      data_.size() * sizeof(double)));
  return h.finish();
}

Matrix Matrix::random_uniform(std::size_t rows, std::size_t cols,
                              core::Rng &rng, double lo, double hi) {
  Matrix m(rows, cols);
  for (auto &x : m.data_) x = rng.uniform(lo, hi);
  return m;
}

Matrix Matrix::random_normal(std::size_t rows, std::size_t cols,
                             core::Rng &rng, double stddev) {
  Matrix m(rows, cols);
  for (auto &x : m.data_) x = rng.normal(0.0, stddev);
  return m;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Tensor3::channel(std::size_t c) const {
  Matrix m(h_, w_);
  for (std::size_t y = 0; y < h_; ++y) {
    for (std::size_t x = 0; x < w_; ++x) m(y, x) = (*this)(c, y, x);
  }
  return m;
}

}  // namespace treu::tensor
