#include "treu/tensor/linalg.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace treu::tensor {
namespace {

// Sort (value, column) pairs descending by value and permute columns of V.
void sort_descending(std::vector<double> &values, Matrix &vectors) {
  const std::size_t n = values.size();
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  std::stable_sort(idx.begin(), idx.end(),
                   [&](std::size_t a, std::size_t b) { return values[a] > values[b]; });
  std::vector<double> sorted_values(n);
  Matrix sorted_vectors(vectors.rows(), n);
  for (std::size_t j = 0; j < n; ++j) {
    sorted_values[j] = values[idx[j]];
    for (std::size_t i = 0; i < vectors.rows(); ++i) {
      sorted_vectors(i, j) = vectors(i, idx[j]);
    }
  }
  values = std::move(sorted_values);
  vectors = std::move(sorted_vectors);
}

}  // namespace

EigenResult eigen_symmetric(const Matrix &a, double tol,
                            std::size_t max_sweeps, double symmetry_tol) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("eigen_symmetric: matrix not square");
  }
  const std::size_t n = a.rows();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (std::fabs(a(i, j) - a(j, i)) > symmetry_tol) {
        throw std::invalid_argument("eigen_symmetric: matrix not symmetric");
      }
    }
  }

  Matrix d = a;
  Matrix v = Matrix::identity(n);
  EigenResult result;

  for (std::size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) off += d(i, j) * d(i, j);
    }
    result.sweeps = sweep;
    if (std::sqrt(off) <= tol * std::max(1.0, d.frobenius_norm())) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = d(p, q);
        if (std::fabs(apq) < 1e-300) continue;
        const double app = d(p, p);
        const double aqq = d(q, q);
        const double tau = (aqq - app) / (2.0 * apq);
        const double t = (tau >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(tau) + std::sqrt(1.0 + tau * tau));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = t * c;
        // Apply the rotation G(p, q, theta) on both sides of D and
        // accumulate it into V.
        for (std::size_t k = 0; k < n; ++k) {
          const double dkp = d(k, p);
          const double dkq = d(k, q);
          d(k, p) = c * dkp - s * dkq;
          d(k, q) = s * dkp + c * dkq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double dpk = d(p, k);
          const double dqk = d(q, k);
          d(p, k) = c * dpk - s * dqk;
          d(q, k) = s * dpk + c * dqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  result.values.resize(n);
  for (std::size_t i = 0; i < n; ++i) result.values[i] = d(i, i);
  result.vectors = std::move(v);
  sort_descending(result.values, result.vectors);
  return result;
}

SvdResult svd(const Matrix &a, double tol, std::size_t max_sweeps) {
  // One-sided Jacobi works on columns; ensure m >= n by transposing.
  if (a.rows() < a.cols()) {
    SvdResult t = svd(a.transposed(), tol, max_sweeps);
    return SvdResult{std::move(t.v), std::move(t.singular), std::move(t.u),
                     t.sweeps};
  }
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  Matrix u = a;                       // becomes U * diag(sigma) column-wise
  Matrix v = Matrix::identity(n);
  SvdResult result;

  for (std::size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    bool converged = true;
    result.sweeps = sweep + 1;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        double alpha = 0.0, beta = 0.0, gamma = 0.0;
        for (std::size_t i = 0; i < m; ++i) {
          alpha += u(i, p) * u(i, p);
          beta += u(i, q) * u(i, q);
          gamma += u(i, p) * u(i, q);
        }
        if (std::fabs(gamma) > tol * std::sqrt(alpha * beta) &&
            std::fabs(gamma) > 1e-300) {
          converged = false;
          const double zeta = (beta - alpha) / (2.0 * gamma);
          const double t = (zeta >= 0.0 ? 1.0 : -1.0) /
                           (std::fabs(zeta) + std::sqrt(1.0 + zeta * zeta));
          const double c = 1.0 / std::sqrt(1.0 + t * t);
          const double s = c * t;
          for (std::size_t i = 0; i < m; ++i) {
            const double uip = u(i, p);
            const double uiq = u(i, q);
            u(i, p) = c * uip - s * uiq;
            u(i, q) = s * uip + c * uiq;
          }
          for (std::size_t i = 0; i < n; ++i) {
            const double vip = v(i, p);
            const double viq = v(i, q);
            v(i, p) = c * vip - s * viq;
            v(i, q) = s * vip + c * viq;
          }
        }
      }
    }
    if (converged) break;
  }

  result.singular.resize(n);
  result.u = Matrix(m, n);
  for (std::size_t j = 0; j < n; ++j) {
    double norm = 0.0;
    for (std::size_t i = 0; i < m; ++i) norm += u(i, j) * u(i, j);
    norm = std::sqrt(norm);
    result.singular[j] = norm;
    if (norm > 0.0) {
      for (std::size_t i = 0; i < m; ++i) result.u(i, j) = u(i, j) / norm;
    }
  }
  result.v = std::move(v);
  // Sort descending, permuting U and V columns together.
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  std::stable_sort(idx.begin(), idx.end(), [&](std::size_t x, std::size_t y) {
    return result.singular[x] > result.singular[y];
  });
  SvdResult sorted;
  sorted.sweeps = result.sweeps;
  sorted.singular.resize(n);
  sorted.u = Matrix(m, n);
  sorted.v = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    sorted.singular[j] = result.singular[idx[j]];
    for (std::size_t i = 0; i < m; ++i) sorted.u(i, j) = result.u(i, idx[j]);
    for (std::size_t i = 0; i < n; ++i) sorted.v(i, j) = result.v(i, idx[j]);
  }
  return sorted;
}

Matrix cholesky(const Matrix &a) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("cholesky: matrix not square");
  }
  const std::size_t n = a.rows();
  Matrix l(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      if (i == j) {
        if (s <= 0.0) {
          throw std::invalid_argument("cholesky: matrix not SPD");
        }
        l(i, j) = std::sqrt(s);
      } else {
        l(i, j) = s / l(j, j);
      }
    }
  }
  return l;
}

std::vector<double> solve_spd(const Matrix &a, std::vector<double> b) {
  const Matrix l = cholesky(a);
  const std::size_t n = l.rows();
  if (b.size() != n) throw std::invalid_argument("solve_spd: size mismatch");
  // Forward substitution L y = b.
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= l(i, k) * b[k];
    b[i] = s / l(i, i);
  }
  // Back substitution L^T x = y.
  for (std::size_t ii = n; ii-- > 0;) {
    double s = b[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= l(k, ii) * b[k];
    b[ii] = s / l(ii, ii);
  }
  return b;
}

std::vector<double> solve(Matrix a, std::vector<double> b) {
  if (a.rows() != a.cols() || b.size() != a.rows()) {
    throw std::invalid_argument("solve: shape mismatch");
  }
  const std::size_t n = a.rows();
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a(r, col)) > std::fabs(a(pivot, col))) pivot = r;
    }
    if (std::fabs(a(pivot, col)) < 1e-300) {
      throw std::invalid_argument("solve: singular matrix");
    }
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a(col, c), a(pivot, c));
      std::swap(b[col], b[pivot]);
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a(r, col) / a(col, col);
      if (f == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a(r, c) -= f * a(col, c);
      b[r] -= f * b[col];
    }
  }
  for (std::size_t ii = n; ii-- > 0;) {
    double s = b[ii];
    for (std::size_t c = ii + 1; c < n; ++c) s -= a(ii, c) * b[c];
    b[ii] = s / a(ii, ii);
  }
  return b;
}

CovarianceResult covariance(const Matrix &observations) {
  const std::size_t n = observations.rows();
  const std::size_t d = observations.cols();
  CovarianceResult out;
  out.means.assign(d, 0.0);
  out.covariance = Matrix(d, d, 0.0);
  if (n == 0) return out;
  for (std::size_t i = 0; i < n; ++i) {
    const auto row = observations.row(i);
    for (std::size_t j = 0; j < d; ++j) out.means[j] += row[j];
  }
  for (auto &m : out.means) m /= static_cast<double>(n);
  if (n < 2) return out;
  for (std::size_t i = 0; i < n; ++i) {
    const auto row = observations.row(i);
    for (std::size_t j = 0; j < d; ++j) {
      const double dj = row[j] - out.means[j];
      for (std::size_t k = j; k < d; ++k) {
        out.covariance(j, k) += dj * (row[k] - out.means[k]);
      }
    }
  }
  const double denom = static_cast<double>(n - 1);
  for (std::size_t j = 0; j < d; ++j) {
    for (std::size_t k = j; k < d; ++k) {
      out.covariance(j, k) /= denom;
      out.covariance(k, j) = out.covariance(j, k);
    }
  }
  return out;
}

TopEigen power_iteration(const Matrix &a, double tol, std::size_t max_iter) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("power_iteration: matrix not square");
  }
  const std::size_t n = a.rows();
  TopEigen out;
  if (n == 0) return out;
  // Deterministic start: normalized ramp (never orthogonal to the top
  // eigenvector of a generic matrix; restarts below handle the pathological
  // case).
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = 1.0 + static_cast<double>(i % 7);
  double norm = 0.0;
  for (double v : x) norm += v * v;
  norm = std::sqrt(norm);
  for (auto &v : x) v /= norm;

  double lambda = 0.0;
  for (std::size_t it = 0; it < max_iter; ++it) {
    out.iterations = it + 1;
    std::vector<double> y(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      const auto row = a.row(i);
      double s = 0.0;
      for (std::size_t j = 0; j < n; ++j) s += row[j] * x[j];
      y[i] = s;
    }
    double ynorm = 0.0;
    for (double v : y) ynorm += v * v;
    ynorm = std::sqrt(ynorm);
    if (ynorm < 1e-300) break;  // a ~ 0
    for (auto &v : y) v /= ynorm;
    double new_lambda = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const auto row = a.row(i);
      double s = 0.0;
      for (std::size_t j = 0; j < n; ++j) s += row[j] * y[j];
      new_lambda += y[i] * s;
    }
    double delta = 0.0;
    for (std::size_t i = 0; i < n; ++i) delta += (y[i] - x[i]) * (y[i] - x[i]);
    x = std::move(y);
    const bool done = std::sqrt(delta) < tol || std::fabs(new_lambda - lambda) <
                                                    tol * std::max(1.0, std::fabs(new_lambda));
    lambda = new_lambda;
    if (done) break;
  }
  out.value = lambda;
  out.vector = std::move(x);
  return out;
}

}  // namespace treu::tensor
