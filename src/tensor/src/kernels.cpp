// Legacy scalar kernel bodies (see kernels_legacy.hpp for why they are kept
// verbatim) plus the kernel-agnostic pieces: matmul_atb and the
// flop/byte-count helpers. The public free functions and the Kernel
// dispatch surface live in kernels_dispatch.cpp.

#include <algorithm>
#include <stdexcept>

#include "kernels_legacy.hpp"
#include "treu/tensor/kernels.hpp"

namespace treu::tensor {
namespace {

void check_matmul_shapes(const Matrix &a, const Matrix &b) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("matmul: inner dimensions differ");
  }
}

std::size_t tile_or(std::size_t tile, std::size_t extent) noexcept {
  return tile == 0 ? extent : std::min(tile, extent);
}

// Unrolled compensated-free dot product over [0, n).
inline double dot_unrolled(const double *x, const double *y, std::size_t n,
                           std::size_t unroll) noexcept {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  std::size_t i = 0;
  switch (unroll) {
    case 8:
    case 4:
      for (; i + 4 <= n; i += 4) {
        s0 += x[i] * y[i];
        s1 += x[i + 1] * y[i + 1];
        s2 += x[i + 2] * y[i + 2];
        s3 += x[i + 3] * y[i + 3];
      }
      break;
    case 2:
      for (; i + 2 <= n; i += 2) {
        s0 += x[i] * y[i];
        s1 += x[i + 1] * y[i + 1];
      }
      break;
    default:
      break;
  }
  for (; i < n; ++i) s0 += x[i] * y[i];
  return (s0 + s1) + (s2 + s3);
}

// One (it, jt, kt) tile of C += A B with an ikj micro-loop.
inline void matmul_tile(const Matrix &a, const Matrix &b, Matrix &c,
                        std::size_t i0, std::size_t i1, std::size_t j0,
                        std::size_t j1, std::size_t k0, std::size_t k1,
                        std::size_t unroll) noexcept {
  for (std::size_t i = i0; i < i1; ++i) {
    double *crow = c.row(i).data();
    for (std::size_t k = k0; k < k1; ++k) {
      const double aik = a(i, k);
      const double *brow = b.row(k).data();
      std::size_t j = j0;
      if (unroll >= 4) {
        for (; j + 4 <= j1; j += 4) {
          crow[j] += aik * brow[j];
          crow[j + 1] += aik * brow[j + 1];
          crow[j + 2] += aik * brow[j + 2];
          crow[j + 3] += aik * brow[j + 3];
        }
      } else if (unroll == 2) {
        for (; j + 2 <= j1; j += 2) {
          crow[j] += aik * brow[j];
          crow[j + 1] += aik * brow[j + 1];
        }
      }
      for (; j < j1; ++j) crow[j] += aik * brow[j];
    }
  }
}

}  // namespace

const char *to_string(LoopOrder order) noexcept {
  switch (order) {
    case LoopOrder::IJK: return "ijk";
    case LoopOrder::IKJ: return "ikj";
    case LoopOrder::JIK: return "jik";
    case LoopOrder::JKI: return "jki";
    case LoopOrder::KIJ: return "kij";
    case LoopOrder::KJI: return "kji";
  }
  return "?";
}

const char *to_string(KernelOp op) noexcept {
  switch (op) {
    case KernelOp::MatVec: return "matvec";
    case KernelOp::Conv1D: return "conv1d";
    case KernelOp::Conv2D: return "conv2d";
    case KernelOp::MatMul: return "matmul";
    case KernelOp::MatMulTransposed: return "matmul_transposed";
  }
  return "?";
}

namespace detail {

std::vector<double> legacy_matvec(const Matrix &a, std::span<const double> x) {
  if (a.cols() != x.size()) {
    throw std::invalid_argument("matvec: dimension mismatch");
  }
  std::vector<double> y(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double s = 0.0;
    const auto row = a.row(i);
    for (std::size_t j = 0; j < a.cols(); ++j) s += row[j] * x[j];
    y[i] = s;
  }
  return y;
}

std::vector<double> legacy_matvec_opt(const Matrix &a,
                                      std::span<const double> x,
                                      const KernelParams &params,
                                      parallel::ThreadPool &pool) {
  if (a.cols() != x.size()) {
    throw std::invalid_argument("matvec_opt: dimension mismatch");
  }
  std::vector<double> y(a.rows(), 0.0);
  const std::size_t ti = tile_or(params.tile_i, a.rows());
  const auto body = [&](std::size_t block) {
    const std::size_t i0 = block * ti;
    const std::size_t i1 = std::min(i0 + ti, a.rows());
    for (std::size_t i = i0; i < i1; ++i) {
      y[i] = dot_unrolled(a.row(i).data(), x.data(), a.cols(), params.unroll);
    }
  };
  const std::size_t blocks = (a.rows() + ti - 1) / ti;
  if (params.parallel) {
    pool.parallel_for(0, blocks, body, 1);
  } else {
    for (std::size_t b = 0; b < blocks; ++b) body(b);
  }
  return y;
}

Matrix legacy_matmul_ordered(const Matrix &a, const Matrix &b,
                             LoopOrder order) {
  check_matmul_shapes(a, b);
  const std::size_t m = a.rows(), n = b.cols(), kk = a.cols();
  Matrix c(m, n, 0.0);
  // Each ordering is written out explicitly so the loop structure (and its
  // access pattern) is exactly what the schedule says — no hidden
  // normalization.
  switch (order) {
    case LoopOrder::IJK:
      for (std::size_t i = 0; i < m; ++i)
        for (std::size_t j = 0; j < n; ++j) {
          double s = 0.0;
          for (std::size_t k = 0; k < kk; ++k) s += a(i, k) * b(k, j);
          c(i, j) = s;
        }
      break;
    case LoopOrder::IKJ:
      for (std::size_t i = 0; i < m; ++i)
        for (std::size_t k = 0; k < kk; ++k) {
          const double aik = a(i, k);
          for (std::size_t j = 0; j < n; ++j) c(i, j) += aik * b(k, j);
        }
      break;
    case LoopOrder::JIK:
      for (std::size_t j = 0; j < n; ++j)
        for (std::size_t i = 0; i < m; ++i) {
          double s = 0.0;
          for (std::size_t k = 0; k < kk; ++k) s += a(i, k) * b(k, j);
          c(i, j) = s;
        }
      break;
    case LoopOrder::JKI:
      for (std::size_t j = 0; j < n; ++j)
        for (std::size_t k = 0; k < kk; ++k) {
          const double bkj = b(k, j);
          for (std::size_t i = 0; i < m; ++i) c(i, j) += a(i, k) * bkj;
        }
      break;
    case LoopOrder::KIJ:
      for (std::size_t k = 0; k < kk; ++k)
        for (std::size_t i = 0; i < m; ++i) {
          const double aik = a(i, k);
          for (std::size_t j = 0; j < n; ++j) c(i, j) += aik * b(k, j);
        }
      break;
    case LoopOrder::KJI:
      for (std::size_t k = 0; k < kk; ++k)
        for (std::size_t j = 0; j < n; ++j) {
          const double bkj = b(k, j);
          for (std::size_t i = 0; i < m; ++i) c(i, j) += a(i, k) * bkj;
        }
      break;
  }
  return c;
}

Matrix legacy_matmul_opt(const Matrix &a, const Matrix &b,
                         const KernelParams &params,
                         parallel::ThreadPool &pool) {
  check_matmul_shapes(a, b);
  const std::size_t m = a.rows(), n = b.cols(), kk = a.cols();
  Matrix c(m, n, 0.0);
  const std::size_t ti = tile_or(params.tile_i, m);
  const std::size_t tj = tile_or(params.tile_j, n);
  const std::size_t tk = tile_or(params.tile_k, kk);
  const std::size_t iblocks = (m + ti - 1) / ti;

  const auto body = [&](std::size_t ib) {
    const std::size_t i0 = ib * ti;
    const std::size_t i1 = std::min(i0 + ti, m);
    for (std::size_t k0 = 0; k0 < kk; k0 += tk) {
      const std::size_t k1 = std::min(k0 + tk, kk);
      for (std::size_t j0 = 0; j0 < n; j0 += tj) {
        const std::size_t j1 = std::min(j0 + tj, n);
        matmul_tile(a, b, c, i0, i1, j0, j1, k0, k1, params.unroll);
      }
    }
  };
  if (params.parallel) {
    pool.parallel_for(0, iblocks, body, 1);
  } else {
    for (std::size_t ib = 0; ib < iblocks; ++ib) body(ib);
  }
  return c;
}

Matrix legacy_matmul_transposed(const Matrix &a, const Matrix &b) {
  if (a.cols() != b.cols()) {
    throw std::invalid_argument("matmul_transposed: inner dimensions differ");
  }
  const std::size_t m = a.rows(), n = b.rows(), kk = a.cols();
  Matrix c(m, n, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < kk; ++k) s += a(i, k) * b(j, k);
      c(i, j) = s;
    }
  }
  return c;
}

Matrix legacy_matmul_transposed_opt(const Matrix &a, const Matrix &b,
                                    const KernelParams &params,
                                    parallel::ThreadPool &pool) {
  if (a.cols() != b.cols()) {
    throw std::invalid_argument("matmul_transposed_opt: inner dimensions differ");
  }
  const std::size_t m = a.rows(), n = b.rows(), kk = a.cols();
  Matrix c(m, n, 0.0);
  const std::size_t ti = tile_or(params.tile_i, m);
  const std::size_t tj = tile_or(params.tile_j, n);
  const std::size_t iblocks = (m + ti - 1) / ti;
  const auto body = [&](std::size_t ib) {
    const std::size_t i0 = ib * ti;
    const std::size_t i1 = std::min(i0 + ti, m);
    for (std::size_t j0 = 0; j0 < n; j0 += tj) {
      const std::size_t j1 = std::min(j0 + tj, n);
      for (std::size_t i = i0; i < i1; ++i) {
        for (std::size_t j = j0; j < j1; ++j) {
          c(i, j) =
              dot_unrolled(a.row(i).data(), b.row(j).data(), kk, params.unroll);
        }
      }
    }
  };
  if (params.parallel) {
    pool.parallel_for(0, iblocks, body, 1);
  } else {
    for (std::size_t ib = 0; ib < iblocks; ++ib) body(ib);
  }
  return c;
}

std::vector<double> legacy_conv1d(std::span<const double> input,
                                  std::span<const double> weights) {
  if (weights.empty() || input.size() < weights.size()) return {};
  const std::size_t out_n = input.size() - weights.size() + 1;
  std::vector<double> out(out_n, 0.0);
  for (std::size_t i = 0; i < out_n; ++i) {
    double s = 0.0;
    for (std::size_t k = 0; k < weights.size(); ++k) s += input[i + k] * weights[k];
    out[i] = s;
  }
  return out;
}

std::vector<double> legacy_conv1d_opt(std::span<const double> input,
                                      std::span<const double> weights,
                                      const KernelParams &params,
                                      parallel::ThreadPool &pool) {
  if (weights.empty() || input.size() < weights.size()) return {};
  const std::size_t out_n = input.size() - weights.size() + 1;
  std::vector<double> out(out_n, 0.0);
  const std::size_t ti = tile_or(params.tile_i, out_n);
  const std::size_t blocks = (out_n + ti - 1) / ti;
  const auto body = [&](std::size_t blk) {
    const std::size_t i0 = blk * ti;
    const std::size_t i1 = std::min(i0 + ti, out_n);
    for (std::size_t i = i0; i < i1; ++i) {
      out[i] = dot_unrolled(input.data() + i, weights.data(), weights.size(),
                            params.unroll);
    }
  };
  if (params.parallel) {
    pool.parallel_for(0, blocks, body, 1);
  } else {
    for (std::size_t b = 0; b < blocks; ++b) body(b);
  }
  return out;
}

Matrix legacy_conv2d(const Matrix &input, const Matrix &kernel) {
  if (kernel.rows() == 0 || kernel.cols() == 0 ||
      input.rows() < kernel.rows() || input.cols() < kernel.cols()) {
    return {};
  }
  const std::size_t oh = input.rows() - kernel.rows() + 1;
  const std::size_t ow = input.cols() - kernel.cols() + 1;
  Matrix out(oh, ow, 0.0);
  for (std::size_t y = 0; y < oh; ++y) {
    for (std::size_t x = 0; x < ow; ++x) {
      double s = 0.0;
      for (std::size_t ky = 0; ky < kernel.rows(); ++ky) {
        for (std::size_t kx = 0; kx < kernel.cols(); ++kx) {
          s += input(y + ky, x + kx) * kernel(ky, kx);
        }
      }
      out(y, x) = s;
    }
  }
  return out;
}

Matrix legacy_conv2d_opt(const Matrix &input, const Matrix &kernel,
                         const KernelParams &params,
                         parallel::ThreadPool &pool) {
  if (kernel.rows() == 0 || kernel.cols() == 0 ||
      input.rows() < kernel.rows() || input.cols() < kernel.cols()) {
    return {};
  }
  const std::size_t oh = input.rows() - kernel.rows() + 1;
  const std::size_t ow = input.cols() - kernel.cols() + 1;
  Matrix out(oh, ow, 0.0);
  const std::size_t ti = tile_or(params.tile_i, oh);
  const std::size_t tj = tile_or(params.tile_j, ow);
  const std::size_t yblocks = (oh + ti - 1) / ti;
  const auto body = [&](std::size_t yb) {
    const std::size_t y0 = yb * ti;
    const std::size_t y1 = std::min(y0 + ti, oh);
    for (std::size_t x0 = 0; x0 < ow; x0 += tj) {
      const std::size_t x1 = std::min(x0 + tj, ow);
      for (std::size_t y = y0; y < y1; ++y) {
        for (std::size_t x = x0; x < x1; ++x) {
          double s = 0.0;
          for (std::size_t ky = 0; ky < kernel.rows(); ++ky) {
            // Rows of the input are contiguous: inner product per kernel row.
            s += dot_unrolled(input.row(y + ky).data() + x,
                              kernel.row(ky).data(), kernel.cols(),
                              params.unroll);
          }
          out(y, x) = s;
        }
      }
    }
  };
  if (params.parallel) {
    pool.parallel_for(0, yblocks, body, 1);
  } else {
    for (std::size_t yb = 0; yb < yblocks; ++yb) body(yb);
  }
  return out;
}

}  // namespace detail

Matrix matmul_atb(const Matrix &a, const Matrix &b) {
  if (a.rows() != b.rows()) {
    throw std::invalid_argument("matmul_atb: row counts differ");
  }
  const std::size_t n = a.rows(), p = a.cols(), q = b.cols();
  Matrix c(p, q, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double *arow = a.row(i).data();
    const double *brow = b.row(i).data();
    for (std::size_t j = 0; j < p; ++j) {
      const double aij = arow[j];
      if (aij == 0.0) continue;  // sparse activations skip whole rows of C
      double *crow = c.row(j).data();
      for (std::size_t k = 0; k < q; ++k) crow[k] += aij * brow[k];
    }
  }
  return c;
}

double matvec_flops(std::size_t m, std::size_t n) noexcept {
  return 2.0 * static_cast<double>(m) * static_cast<double>(n);
}

double matmul_flops(std::size_t m, std::size_t n, std::size_t k) noexcept {
  return 2.0 * static_cast<double>(m) * static_cast<double>(n) *
         static_cast<double>(k);
}

double conv1d_flops(std::size_t n, std::size_t k) noexcept {
  if (n < k) return 0.0;
  return 2.0 * static_cast<double>(n - k + 1) * static_cast<double>(k);
}

double conv2d_flops(std::size_t h, std::size_t w, std::size_t kh,
                    std::size_t kw) noexcept {
  if (h < kh || w < kw) return 0.0;
  return 2.0 * static_cast<double>(h - kh + 1) * static_cast<double>(w - kw + 1) *
         static_cast<double>(kh) * static_cast<double>(kw);
}

double matvec_bytes(std::size_t m, std::size_t n) noexcept {
  return 8.0 * (static_cast<double>(m) * static_cast<double>(n) +
                static_cast<double>(n) + static_cast<double>(m));
}

double matmul_bytes(std::size_t m, std::size_t n, std::size_t k) noexcept {
  return 8.0 * (static_cast<double>(m) * static_cast<double>(k) +
                static_cast<double>(k) * static_cast<double>(n) +
                static_cast<double>(m) * static_cast<double>(n));
}

double conv1d_bytes(std::size_t n, std::size_t k) noexcept {
  if (n < k) return 0.0;
  return 8.0 * (static_cast<double>(n) + static_cast<double>(k) +
                static_cast<double>(n - k + 1));
}

double conv2d_bytes(std::size_t h, std::size_t w, std::size_t kh,
                    std::size_t kw) noexcept {
  if (h < kh || w < kw) return 0.0;
  return 8.0 * (static_cast<double>(h) * static_cast<double>(w) +
                static_cast<double>(kh) * static_cast<double>(kw) +
                static_cast<double>(h - kh + 1) * static_cast<double>(w - kw + 1));
}

}  // namespace treu::tensor
