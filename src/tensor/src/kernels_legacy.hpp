#pragma once

// The pre-SIMD scalar kernel implementations, kept verbatim behind internal
// names. Kernel::run routes Scalar-ISA schedules with no register tile here
// so every schedule that existed before the dispatch redesign — including
// the plain naive entry points — still produces bitwise-identical results.
// Internal to src/tensor; the public surface is kernels.hpp.

#include <span>
#include <vector>

#include "treu/parallel/thread_pool.hpp"
#include "treu/tensor/kernels.hpp"

namespace treu::tensor::detail {

[[nodiscard]] std::vector<double> legacy_matvec(const Matrix &a,
                                                std::span<const double> x);
[[nodiscard]] std::vector<double> legacy_matvec_opt(const Matrix &a,
                                                    std::span<const double> x,
                                                    const KernelParams &params,
                                                    parallel::ThreadPool &pool);
[[nodiscard]] Matrix legacy_matmul_ordered(const Matrix &a, const Matrix &b,
                                           LoopOrder order);
[[nodiscard]] Matrix legacy_matmul_opt(const Matrix &a, const Matrix &b,
                                       const KernelParams &params,
                                       parallel::ThreadPool &pool);
[[nodiscard]] Matrix legacy_matmul_transposed(const Matrix &a, const Matrix &b);
[[nodiscard]] Matrix legacy_matmul_transposed_opt(const Matrix &a,
                                                  const Matrix &b,
                                                  const KernelParams &params,
                                                  parallel::ThreadPool &pool);
[[nodiscard]] std::vector<double> legacy_conv1d(std::span<const double> input,
                                                std::span<const double> weights);
[[nodiscard]] std::vector<double> legacy_conv1d_opt(
    std::span<const double> input, std::span<const double> weights,
    const KernelParams &params, parallel::ThreadPool &pool);
[[nodiscard]] Matrix legacy_conv2d(const Matrix &input, const Matrix &kernel);
[[nodiscard]] Matrix legacy_conv2d_opt(const Matrix &input,
                                       const Matrix &kernel,
                                       const KernelParams &params,
                                       parallel::ThreadPool &pool);

}  // namespace treu::tensor::detail
