// AVX2+FMA instantiation of the shared microkernel templates.
//
// This translation unit is the only one compiled with -mavx2 -mfma (see
// src/tensor/CMakeLists.txt, which also defines TREU_TENSOR_AVX2_BUILD when
// it does so). Nothing here executes unless runtime dispatch has already
// confirmed the CPU supports AVX2+FMA, so the ISA-specific flags are safe:
// the compiler may use AVX2 freely inside these functions, and non-AVX2
// hosts simply never call them.
//
// avx2_backend_compiled() is defined here — next to the object code it
// reports on — so "was the backend built" can never disagree with what the
// binary actually contains.

#include "treu/tensor/cpu_features.hpp"
#include "treu/tensor/kernels.hpp"

#if defined(TREU_TENSOR_AVX2_BUILD) && defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include "kernels_micro.hpp"

namespace treu::tensor {
namespace {

/// Four doubles per register; fma maps to vfmadd (single rounding), matching
/// ScalarVec's std::fma so the two backends agree bitwise on the
/// broadcast-FMA kernels (matmul, conv1d, conv2d).
struct Avx2Vec {
  using Reg = __m256d;
  static constexpr std::size_t kWidth = 4;
  static Reg zero() noexcept { return _mm256_setzero_pd(); }
  static Reg load(const double *p) noexcept { return _mm256_loadu_pd(p); }
  static Reg broadcast(double v) noexcept { return _mm256_set1_pd(v); }
  static Reg fma(Reg a, Reg b, Reg c) noexcept {
    return _mm256_fmadd_pd(a, b, c);
  }
  static void store(double *p, Reg v) noexcept { _mm256_storeu_pd(p, v); }
  /// Pairwise tree: (lane0+lane2) + (lane1+lane3).
  static double hsum(Reg v) noexcept {
    const __m128d lo = _mm256_castpd256_pd128(v);
    const __m128d hi = _mm256_extractf128_pd(v, 1);
    const __m128d sum2 = _mm_add_pd(lo, hi);
    const __m128d swapped = _mm_unpackhi_pd(sum2, sum2);
    return _mm_cvtsd_f64(_mm_add_sd(sum2, swapped));
  }
};

const detail::Backend kAvx2Backend = micro::make_backend<Avx2Vec>();

}  // namespace

bool avx2_backend_compiled() noexcept { return true; }

namespace detail {
const Backend *avx2_backend() noexcept { return &kAvx2Backend; }
}  // namespace detail

}  // namespace treu::tensor

#else  // portable build: no AVX2 object code in this binary

namespace treu::tensor {

bool avx2_backend_compiled() noexcept { return false; }

namespace detail {
const Backend *avx2_backend() noexcept { return nullptr; }
}  // namespace detail

}  // namespace treu::tensor

#endif
