#pragma once

// Register-tiled microkernel templates shared by every vector backend.
//
// Each backend is one `V` policy type (ScalarVec below; Avx2Vec in
// kernels_simd.cpp) describing a register of V::kWidth doubles and the six
// primitive ops the kernels need. The five kernel bodies are templates over
// V, so the portable build and the AVX2 build are literally the same code —
// a backend cannot drift semantically from the fallback because there is
// nothing to drift.
//
// Determinism rules the templates obey (kernels_test relies on them):
//  - Every output element accumulates its k (or tap) contributions in
//    ascending index order via fused multiply-add, regardless of the
//    register-tile shape, the row batch the element sits in, or the
//    parallel partition. A row computed alone is bitwise-identical to the
//    same row inside a batch (serve's batched-vs-per-sample guarantee).
//  - Whether an output column is handled by vector lanes or the scalar
//    remainder loop depends only on the column index and the extent, never
//    on block or chunk boundaries: parallel chunking cannot change results.
//  - ScalarVec::fma is std::fma (single rounding), so scalar and vector
//    lanes round identically: for matmul/conv the scalar and AVX2 backends
//    agree bitwise, not just within ULP bounds.
//
// Dot-style kernels (matvec, matmul_transposed) split the reduction across
// `unroll` lane accumulators and horizontal-sum at the end, which changes
// the summation tree vs the naive reference — those are the ULP-bounded
// (not bitwise) parity cases.
//
// This header is internal to src/tensor; only the Backend tables built in
// kernels_dispatch.cpp / kernels_simd.cpp escape it.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

#include "treu/parallel/thread_pool.hpp"
#include "treu/tensor/kernels.hpp"

namespace treu::tensor::micro {

/// Portable one-double "vector": the scalar backend's policy type.
struct ScalarVec {
  using Reg = double;
  static constexpr std::size_t kWidth = 1;
  static Reg zero() noexcept { return 0.0; }
  static Reg load(const double *p) noexcept { return *p; }
  static Reg broadcast(double v) noexcept { return v; }
  static Reg fma(Reg a, Reg b, Reg c) noexcept { return std::fma(a, b, c); }
  static void store(double *p, Reg v) noexcept { *p = v; }
  static double hsum(Reg v) noexcept { return v; }
};

// --- knob clamps ------------------------------------------------------------

/// Register-tile rows: 0 means backend default (4), otherwise clamp to the
/// instantiated range.
inline std::size_t clamp_rtile_m(std::size_t rtile_m) noexcept {
  if (rtile_m == 0) return 4;
  return std::min<std::size_t>(rtile_m, 8);
}

/// Vectors per register-tile row, derived from the requested tile width in
/// columns. 0 means backend default (2 vectors).
template <class V>
std::size_t clamp_rtile_nv(std::size_t rtile_n) noexcept {
  const std::size_t nv = rtile_n / V::kWidth;
  if (rtile_n == 0) return 2;
  if (nv >= 8) return 8;
  if (nv >= 4) return 4;
  if (nv >= 2) return 2;
  return 1;
}

/// Lane-accumulator count for dot-style kernels, from the unroll knob.
inline std::size_t clamp_acc(std::size_t unroll) noexcept {
  if (unroll >= 8) return 8;
  if (unroll >= 4) return 4;
  if (unroll >= 2) return 2;
  return 1;
}

// --- matmul microkernel -----------------------------------------------------

/// C[0..MR)x[0..NV*W) += A[0..MR)x[k0..k1) * B[k0..k1)x[0..NV*W).
/// `a` points at the tile's first row of A (stride lda), `b` at column 0 of
/// the tile's B panel (stride ldb; rows indexed by absolute k), `c` at the
/// tile's top-left output element (stride ldc). All loads/stores unaligned.
template <class V, int MR, int NV>
void matmul_micro(const double *a, std::size_t lda, const double *b,
                  std::size_t ldb, double *c, std::size_t ldc, std::size_t k0,
                  std::size_t k1, bool skip_zero_a) noexcept {
  using Reg = typename V::Reg;
  constexpr std::size_t W = V::kWidth;
  Reg acc[MR][NV];
  for (int r = 0; r < MR; ++r)
    for (int v = 0; v < NV; ++v)
      acc[r][v] = V::load(c + static_cast<std::size_t>(r) * ldc + v * W);
  for (std::size_t k = k0; k < k1; ++k) {
    Reg bv[NV];
    const double *brow = b + k * ldb;
    for (int v = 0; v < NV; ++v) bv[v] = V::load(brow + v * W);
    for (int r = 0; r < MR; ++r) {
      const double av = a[static_cast<std::size_t>(r) * lda + k];
      if (skip_zero_a && av == 0.0) continue;
      const Reg ar = V::broadcast(av);
      for (int v = 0; v < NV; ++v) acc[r][v] = V::fma(ar, bv[v], acc[r][v]);
    }
  }
  for (int r = 0; r < MR; ++r)
    for (int v = 0; v < NV; ++v)
      V::store(c + static_cast<std::size_t>(r) * ldc + v * W, acc[r][v]);
}

using MicroFn = void (*)(const double *, std::size_t, const double *,
                         std::size_t, double *, std::size_t, std::size_t,
                         std::size_t, bool);

template <class V, int NV>
MicroFn micro_rows(std::size_t mr) noexcept {
  switch (mr) {
    case 1: return &matmul_micro<V, 1, NV>;
    case 2: return &matmul_micro<V, 2, NV>;
    case 3: return &matmul_micro<V, 3, NV>;
    case 4: return &matmul_micro<V, 4, NV>;
    case 5: return &matmul_micro<V, 5, NV>;
    case 6: return &matmul_micro<V, 6, NV>;
    case 7: return &matmul_micro<V, 7, NV>;
    default: return &matmul_micro<V, 8, NV>;
  }
}

/// Runtime (rows, vectors) -> instantiated microkernel.
template <class V>
MicroFn micro_fn(std::size_t mr, std::size_t nv) noexcept {
  switch (nv) {
    case 8: return micro_rows<V, 8>(mr);
    case 4: return micro_rows<V, 4>(mr);
    case 2: return micro_rows<V, 2>(mr);
    default: return micro_rows<V, 1>(mr);
  }
}

// --- dot product with lane accumulators -------------------------------------

/// sum_i x[i]*y[i] with NACC vector accumulators. Reduction order is fully
/// determined by (n, W, NACC): lane tree first, then the scalar tail.
template <class V, int NACC>
double dot_vec(const double *x, const double *y, std::size_t n) noexcept {
  using Reg = typename V::Reg;
  constexpr std::size_t W = V::kWidth;
  Reg acc[NACC];
  for (int v = 0; v < NACC; ++v) acc[v] = V::zero();
  std::size_t i = 0;
  for (; i + W * NACC <= n; i += W * NACC)
    for (int v = 0; v < NACC; ++v)
      acc[v] = V::fma(V::load(x + i + v * W), V::load(y + i + v * W), acc[v]);
  for (; i + W <= n; i += W)
    acc[0] = V::fma(V::load(x + i), V::load(y + i), acc[0]);
  double s = 0.0;
  for (int v = 0; v < NACC; ++v) s += V::hsum(acc[v]);
  for (; i < n; ++i) s = std::fma(x[i], y[i], s);
  return s;
}

template <class V>
double dot_acc(const double *x, const double *y, std::size_t n,
               std::size_t nacc) noexcept {
  switch (nacc) {
    case 8: return dot_vec<V, 8>(x, y, n);
    case 4: return dot_vec<V, 4>(x, y, n);
    case 2: return dot_vec<V, 2>(x, y, n);
    default: return dot_vec<V, 1>(x, y, n);
  }
}

// --- shared block helpers ---------------------------------------------------

inline std::size_t tile_or(std::size_t tile, std::size_t extent) noexcept {
  return tile == 0 ? extent : std::min(tile, extent);
}

/// Round `tile` up to a multiple of `quantum` (tile==0 keeps "whole extent").
inline std::size_t round_tile_up(std::size_t tile,
                                 std::size_t quantum) noexcept {
  if (tile == 0) return 0;
  return ((tile + quantum - 1) / quantum) * quantum;
}

/// Run `body(i0, i1)` over [0, extent) in blocks of `tile` (0 = one block),
/// on the pool when `parallel`. Blocks are row ranges; every kernel here is
/// row-independent so the partition never affects results.
template <class Body>
void for_row_blocks(std::size_t extent, std::size_t tile, bool parallel,
                    parallel::ThreadPool &pool, const Body &body) {
  const std::size_t ti = tile_or(tile, extent == 0 ? 1 : extent);
  const std::size_t blocks = extent == 0 ? 0 : (extent + ti - 1) / ti;
  const auto block_body = [&](std::size_t blk) {
    const std::size_t i0 = blk * ti;
    body(i0, std::min(i0 + ti, extent));
  };
  if (parallel) {
    pool.parallel_for(0, blocks, block_body, 1);
  } else {
    for (std::size_t blk = 0; blk < blocks; ++blk) block_body(blk);
  }
}

// --- kernel bodies ----------------------------------------------------------

/// C = A(m x k) * B(k x n). Cache blocking from tile_i/j/k, register tiling
/// from rtile_m/rtile_n, optional zero-skip on A. The `unroll` and `order`
/// knobs are legacy-path-only and ignored here.
template <class V>
Matrix matmul_tmpl(const Matrix &a, const Matrix &b, const KernelParams &p,
                   parallel::ThreadPool &pool) {
  constexpr std::size_t W = V::kWidth;
  const std::size_t m = a.rows(), n = b.cols(), kk = a.cols();
  Matrix c(m, n, 0.0);
  if (m == 0 || n == 0 || kk == 0) return c;

  const std::size_t mr = clamp_rtile_m(p.rtile_m);
  const std::size_t nv = clamp_rtile_nv<V>(p.rtile_n);
  const std::size_t colw = nv * W;
  const std::size_t n_vec = n - n % W;  // lane/tail split: depends on n only
  const std::size_t tk = tile_or(p.tile_k, kk);
  const std::size_t tj = tile_or(round_tile_up(p.tile_j, colw), n_vec);
  const MicroFn full = micro_fn<V>(mr, nv);
  const MicroFn full1 = micro_fn<V>(mr, 1);

  const auto body = [&](std::size_t i0, std::size_t i1) {
    for (std::size_t k0 = 0; k0 < kk; k0 += tk) {
      const std::size_t k1 = std::min(k0 + tk, kk);
      for (std::size_t j0 = 0; j0 < n_vec; j0 += tj) {
        const std::size_t j1 = std::min(j0 + tj, n_vec);
        for (std::size_t i = i0; i < i1; i += mr) {
          const std::size_t rows = std::min(mr, i1 - i);
          const double *arow = a.data() + i * kk;
          double *crow = c.data() + i * n;
          const MicroFn fn = rows == mr ? full : micro_fn<V>(rows, nv);
          const MicroFn fn1 = rows == mr ? full1 : micro_fn<V>(rows, 1);
          std::size_t j = j0;
          for (; j + colw <= j1; j += colw)
            fn(arow, kk, b.data() + j, n, crow + j, n, k0, k1, p.skip_zero_a);
          for (; j + W <= j1; j += W)
            fn1(arow, kk, b.data() + j, n, crow + j, n, k0, k1, p.skip_zero_a);
        }
      }
      for (std::size_t i = i0; i < i1 && n_vec < n; ++i) {
        for (std::size_t j = n_vec; j < n; ++j) {
          double s = c(i, j);
          for (std::size_t k = k0; k < k1; ++k) {
            const double av = a(i, k);
            if (p.skip_zero_a && av == 0.0) continue;
            s = std::fma(av, b(k, j), s);
          }
          c(i, j) = s;
        }
      }
    }
  };
  for_row_blocks(m, p.tile_i, p.parallel, pool, body);
  return c;
}

/// C = A(m x k) * B(n x k)^T: a dot product per output element, both
/// operands row-contiguous.
template <class V>
Matrix matmul_t_tmpl(const Matrix &a, const Matrix &b, const KernelParams &p,
                     parallel::ThreadPool &pool) {
  const std::size_t m = a.rows(), n = b.rows(), kk = a.cols();
  Matrix c(m, n, 0.0);
  if (m == 0 || n == 0) return c;
  const std::size_t nacc = clamp_acc(p.unroll);
  const std::size_t tj = tile_or(p.tile_j, n);
  const auto body = [&](std::size_t i0, std::size_t i1) {
    for (std::size_t j0 = 0; j0 < n; j0 += tj) {
      const std::size_t j1 = std::min(j0 + tj, n);
      for (std::size_t i = i0; i < i1; ++i)
        for (std::size_t j = j0; j < j1; ++j)
          c(i, j) = dot_acc<V>(a.row(i).data(), b.row(j).data(), kk, nacc);
    }
  };
  for_row_blocks(m, p.tile_i, p.parallel, pool, body);
  return c;
}

/// y = A(m x n) * x.
template <class V>
std::vector<double> matvec_tmpl(const Matrix &a, std::span<const double> x,
                                const KernelParams &p,
                                parallel::ThreadPool &pool) {
  const std::size_t m = a.rows(), n = a.cols();
  std::vector<double> y(m, 0.0);
  const std::size_t nacc = clamp_acc(p.unroll);
  const auto body = [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i)
      y[i] = dot_acc<V>(a.row(i).data(), x.data(), n, nacc);
  };
  for_row_blocks(m, p.tile_i, p.parallel, pool, body);
  return y;
}

/// Valid-mode 1D convolution, vectorized over output positions: each tap is
/// broadcast and FMA'd against a sliding window of the input. Per element
/// the taps accumulate in ascending order, matching the naive loop.
template <class V>
std::vector<double> conv1d_tmpl(std::span<const double> input,
                                std::span<const double> weights,
                                const KernelParams &p,
                                parallel::ThreadPool &pool) {
  constexpr std::size_t W = V::kWidth;
  using Reg = typename V::Reg;
  const std::size_t kn = weights.size();
  const std::size_t out_n = input.size() - kn + 1;
  std::vector<double> out(out_n, 0.0);
  const std::size_t n_vec = out_n - out_n % W;
  // W-aligned chunk boundaries keep the lane/tail split a function of out_n.
  const std::size_t ti = tile_or(round_tile_up(p.tile_i, W), out_n);
  const auto body = [&](std::size_t i0, std::size_t i1) {
    std::size_t i = i0;
    const std::size_t vec_hi = std::min(i1, n_vec);
    for (; i + W <= vec_hi; i += W) {
      Reg acc = V::zero();
      for (std::size_t k = 0; k < kn; ++k)
        acc = V::fma(V::broadcast(weights[k]), V::load(input.data() + i + k),
                     acc);
      V::store(out.data() + i, acc);
    }
    for (; i < i1; ++i) {
      double s = 0.0;
      for (std::size_t k = 0; k < kn; ++k)
        s = std::fma(input[i + k], weights[k], s);
      out[i] = s;
    }
  };
  for_row_blocks(out_n, ti, p.parallel, pool, body);
  return out;
}

/// Valid-mode 2D convolution, vectorized over output columns; rows are
/// independent so the parallel partition is over output rows.
template <class V>
Matrix conv2d_tmpl(const Matrix &input, const Matrix &kernel,
                   const KernelParams &p, parallel::ThreadPool &pool) {
  constexpr std::size_t W = V::kWidth;
  using Reg = typename V::Reg;
  const std::size_t kh = kernel.rows(), kw = kernel.cols();
  const std::size_t oh = input.rows() - kh + 1;
  const std::size_t ow = input.cols() - kw + 1;
  Matrix out(oh, ow, 0.0);
  const std::size_t w_vec = ow - ow % W;
  const std::size_t tj = tile_or(round_tile_up(p.tile_j, W), ow);
  const auto body = [&](std::size_t y0, std::size_t y1) {
    for (std::size_t y = y0; y < y1; ++y) {
      double *orow = out.row(y).data();
      for (std::size_t x0 = 0; x0 < ow; x0 += tj) {
        const std::size_t x1 = std::min(x0 + tj, ow);
        std::size_t x = x0;
        const std::size_t vhi = std::min(x1, w_vec);
        for (; x + W <= vhi; x += W) {
          Reg acc = V::zero();
          for (std::size_t ky = 0; ky < kh; ++ky) {
            const double *irow = input.row(y + ky).data() + x;
            const double *krow = kernel.row(ky).data();
            for (std::size_t kx = 0; kx < kw; ++kx)
              acc = V::fma(V::broadcast(krow[kx]), V::load(irow + kx), acc);
          }
          V::store(orow + x, acc);
        }
        for (; x < x1; ++x) {
          double s = 0.0;
          for (std::size_t ky = 0; ky < kh; ++ky) {
            const double *irow = input.row(y + ky).data() + x;
            const double *krow = kernel.row(ky).data();
            for (std::size_t kx = 0; kx < kw; ++kx)
              s = std::fma(irow[kx], krow[kx], s);
          }
          orow[x] = s;
        }
      }
    }
  };
  for_row_blocks(oh, p.tile_i, p.parallel, pool, body);
  return out;
}

/// The Backend table for one policy type.
template <class V>
detail::Backend make_backend() noexcept {
  return detail::Backend{&matmul_tmpl<V>, &matmul_t_tmpl<V>, &matvec_tmpl<V>,
                         &conv1d_tmpl<V>, &conv2d_tmpl<V>};
}

}  // namespace treu::tensor::micro
