#include "treu/tensor/cpu_features.hpp"

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace treu::tensor {
namespace {

bool detect_avx2_fma() noexcept {
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

// Cached TREU_FORCE_ISA decision. Encoding keeps the hot path one relaxed
// load: kUninit means "not read yet"; the two invalid states re-throw on
// every call so a bad pin can never be silently shrugged off after the
// first error was swallowed somewhere.
enum ForceState : int {
  kUninit = -1,
  kNone = 0,
  kScalar = 1,
  kAvx2 = 2,
  kInvalidUnknown = 3,
  kInvalidUnsupported = 4,
};

std::atomic<int> g_force_state{kUninit};

[[noreturn]] void throw_force_error(int state) {
  const char *value = std::getenv("TREU_FORCE_ISA");
  const std::string shown = value ? value : "<unset>";
  if (state == kInvalidUnknown) {
    throw std::runtime_error(
        "TREU_FORCE_ISA=" + shown +
        ": unknown ISA (expected \"scalar\" or \"avx2\")");
  }
  throw std::runtime_error(
      "TREU_FORCE_ISA=" + shown +
      ": this host/build cannot execute the requested ISA "
      "(refusing to silently downgrade a forced pin)");
}

int compute_force_state() {
  const char *value = std::getenv("TREU_FORCE_ISA");
  if (value == nullptr || *value == '\0') return kNone;
  const auto parsed = parse_isa(value);
  if (!parsed) return kInvalidUnknown;
  if (*parsed == Isa::Avx2 &&
      !(cpu_supports(Isa::Avx2) && avx2_backend_compiled())) {
    return kInvalidUnsupported;
  }
  return *parsed == Isa::Scalar ? kScalar : kAvx2;
}

}  // namespace

const char *to_string(Isa isa) noexcept {
  switch (isa) {
    case Isa::Scalar: return "scalar";
    case Isa::Avx2: return "avx2";
  }
  return "?";
}

std::optional<Isa> parse_isa(std::string_view name) noexcept {
  if (name == "scalar") return Isa::Scalar;
  if (name == "avx2") return Isa::Avx2;
  return std::nullopt;
}

bool cpu_supports(Isa isa) noexcept {
  if (isa == Isa::Scalar) return true;
  static const bool avx2 = detect_avx2_fma();
  return avx2;
}

std::optional<Isa> forced_isa() {
  int state = g_force_state.load(std::memory_order_relaxed);
  if (state == kUninit) {
    state = compute_force_state();
    g_force_state.store(state, std::memory_order_relaxed);
  }
  switch (state) {
    case kNone: return std::nullopt;
    case kScalar: return Isa::Scalar;
    case kAvx2: return Isa::Avx2;
    default: throw_force_error(state);
  }
}

void refresh_forced_isa_for_testing() noexcept {
  g_force_state.store(kUninit, std::memory_order_relaxed);
}

namespace detail {

Isa resolve_forced_isa(std::string_view value, bool avx2_usable) {
  const auto parsed = parse_isa(value);
  if (!parsed) {
    throw std::runtime_error(
        "TREU_FORCE_ISA=" + std::string(value) +
        ": unknown ISA (expected \"scalar\" or \"avx2\")");
  }
  if (*parsed == Isa::Avx2 && !avx2_usable) {
    throw std::runtime_error(
        "TREU_FORCE_ISA=" + std::string(value) +
        ": this host/build cannot execute the requested ISA "
        "(refusing to silently downgrade a forced pin)");
  }
  return *parsed;
}

}  // namespace detail

}  // namespace treu::tensor
